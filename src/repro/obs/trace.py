"""Cross-host request tracing: span context, propagation, NDJSON export.

A trace is a tree of spans sharing one ``trace_id``.  The root span is
opened at the client SDK (or a CLI entry point); its context crosses
process boundaries inside a W3C-style ``traceparent`` header
(``00-<trace_id>-<span_id>-01``), which both HTTP servers parse back
into a remote parent before dispatching — so a
:class:`~repro.jobs.remote.RemoteShardExecutor` sweep over live
workers stitches into **one** trace whose chunk spans all carry the
coordinator's root ``trace_id``.

In-process propagation uses a :mod:`contextvars` variable, which
follows the execution context across threads started per-request and
is explicitly re-attached inside executor-pool callables (the asyncio
server's worker offload).  Finished spans land in a bounded in-memory
ring (served paginated by ``GET /v1/traces``) and, when a sink is
configured (``--trace`` on the CLI), are appended to an NDJSON file.

Digest neutrality: span ids come from ``os.urandom`` and start
timestamps from :func:`repro.obs.clock.wall_now`; neither may reach
digested material — spans only leave through the ring, the sink and
the traces route.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar, Token
from dataclasses import dataclass
from time import perf_counter
from typing import Iterator

from repro.obs.clock import wall_now

__all__ = [
    "Span",
    "SpanContext",
    "TRACEPARENT_HEADER",
    "TRACER",
    "Tracer",
    "attach",
    "current",
    "detach",
    "from_traceparent",
    "span",
    "to_traceparent",
]

TRACEPARENT_HEADER = "traceparent"


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of one span: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str


_CURRENT: ContextVar[SpanContext | None] = ContextVar(
    "repro_obs_current_span", default=None
)


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def current() -> SpanContext | None:
    """The active span context in this execution context, if any."""
    return _CURRENT.get()


def attach(ctx: SpanContext | None) -> Token:
    """Install ``ctx`` as the current span context (remote parents).

    Returns a token for :func:`detach`.  Servers call this with the
    context parsed from an incoming ``traceparent`` header so the
    dispatch span parents correctly across the process boundary.
    """
    return _CURRENT.set(ctx)


def detach(token: Token) -> None:
    _CURRENT.reset(token)


def to_traceparent(ctx: SpanContext) -> str:
    """Serialise a context to a ``traceparent`` header value."""
    return f"00-{ctx.trace_id}-{ctx.span_id}-01"


def from_traceparent(value: str | None) -> SpanContext | None:
    """Parse a ``traceparent`` header; malformed input returns ``None``."""
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    _, trace_id, span_id, _ = parts
    if len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    return SpanContext(trace_id=trace_id, span_id=span_id)


class Span:
    """One in-flight span; finished records are plain dicts in the ring."""

    __slots__ = ("context", "name", "attrs", "parent_id", "_start_wall", "_t0")

    def __init__(self, name: str, context: SpanContext, parent_id: str | None):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.attrs: dict[str, object] = {}
        self._start_wall = wall_now()
        self._t0 = perf_counter()

    def set(self, **attrs: object) -> None:
        """Attach key/value annotations to the span record."""
        self.attrs.update(attrs)

    def finish(self) -> dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start": self._start_wall,
            "duration": perf_counter() - self._t0,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Bounded ring of finished spans plus an optional NDJSON file sink."""

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._ring: deque[dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0
        self._sink: str | None = None

    # -- recording ----------------------------------------------------
    def record(self, record: dict[str, object]) -> None:
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._ring.append(record)
            sink = self._sink
        if sink is not None:
            line = json.dumps(record, sort_keys=True)
            with self._lock:
                with open(sink, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")

    # -- export -------------------------------------------------------
    def spans(self, offset: int = 0, limit: int | None = None) -> list[dict[str, object]]:
        """Finished spans with ``seq > offset``, oldest first.

        ``seq`` is a monotonically increasing record number, so clients
        page with ``offset=<last seen seq>`` and never see duplicates
        even while the ring evicts old records.
        """
        with self._lock:
            records = [r for r in self._ring if int(str(r["seq"])) > offset]
        if limit is not None:
            records = records[: max(0, limit)]
        return records

    def last_seq(self) -> int:
        with self._lock:
            return self._seq

    # -- sink ---------------------------------------------------------
    def set_sink(self, path: str | None) -> None:
        """Append every future span record to ``path`` as NDJSON."""
        with self._lock:
            self._sink = path

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._seq = 0


#: The process-global tracer every span records into.
TRACER = Tracer()


@contextmanager
def span(
    name: str, *, tracer: Tracer = TRACER, **attrs: object
) -> Iterator[Span]:
    """Open a child span of the current context (or a new root).

    The span becomes the current context for the ``with`` body, is
    restored on exit, and its finished record lands in ``tracer``.
    """
    parent = _CURRENT.get()
    context = SpanContext(
        trace_id=parent.trace_id if parent else _new_trace_id(),
        span_id=_new_span_id(),
    )
    active = Span(name, context, parent.span_id if parent else None)
    active.attrs.update(attrs)
    token = _CURRENT.set(context)
    try:
        yield active
    finally:
        _CURRENT.reset(token)
        tracer.record(active.finish())
