"""Structured access logging shared by both HTTP servers.

One logfmt-style line per request — route, status, duration and trace
id — replacing the servers' previous ad-hoc ``print``/stdlib
``log_message`` output.  Lines go through the library logger
(``repro.obs.access``) at INFO and, when the server runs ``--verbose``,
are also printed so operators see traffic without configuring logging.
"""

from __future__ import annotations

from repro.utils.log import get_logger

__all__ = ["access_line", "log_access"]

_LOGGER = get_logger("repro.obs.access")


def access_line(
    method: str,
    path: str,
    status: int,
    duration: float,
    trace_id: str | None = None,
) -> str:
    """Render one access-log line (logfmt key/value pairs)."""
    return (
        f"method={method} path={path} status={status} "
        f"duration_ms={duration * 1000.0:.2f} trace={trace_id or '-'}"
    )


def log_access(
    method: str,
    path: str,
    status: int,
    duration: float,
    trace_id: str | None = None,
    *,
    verbose: bool = False,
) -> str:
    """Record one request: always logged, printed when ``verbose``."""
    line = access_line(method, path, status, duration, trace_id)
    _LOGGER.info(line)
    if verbose:
        print(line)
    return line
