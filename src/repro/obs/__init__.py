"""Zero-dependency observability: metrics, tracing, access logs.

The platform's runtime telemetry lives here and nowhere else:

* :data:`REGISTRY` — the process-global metrics registry (counters,
  gauges, fixed-bucket histograms; labeled families; byte-stable
  snapshots; Prometheus text exposition via ``GET /v1/metrics``).
* :data:`TRACER` / :func:`span` — cross-host request tracing with
  ``traceparent`` propagation, a bounded in-memory ring served by
  ``GET /v1/traces`` and an optional NDJSON file sink (``--trace``).
* :func:`log_access` — the structured access log both HTTP servers
  share.

The hard rule threaded through every instrument: telemetry is
**digest-neutral**.  No value originating here — timestamps, ids,
durations, counts — may reach a report digest, a spec, or digested
wire material; the sole wall-clock read lives in
:mod:`repro.obs.clock`, which the determinism lint (DET002) registers
as the only exemption.
"""

from repro.obs.access import access_line, log_access
from repro.obs.clock import wall_now
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    TRACER,
    Span,
    SpanContext,
    Tracer,
    attach,
    current,
    detach,
    from_traceparent,
    span,
    to_traceparent,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "SpanContext",
    "TRACEPARENT_HEADER",
    "TRACER",
    "Tracer",
    "access_line",
    "attach",
    "current",
    "detach",
    "from_traceparent",
    "log_access",
    "span",
    "to_traceparent",
    "wall_now",
]
