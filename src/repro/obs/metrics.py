"""Thread-safe, zero-dependency metrics registry.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` (fixed bucket bounds) — grouped into labeled
families under one process-global :data:`REGISTRY`.  Two export forms:
:meth:`MetricsRegistry.snapshot` (plain dict, keys sorted, byte-stable
for a given state) and :meth:`MetricsRegistry.render_prometheus`
(text exposition format, served by ``GET /v1/metrics``).

Design constraints, in order:

* **Hot-path cost**: recording is a dict update under one lock — no
  allocation beyond the label-key tuple, no string formatting.  The
  instrumented session hot path must stay within 5% of the bare one
  (asserted in ``benchmarks/bench_service_sessions.py``).
* **Digest neutrality**: nothing here reads a wall clock or feeds
  digested material; values only leave through the two export forms.
* **Determinism of exports**: family names, label names and label
  values are sorted on every export, so identical counter states
  render byte-identically regardless of recording order.
"""

from __future__ import annotations

import threading
import time as _time
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
]

#: Latency buckets (seconds) shared by the request / settle / chunk
#: histograms: sub-millisecond cache hits up to multi-second sweeps.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    # Integral values render without a trailing ".0" so counters look
    # like counters; everything else uses repr for round-trip fidelity.
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Family:
    """Shared plumbing: label validation, series storage, rendering."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        lock: threading.Lock,
        enabled: "MetricsRegistry",
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._registry = enabled
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} expects labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    # -- export -------------------------------------------------------
    def _series_sorted(self) -> list[tuple[tuple[str, ...], object]]:
        return sorted(self._series.items())

    def _label_suffix(self, key: tuple[str, ...], extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def snapshot(self) -> dict[str, object]:
        series: dict[str, object] = {}
        for key, value in self._series_sorted():
            label = ",".join(
                f"{name}={val}" for name, val in zip(self.labelnames, key)
            )
            series[label] = self._snapshot_value(value)
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
            "series": series,
        }

    def _snapshot_value(self, value: object) -> object:
        return value

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, value in self._series_sorted():
            lines.extend(self._render_series(key, value))
        return lines

    def _render_series(self, key: tuple[str, ...], value: object) -> list[str]:
        assert isinstance(value, float)
        return [f"{self.name}{self._label_suffix(key)} {_format_value(value)}"]


class Counter(_Family):
    """A monotonically increasing sum."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            current = self._series.get(key, 0.0)
            assert isinstance(current, float) or current == 0.0
            self._series[key] = float(current) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            raw = self._series.get(self._key(labels), 0.0)
        assert isinstance(raw, (int, float))
        return float(raw)


class Gauge(_Family):
    """A value that can go up and down (occupancy, queue depth)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def add(self, delta: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            current = self._series.get(key, 0.0)
            assert isinstance(current, (int, float))
            self._series[key] = float(current) + delta

    def value(self, **labels: object) -> float:
        with self._lock:
            raw = self._series.get(self._key(labels), 0.0)
        assert isinstance(raw, (int, float))
        return float(raw)


class _HistogramSeries:
    __slots__ = ("buckets", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.buckets = [0] * n_buckets  # non-cumulative; summed on export
        self.total = 0.0
        self.count = 0


class Histogram(_Family):
    """Distribution over fixed bucket bounds (plus an implicit +Inf)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        lock: threading.Lock,
        enabled: "MetricsRegistry",
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(name, help_text, labelnames, lock, enabled)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs sorted, non-empty buckets")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets) + 1)
                self._series[key] = series
            assert isinstance(series, _HistogramSeries)
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series.buckets[index] += 1
            series.total += value
            series.count += 1

    @contextmanager
    def time(self, **labels: object) -> Iterator[None]:
        """Observe the elapsed monotonic time of the ``with`` body."""
        t0 = _time.perf_counter()
        try:
            yield
        finally:
            self.observe(_time.perf_counter() - t0, **labels)

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            if series is None:
                return 0
            assert isinstance(series, _HistogramSeries)
            return series.count

    def _snapshot_value(self, value: object) -> object:
        assert isinstance(value, _HistogramSeries)
        cumulative: list[int] = []
        running = 0
        for raw in value.buckets:
            running += raw
            cumulative.append(running)
        return {
            "buckets": [
                [bound, count]
                for bound, count in zip(list(self.buckets) + ["+Inf"], cumulative)
            ],
            "sum": value.total,
            "count": value.count,
        }

    def _render_series(self, key: tuple[str, ...], value: object) -> list[str]:
        assert isinstance(value, _HistogramSeries)
        lines: list[str] = []
        running = 0
        bounds = [_format_value(b) for b in self.buckets] + ["+Inf"]
        for bound, raw in zip(bounds, value.buckets):
            running += raw
            suffix = self._label_suffix(key, f'le="{bound}"')
            lines.append(f"{self.name}_bucket{suffix} {running}")
        plain = self._label_suffix(key)
        lines.append(f"{self.name}_sum{plain} {_format_value(value.total)}")
        lines.append(f"{self.name}_count{plain} {value.count}")
        return lines


class MetricsRegistry:
    """Process-global family store with byte-stable exports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._enabled = True

    # -- toggling (benchmarks measure the delta) ----------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, flag: bool) -> None:
        self._enabled = bool(flag)

    # -- family constructors (get-or-create, kind-checked) ------------
    def _family(self, cls: type, name: str, **kwargs: object) -> _Family:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name} already registered as {existing.kind}"
                    )
                return existing
            family = cls(name=name, lock=threading.Lock(), enabled=self, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        family = self._family(
            Counter, name, help_text=help_text, labelnames=tuple(labelnames)
        )
        assert isinstance(family, Counter)
        return family

    def gauge(
        self, name: str, help_text: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        family = self._family(
            Gauge, name, help_text=help_text, labelnames=tuple(labelnames)
        )
        assert isinstance(family, Gauge)
        return family

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        family = self._family(
            Histogram,
            name,
            help_text=help_text,
            labelnames=tuple(labelnames),
            buckets=tuple(buckets),
        )
        assert isinstance(family, Histogram)
        return family

    # -- exports ------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Plain-dict export, sorted at every level (byte-stable)."""
        with self._lock:
            families = sorted(self._families.items())
        return {name: family.snapshot() for name, family in families}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4)."""
        with self._lock:
            families = sorted(self._families.items())
        lines: list[str] = []
        for _, family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every family (tests and benchmark isolation)."""
        with self._lock:
            self._families.clear()


#: The process-global registry every instrumented module records into.
REGISTRY = MetricsRegistry()
