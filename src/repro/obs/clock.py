"""The platform's single sanctioned wall-clock read.

Telemetry wants human-meaningful timestamps (a span's start time, a
scrape's export time), but wall-clock reads are banned everywhere a
value could leak into digested material (DET002) — two runs of the
same job must produce byte-identical reports.  The compromise is one
chokepoint: every wall-clock read in the tree routes through
:func:`wall_now`, the lint rule registers this module as the sole
exemption, and nothing returned from here may reach a digest, a spec,
or a wire payload that feeds one.  Durations everywhere else come from
monotonic clocks (``time.perf_counter``), which stay legal by rule.
"""

from __future__ import annotations

import time

__all__ = ["wall_now"]


def wall_now() -> float:
    """Seconds since the epoch — operational timestamps only.

    Never digest this value: it is different on every run by
    construction.  It exists for span records, access-log lines and
    metric exports, all of which are explicitly outside the
    bit-identity contract.
    """
    return time.time()  # lint: allow[DET002] sole sanctioned wall-clock read; values never reach digested material
