"""Deterministic random-number-generator trees.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator`.  To keep experiments reproducible while
letting independent subsystems (dataset synthesis, model initialisation,
bargaining strategies, ...) consume randomness without interfering with
each other, generators are derived from a root seed plus a path of string
keys, in the spirit of JAX's key-splitting:

>>> root = spawn(7, "titanic")
>>> model_rng = spawn(7, "titanic", "forest")
>>> market_rng = spawn(7, "titanic", "market", 3)

The same ``(seed, *keys)`` path always yields the same stream, and
distinct paths yield statistically independent streams.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["as_generator", "spawn"]

_SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def _key_to_int(key: object) -> int:
    """Map an arbitrary hashable key to a stable 32-bit integer.

    ``hash()`` is salted per-process for strings, so we use CRC32 of the
    ``repr`` instead; this keeps derived streams stable across runs and
    machines.
    """
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    return zlib.crc32(repr(key).encode("utf-8"))


def spawn(seed: _SeedLike, *keys: object) -> np.random.Generator:
    """Return a generator for the stream identified by ``(seed, *keys)``.

    Parameters
    ----------
    seed:
        Root entropy.  ``None`` gives a nondeterministic generator;
        an existing :class:`~numpy.random.Generator` is *split* (the
        parent stream is not advanced).
    keys:
        Path of identifiers (strings, ints, tuples, ...) naming the
        subsystem that will consume the stream.
    """
    if isinstance(seed, np.random.Generator):
        # Split deterministically off the generator's current state.
        base = int(seed.bit_generator.state["state"]["state"]) & 0xFFFFFFFF
        seq = np.random.SeedSequence([base, *(_key_to_int(k) for k in keys)])
        return np.random.default_rng(seq)
    if isinstance(seed, np.random.SeedSequence):
        seq = np.random.SeedSequence(
            entropy=seed.entropy, spawn_key=tuple(_key_to_int(k) for k in keys)
        )
        return np.random.default_rng(seq)
    if seed is None:
        return np.random.default_rng()
    root = int(seed) if isinstance(seed, (int, np.integer)) else _key_to_int(seed)
    seq = np.random.SeedSequence([root, *(_key_to_int(k) for k in keys)])
    return np.random.default_rng(seq)


def as_generator(seed: _SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so that callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)
