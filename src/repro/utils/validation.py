"""Input-validation helpers used across the library.

All public entry points validate their inputs eagerly so that failures
surface at the API boundary with actionable messages, instead of deep
inside numpy broadcasting.
"""

from __future__ import annotations

import numpy as np
from typing import Any

from numpy.typing import NDArray

__all__ = [
    "check_finite",
    "check_in_range",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_vector",
    "require",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_matrix(
    x: object, name: str = "X", *, dtype: type[Any] = np.float64
) -> NDArray[Any]:
    """Coerce ``x`` to a 2-D float array, raising on wrong dimensionality."""
    arr = np.asarray(x, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    require(arr.ndim == 2, f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    require(arr.shape[0] > 0, f"{name} must have at least one row")
    return arr


def check_vector(
    y: object, name: str = "y", *, dtype: type[Any] = np.float64
) -> NDArray[Any]:
    """Coerce ``y`` to a 1-D array, raising on wrong dimensionality."""
    arr = np.asarray(y, dtype=dtype)
    require(arr.ndim == 1, f"{name} must be 1-dimensional, got ndim={arr.ndim}")
    require(arr.shape[0] > 0, f"{name} must be non-empty")
    return arr


def check_finite(x: NDArray[Any], name: str = "array") -> NDArray[Any]:
    """Raise if ``x`` contains NaN or infinities."""
    if not np.all(np.isfinite(x)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return x


def check_positive(value: float, name: str) -> float:
    """Raise unless ``value`` is strictly positive."""
    require(value > 0, f"{name} must be > 0, got {value!r}")
    return float(value)


def check_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Raise unless ``low <= value <= high`` (or strict, if not inclusive)."""
    value = float(value)
    if inclusive:
        require(low <= value <= high, f"{name} must be in [{low}, {high}], got {value}")
    else:
        require(low < value < high, f"{name} must be in ({low}, {high}), got {value}")
    return value


def check_probability(value: float, name: str = "probability") -> float:
    """Raise unless ``value`` lies in the closed unit interval."""
    return check_in_range(value, name, 0.0, 1.0)
