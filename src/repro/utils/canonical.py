"""Canonical JSON serialisation and content digests.

One serialisation rule for every content-addressed key in the library:
the service layer's spec digests (:mod:`repro.service.specs`), the
process-level market cache (:mod:`repro.experiments.runner`) and the
oracle factory's persistent :class:`~repro.oracle_factory.cache.GainCache`
fingerprints all hash the *same* canonical form, so two keys are equal
exactly when their canonical dicts are equal — never because two
ad-hoc serialisers happened to agree.

Canonical form: JSON with sorted keys, compact separators, and only
JSON-native types.  Tuples are serialised as arrays (so a spec that
stores ``(a, b)`` and its dict round-trip ``[a, b]`` digest equally);
NaN/Infinity are rejected (they are not valid JSON and would make the
digest parser-dependent).
"""

from __future__ import annotations

import hashlib
import json
import math

__all__ = ["canonical_json", "content_digest", "json_safe", "stable_json"]


def canonical_json(obj: object) -> str:
    """The canonical serialisation of a JSON-representable object."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def stable_json(obj: object) -> str:
    """Sorted-key compact JSON that *tolerates* NaN/Infinity.

    The storage-grade sibling of :func:`canonical_json`: key order and
    separators are pinned (so stored bytes never depend on dict
    insertion order), but non-finite floats serialise with Python's
    JSON extension (``NaN``/``Infinity``), which :func:`json.loads`
    round-trips exactly.  Durable stores that must preserve NaN payload
    values (e.g. failed sessions' ``delta_g`` in the job store) write
    through this; **digests must keep using** :func:`canonical_json` /
    :func:`content_digest`, which reject non-finite floats outright.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_digest(obj: object, *, length: int = 16) -> str:
    """Hex SHA-256 digest of :func:`canonical_json`, truncated to ``length``.

    ``length=64`` keeps the full digest (the oracle factory's cache
    files use it); the default 16 hex chars match the simulator's
    report digests and are plenty for process-local cache keys.
    """
    blob = canonical_json(obj).encode("utf-8")
    digest = hashlib.sha256(blob).hexdigest()
    return digest[:length] if length < 64 else digest


def json_safe(value: object) -> object:
    """Recursively coerce ``value`` to strict-JSON-safe form.

    NaN/±Infinity are not valid JSON tokens; strict parsers (``jq``,
    ``JSON.parse``) reject them, so every wire-facing payload (CLI
    ``--json`` dumps, server replies) exports them as ``null``.  Tuples
    become lists.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value
