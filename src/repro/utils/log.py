"""Minimal structured logging for library internals.

The library never configures the root logger; applications opt in with
:func:`logging.basicConfig`.  Internal modules use ``get_logger(__name__)``
and log at DEBUG/INFO so experiment harnesses can trace bargaining rounds
without spamming default output.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_LIBRARY_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root.

    ``get_logger("repro.market.engine")`` and ``get_logger("engine")``
    both resolve under the ``repro`` hierarchy so applications can tune
    verbosity with a single ``logging.getLogger("repro").setLevel(...)``.
    """
    if not name.startswith(_LIBRARY_ROOT):
        name = f"{_LIBRARY_ROOT}.{name}"
    logger = logging.getLogger(name)
    logger.addHandler(logging.NullHandler())
    return logger
