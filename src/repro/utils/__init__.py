"""Shared utilities: deterministic RNG trees, validation helpers, logging."""

from repro.utils.log import get_logger
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
    check_vector,
    require,
)

__all__ = [
    "as_generator",
    "check_finite",
    "check_in_range",
    "check_matrix",
    "check_positive",
    "check_probability",
    "check_vector",
    "get_logger",
    "require",
    "spawn",
]
