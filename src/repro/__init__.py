"""repro — a bargaining-based feature-trading market for Vertical Federated Learning.

Reproduction of Cui et al., *"A Bargaining-based Approach for Feature
Trading in Vertical Federated Learning"* (ICDE 2025).

Public API highlights
---------------------
* :mod:`repro.data` — column-store tables, the paper's three datasets
  (synthetic, schema-faithful), preprocessing, vertical partitioning.
* :mod:`repro.ml` — from-scratch Random Forest and MLP base models.
* :mod:`repro.vfl` — simulated VFL protocols (SplitNN, federated forest)
  with communication accounting.
* :mod:`repro.market` — the paper's contribution: performance-gain-based
  pricing, bargaining strategies, equilibrium theory, and the
  :class:`~repro.market.market.Market` facade.
* :mod:`repro.security` — Paillier HE and masked secure comparison for
  the §3.6 threat analysis.
* :mod:`repro.experiments` — harness regenerating every table/figure.
"""

__version__ = "1.0.0"
