"""``repro lint`` — determinism + concurrency static analysis.

Every subsystem in this repository stakes its correctness on two
contracts that unit tests can only check *after* a violation has
corrupted a digest:

* **determinism** — merged shard reports, wire replies and secure
  settlements must be bit-identical to their serial references; and
* **thread safety** — the session broker, the market pool, the asyncio
  transport and the secure-settlement pool all share mutable state
  across threads and the event loop.

This package turns both contracts into machine-checked lint rules over
the AST, exposed as ``python -m repro lint``.  Rules register through
the same decorator pattern as the service registries
(:mod:`repro.service.registry`); findings render deterministically
(sorted, timestamp-free) as text or JSON; deliberate exceptions are
suppressed inline with ``# lint: allow[RULE] <reason>`` pragmas or via
a committed baseline file.  See ``docs/LINTING.md`` for every rule's
rationale and a guide to adding new ones.
"""

from __future__ import annotations

from repro.analysis.core import (
    Finding,
    LintRule,
    ModuleContext,
    RULES,
    lint_source,
    register_rule,
    rule_ids,
)
from repro.analysis.driver import (
    Baseline,
    LintResult,
    lint_paths,
    main,
    render_json,
    render_text,
)

# Importing the rule modules registers their rules as a side effect —
# exactly how the service registries pick up their built-ins.
from repro.analysis import determinism as _determinism  # noqa: F401
from repro.analysis import concurrency as _concurrency  # noqa: F401

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "LintRule",
    "ModuleContext",
    "RULES",
    "lint_paths",
    "lint_source",
    "main",
    "register_rule",
    "render_json",
    "render_text",
    "rule_ids",
]
