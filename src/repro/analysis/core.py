"""Lint core: findings, module context, and the rule registry.

A rule is a function ``(ModuleContext) -> Iterable[Finding]`` registered
under a stable id (``DET001``, ``CON002``, ...) through the same
decorator pattern the service layer uses for datasets and strategies
(:class:`repro.service.registry.Registry`).  The driver parses each file
once into a :class:`ModuleContext` and hands it to every selected rule;
rules never re-read the file system, so a lint run is a pure function
of the source tree — the same inputs always produce byte-identical
output.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.service.registry import Registry
from repro.utils.canonical import content_digest

__all__ = [
    "Finding",
    "ImportMap",
    "LintRule",
    "ModuleContext",
    "RULES",
    "dotted_name",
    "lint_source",
    "parse_pragmas",
    "register_rule",
    "rule_ids",
]

#: Package directories whose modules feed content digests or wire
#: payloads: rules scoped to "digest-bearing" modules apply here.
DIGEST_BEARING_PREFIXES = (
    "src/repro/market/",
    "src/repro/simulate/",
    "src/repro/jobs/",
    "src/repro/security/",
)

#: The one module allowed to construct nondeterministic generators —
#: every other module must derive streams through its ``spawn``.
RNG_MODULE = "src/repro/utils/rng.py"

#: The one module allowed to read the wall clock: every operational
#: timestamp (span starts, access-log lines, metric exports) routes
#: through its ``wall_now`` so DET002 can ban wall-clock reads in both
#: digest-bearing *and* instrumented (obs-importing) modules.
CLOCK_MODULE = "src/repro/obs/clock.py"

#: The observability package: its own modules, and any module that
#: imports from it, count as "instrumented" for clock discipline.
OBS_PREFIX = "src/repro/obs/"

#: Inline suppression: ``# lint: allow[DET001] reason`` (multiple rule
#: ids comma-separated).  The reason is mandatory — a bare allow is
#: itself reported (LNT002) and suppresses nothing.
_PRAGMA = re.compile(
    r"#\s*lint:\s*allow\[(?P<rules>[A-Za-z0-9_,\s-]+)\]\s*(?P<reason>.*)$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, ordered for deterministic reports."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def fingerprint(self) -> str:
        """Line-number-free identity used by baseline suppression.

        Hashing ``(rule, path, message)`` instead of the position keeps
        a baselined finding suppressed when unrelated edits shift it a
        few lines — the classic baseline-churn failure mode.
        """
        return content_digest([self.rule, self.path, self.message])

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# lint: allow[...]`` comment."""

    line: int
    rules: frozenset[str]
    reason: str


def parse_pragmas(source: str) -> list[Pragma]:
    """Every inline-allow pragma in ``source`` (line numbers 1-based).

    A plain regex over raw lines is deliberate: pragmas live in
    comments, and a string literal that *contains* the pragma text is
    pathological enough to not design around (the false suppression is
    line-scoped either way).
    """
    pragmas: list[Pragma] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        pragmas.append(
            Pragma(line=lineno, rules=rules, reason=match.group("reason").strip())
        )
    return pragmas


class ImportMap(ast.NodeVisitor):
    """Alias table mapping local names to fully-qualified module paths.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random as nr`` maps ``nr -> numpy.random``; ``from random import
    shuffle`` maps ``shuffle -> random.shuffle``.  Rules resolve call
    names through this table so aliasing cannot hide a banned call.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never reach numpy/random/json
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"


def dotted_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to a dotted name through ``aliases``.

    ``np.random.shuffle`` with ``np -> numpy`` resolves to
    ``numpy.random.shuffle``; unresolvable shapes (subscripts, calls)
    return ``None``.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id, current.id)
    parts.append(root)
    return ".".join(reversed(parts))


@dataclass
class ModuleContext:
    """Everything a rule may consult about one parsed module."""

    path: str  # repo-relative, posix separators
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)
    pragmas: list[Pragma] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, path: str) -> "ModuleContext":
        """Parse ``source``; raises ``SyntaxError`` on unparseable input."""
        tree = ast.parse(source, filename=path)
        imports = ImportMap()
        imports.visit(tree)
        return cls(
            path=path.replace("\\", "/"),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            aliases=imports.aliases,
            pragmas=parse_pragmas(source),
        )

    # ------------------------------------------------------------------
    @property
    def digest_bearing(self) -> bool:
        """Whether this module feeds content digests or wire payloads."""
        return any(p in self.path for p in _digest_markers())

    @property
    def rng_exempt(self) -> bool:
        """Whether this module is the designated RNG construction point."""
        return self.path.endswith("utils/rng.py")

    @property
    def clock_exempt(self) -> bool:
        """Whether this module is the designated wall-clock read point."""
        return self.path.endswith("obs/clock.py")

    @property
    def instrumented(self) -> bool:
        """Whether this module is part of, or imports, the obs layer.

        Instrumented modules inherit the wall-clock ban: telemetry is
        exactly where a stray ``time.time()`` is most tempting and
        where it would silently undermine digest neutrality, so the
        only sanctioned read is ``repro.obs.clock.wall_now``.
        """
        if OBS_PREFIX.removeprefix("src/") in self.path:
            return True
        return any(
            target == "repro.obs" or target.startswith("repro.obs.")
            for target in self.aliases.values()
        )

    def call_name(self, node: ast.Call) -> str | None:
        """The call's fully-qualified dotted name, or ``None``."""
        return dotted_name(node.func, self.aliases)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )

    def allowed(self, finding: Finding) -> bool:
        """Whether an inline pragma (with a reason) suppresses ``finding``."""
        for pragma in self.pragmas:
            if (
                pragma.line == finding.line
                and pragma.reason
                and finding.rule in pragma.rules
            ):
                return True
        return False


def _digest_markers() -> tuple[str, ...]:
    # Matched as substrings so both repo-relative ("src/repro/jobs/x.py")
    # and bare-package ("repro/jobs/x.py") path spellings classify the
    # same way, whatever directory the driver was launched from.
    return tuple(p.removeprefix("src/") for p in DIGEST_BEARING_PREFIXES)


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
RuleCheck = Callable[[ModuleContext], Iterable[Finding]]


@dataclass(frozen=True)
class LintRule:
    """One registered rule: stable id, short name, one-line summary."""

    id: str
    name: str
    summary: str
    check: RuleCheck


RULES: Registry[LintRule] = Registry("lint rule")


def register_rule(rule_id: str, *, name: str, summary: str) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering a rule under ``rule_id`` (e.g. ``DET001``)."""

    def wrap(check: RuleCheck) -> RuleCheck:
        RULES.register(
            rule_id, LintRule(id=rule_id, name=name, summary=summary, check=check)
        )
        return check

    return wrap


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    return RULES.names()


def _rule(rule_id: str) -> LintRule:
    entry = RULES.get(rule_id)
    assert isinstance(entry, LintRule)
    return entry


def resolve_selection(select: Iterable[str] | None) -> tuple[str, ...]:
    """Normalise a ``--select`` list (ids or names) to sorted rule ids."""
    if select is None:
        return rule_ids()
    chosen: set[str] = set()
    by_name = {_rule(rid).name: rid for rid in rule_ids()}
    for item in select:
        key = item.strip()
        if not key:
            continue
        if key.upper() in RULES:
            chosen.add(key.upper())
        elif key in by_name:
            chosen.add(by_name[key])
        else:
            known = ", ".join(rule_ids())
            raise ValueError(f"unknown rule {item!r}; known: {known}")
    return tuple(sorted(chosen))


def run_rules(ctx: ModuleContext, select: Iterable[str] | None = None) -> list[Finding]:
    """Run the selected rules over one module; pragma-filtered, sorted.

    Pragmas without a reason never suppress — each such line yields an
    ``LNT002`` finding instead, so a bare ``# lint: allow[...]`` cannot
    silently rot into a blanket waiver.
    """
    findings: list[Finding] = []
    for rule_id in resolve_selection(select):
        for finding in _rule(rule_id).check(ctx):
            if not ctx.allowed(finding):
                findings.append(finding)
    for pragma in ctx.pragmas:
        if not pragma.reason:
            findings.append(
                Finding(
                    path=ctx.path,
                    line=pragma.line,
                    col=0,
                    rule="LNT002",
                    message=(
                        "allow pragma without a reason suppresses nothing; "
                        "write `# lint: allow[RULE] <why this is safe>`"
                    ),
                )
            )
    return sorted(findings)


def lint_source(
    source: str, *, path: str = "module.py", select: Iterable[str] | None = None
) -> list[Finding]:
    """Lint a source string (the per-rule test helper).

    A syntax error comes back as a single ``LNT001`` finding, exactly
    as the driver reports an unparseable repository file.
    """
    try:
        ctx = ModuleContext.from_source(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path.replace("\\", "/"),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="LNT001",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    return run_rules(ctx, select)


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Every call node in ``tree`` (shared by several rules)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
