"""Determinism rules: the bit-identity contract, machine-checked.

Every rule here guards the same invariant: a report digest, wire reply
or settlement computed twice — on another thread count, another shard
layout, another machine — must come out byte-identical.  The rules ban
the constructs that historically break that: ambient RNG state,
wall-clock reads in digested material, ad-hoc JSON/hash serialisation
beside the canonical helpers, and hash-ordered set iteration.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    Finding,
    ModuleContext,
    iter_calls,
    register_rule,
)

__all__ = ["NUMPY_RNG_SAFE", "STDLIB_RANDOM_SEEDABLE", "WALL_CLOCK_CALLS"]

#: ``numpy.random`` attributes that are *constructors of explicit
#: streams*, not draws from the hidden module-level generator.
NUMPY_RNG_SAFE = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
})

#: ``random`` module attributes that name *types* one may instantiate
#: with an explicit seed (argless instantiation is still flagged).
STDLIB_RANDOM_SEEDABLE = frozenset({"Random", "SystemRandom"})

#: Wall-clock reads: two runs of the same job see different values, so
#: none of these may reach digested material.  ``time.monotonic`` and
#: ``time.perf_counter`` stay legal — elapsed-time measurement is an
#: operational concern, not a digest input.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


def _has_args(call: ast.Call) -> bool:
    return bool(call.args or call.keywords)


@register_rule(
    "DET001",
    name="unseeded-rng",
    summary="RNG must flow through repro.utils.rng.spawn-derived streams",
)
def unseeded_rng(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ambient / unseeded random-number generation.

    Three shapes, anywhere outside ``utils/rng.py``:

    * draws from numpy's hidden module-level generator
      (``np.random.shuffle``, ``np.random.rand``, ...);
    * argless ``np.random.default_rng()`` — fresh OS entropy every
      call, unreproducible by construction;
    * the stdlib ``random`` module's global-state functions (and
      argless ``random.Random()``/``random.SystemRandom()``).
    """
    if ctx.rng_exempt:
        return
    for call in iter_calls(ctx.tree):
        name = ctx.call_name(call)
        if name is None:
            continue
        if name.startswith("numpy.random."):
            attr = name.removeprefix("numpy.random.")
            if attr == "default_rng" and not _has_args(call):
                yield ctx.finding(
                    "DET001", call,
                    "argless default_rng() draws fresh OS entropy; derive "
                    "the stream with repro.utils.rng.spawn(seed, ...)",
                )
            elif "." not in attr and attr not in NUMPY_RNG_SAFE:
                yield ctx.finding(
                    "DET001", call,
                    f"np.random.{attr}() draws from numpy's hidden global "
                    "generator; derive an explicit stream with "
                    "repro.utils.rng.spawn(seed, ...)",
                )
        elif name.startswith("random."):
            attr = name.removeprefix("random.")
            if "." in attr:
                continue  # random.Random(0).random() resolves elsewhere
            if attr in STDLIB_RANDOM_SEEDABLE:
                if not _has_args(call):
                    yield ctx.finding(
                        "DET001", call,
                        f"argless random.{attr}() is seeded from OS "
                        "entropy; pass an explicit seed (or use "
                        "repro.utils.rng.spawn)",
                    )
            else:
                yield ctx.finding(
                    "DET001", call,
                    f"random.{attr}() mutates the interpreter-global RNG "
                    "state; use a stream from repro.utils.rng.spawn "
                    "(or a seeded random.Random instance)",
                )


@register_rule(
    "DET002",
    name="wall-clock",
    summary="no wall-clock reads in digest-bearing or instrumented modules",
)
def wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag wall-clock reads inside digest-bearing/instrumented modules.

    ``market/``, ``simulate/``, ``jobs/`` and ``security/`` feed report
    digests and wire payloads; a ``time.time()`` there is one refactor
    away from a digest that never reproduces.  The same ban covers the
    observability layer and every module that imports it — telemetry
    needs operational timestamps, and ``repro.obs.clock`` (the sole
    exemption) is the only sanctioned place to read them.  Monotonic
    clocks (``perf_counter``/``monotonic``) remain legal for
    throughput accounting.
    """
    if ctx.clock_exempt:
        return
    if not (ctx.digest_bearing or ctx.instrumented):
        return
    where = (
        "a digest-bearing" if ctx.digest_bearing else "an instrumented"
    )
    for call in iter_calls(ctx.tree):
        name = ctx.call_name(call)
        if name in WALL_CLOCK_CALLS:
            yield ctx.finding(
                "DET002", call,
                f"{name}() is a wall-clock read in {where} module; "
                "route operational timestamps through "
                "repro.obs.clock.wall_now (monotonic clocks are fine "
                "for elapsed time)",
            )


@register_rule(
    "DET003",
    name="raw-digest-serialisation",
    summary="digest material must route through repro.utils.canonical",
)
def raw_digest_serialisation(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ad-hoc serialisation/hashing beside the canonical helpers.

    Two shapes:

    * in digest-bearing modules, any raw ``json.dumps``/``json.dump``
      or ``hashlib.*`` call — key order, separators and NaN handling
      must come from :mod:`repro.utils.canonical`
      (``canonical_json``/``content_digest``), never be re-decided
      locally;
    * anywhere, hashing the output of a raw ``json.dumps`` (the
      tell-tale ``hashlib.sha256(json.dumps(x).encode())`` shape) —
      that digest depends on dict insertion order.

    ``utils/canonical.py`` itself is the one legitimate home for both.
    """
    if ctx.path.endswith("utils/canonical.py"):
        return
    for call in iter_calls(ctx.tree):
        name = ctx.call_name(call)
        if name is None:
            continue
        if name.startswith("hashlib."):
            if _hashes_raw_json(call, ctx):
                yield ctx.finding(
                    "DET003", call,
                    f"{name} over raw json.dumps output digests dict "
                    "insertion order; use "
                    "repro.utils.canonical.content_digest",
                )
            elif ctx.digest_bearing:
                yield ctx.finding(
                    "DET003", call,
                    f"raw {name} in a digest-bearing module; route "
                    "content digests through "
                    "repro.utils.canonical.content_digest",
                )
        elif name in ("json.dumps", "json.dump") and ctx.digest_bearing:
            yield ctx.finding(
                "DET003", call,
                f"raw {name} in a digest-bearing module serialises in "
                "insertion order; use "
                "repro.utils.canonical.canonical_json (sorted keys, "
                "compact separators, NaN rejected)",
            )


def _hashes_raw_json(call: ast.Call, ctx: ModuleContext) -> bool:
    """Whether a hashlib call's arguments contain a ``json.dumps`` call."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Call):
                if ctx.call_name(node) in ("json.dumps", "json.dump"):
                    return True
    return False


#: Call shapes whose argument order is observable — materialising or
#: iterating a set through these leaks hash order into the result.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})

#: Order-insensitive reducers: folding a set through these is fine.
_ORDER_FREE_CALLS = frozenset({
    "sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all",
})


def _is_set_valued(node: ast.AST, ctx: ModuleContext) -> bool:
    """Conservatively: is this expression definitely a ``set``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = ctx.call_name(node)
        if name in ("set", "frozenset"):
            return True
        # set arithmetic keeps setness: set(a) | set(b)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_valued(node.left, ctx) and _is_set_valued(node.right, ctx)
    return False


@register_rule(
    "DET004",
    name="unsorted-set-iteration",
    summary="set iteration feeding digested material needs sorted()",
)
def unsorted_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag hash-ordered set iteration in digest-bearing modules.

    Set iteration order depends on element hashes — for strings, on
    ``PYTHONHASHSEED``, i.e. on the *process* — so a set that reaches a
    report, a digest or a wire payload without an explicit ``sorted()``
    produces different bytes on different workers.  (Dict/``.values()``
    iteration is insertion-ordered in CPython and stays legal; the
    order is decided by construction, which is the caller's contract.)
    """
    if not ctx.digest_bearing:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and _is_set_valued(node.iter, ctx):
            yield ctx.finding(
                "DET004", node.iter,
                "iterating a set directly is hash-ordered "
                "(PYTHONHASHSEED-dependent); iterate sorted(...) instead",
            )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                if _is_set_valued(gen.iter, ctx):
                    yield ctx.finding(
                        "DET004", gen.iter,
                        "comprehension over a set is hash-ordered "
                        "(PYTHONHASHSEED-dependent); iterate sorted(...) "
                        "instead",
                    )
        elif isinstance(node, ast.Call):
            name = ctx.call_name(node)
            if (
                name in _ORDER_SENSITIVE_CALLS
                and node.args
                and _is_set_valued(node.args[0], ctx)
            ):
                yield ctx.finding(
                    "DET004", node,
                    f"{name}() over a set materialises hash order; wrap "
                    "the set in sorted(...) first",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_valued(node.args[0], ctx)
            ):
                yield ctx.finding(
                    "DET004", node,
                    "join() over a set concatenates in hash order; join "
                    "sorted(...) instead",
                )


def _is_frozen_dataclass(cls: ast.ClassDef, ctx: ModuleContext) -> bool:
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call):
            name = ctx.call_name(deco)
            if name in ("dataclass", "dataclasses.dataclass"):
                for kw in deco.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


@register_rule(
    "DET005",
    name="spec-shape",
    summary="*Spec classes are frozen dataclasses with to_dict/from_dict/digest",
)
def spec_shape(ctx: ModuleContext) -> Iterator[Finding]:
    """Enforce the spec contract on every ``*Spec`` class.

    Specs are the content-addressed currency of the whole service
    layer: pools key on them, jobs fingerprint them, checkpoints ship
    them.  A spec that is mutable, or that cannot round-trip through
    ``to_dict``/``from_dict``, or that has no ``digest``, silently
    breaks that addressing — so the shape is enforced mechanically.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Spec") or node.name.startswith("_"):
            continue
        missing = {"to_dict", "from_dict", "digest"}
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                missing.discard(item.name)
        problems: list[str] = []
        if not _is_frozen_dataclass(node, ctx):
            problems.append("must be @dataclass(frozen=True)")
        if missing:
            problems.append(
                "missing " + "/".join(sorted(missing))
            )
        if problems:
            yield ctx.finding(
                "DET005", node,
                f"spec class {node.name} breaks the spec contract: "
                + "; ".join(problems)
                + " (frozen dataclass with paired to_dict/from_dict and a "
                "content digest)",
            )
