"""Lint driver: discovery, baselines, deterministic output, exit codes.

The contract CI and pre-commit hooks rely on:

* exit ``0`` — no findings (clean tree, or everything baselined);
* exit ``1`` — at least one non-baselined finding;
* exit ``2`` — the linter itself failed (unreadable baseline, crashing
  rule, bad arguments) — distinct from ``1`` so a hook can tell "fix
  your code" from "fix the linter".

Output is byte-stable across runs: findings sort by
``(path, line, col, rule)``, JSON serialises with sorted keys, and
nothing emits a timestamp, hostname or absolute path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, TextIO

from repro.analysis.core import (
    Finding,
    LintRule,
    ModuleContext,
    RULES,
    resolve_selection,
    run_rules,
)

__all__ = [
    "Baseline",
    "LintResult",
    "discover_files",
    "lint_paths",
    "main",
    "render_json",
    "render_text",
]

#: Directories never descended into.  ``tests`` is excluded because
#: test fixtures *deliberately* violate rules (the lock-cycle fixture
#: package exists to be caught); lint them explicitly when needed.
EXCLUDED_DIRS = frozenset({
    ".git", "__pycache__", ".pytest_cache", ".mypy_cache", ".ruff_cache",
    "node_modules", ".venv", "venv", "build", "dist", "tests",
    ".oracle-cache", "results",
})

#: Default lint surface, relative to the repo root: everything that
#: ships or measures behaviour.  (``tests/`` is linted by its own
#: suite's fixtures, not by default.)
DEFAULT_PATHS = ("src", "benchmarks", "examples", "scripts")


class LintInternalError(Exception):
    """A failure of the linter itself (exit code 2)."""


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    rules: tuple[str, ...] = ()


@dataclass(frozen=True)
class Baseline:
    """A committed set of accepted-for-now finding fingerprints.

    The file is JSON: ``{"version": 1, "findings": [{"fingerprint":
    ..., "rule": ..., "path": ..., "message": ...}, ...]}`` — the
    redundant fields exist so a reviewer can read what was waived
    without recomputing hashes.  An empty baseline is the goal state;
    this repo ships one.
    """

    fingerprints: frozenset[str] = frozenset()

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise LintInternalError(f"baseline file {path!r} does not exist") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise LintInternalError(f"unreadable baseline {path!r}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise LintInternalError(
                f"baseline {path!r} is not a version-1 baseline file"
            )
        entries = payload.get("findings", [])
        if not isinstance(entries, list):
            raise LintInternalError(f"baseline {path!r}: findings must be a list")
        prints: set[str] = set()
        for entry in entries:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise LintInternalError(
                    f"baseline {path!r}: every entry needs a fingerprint"
                )
            prints.add(str(entry["fingerprint"]))
        return cls(fingerprints=frozenset(prints))

    @staticmethod
    def render(findings: Iterable[Finding]) -> str:
        """Serialise ``findings`` as a baseline file (sorted, stable)."""
        entries = sorted(
            (
                {
                    "fingerprint": f.fingerprint(),
                    "rule": f.rule,
                    "path": f.path,
                    "message": f.message,
                }
                for f in findings
            ),
            key=lambda e: (str(e["path"]), str(e["rule"]), str(e["fingerprint"])),
        )
        return json.dumps(
            {"version": 1, "findings": entries}, indent=2, sort_keys=True
        ) + "\n"


def discover_files(paths: Sequence[str], root: str = ".") -> list[str]:
    """Every ``.py`` file under ``paths`` (repo-relative, sorted).

    A path may be a file or a directory; missing paths are an internal
    error (a CI job pointing at a renamed directory must fail loudly,
    not silently lint nothing).
    """
    files: set[str] = set()
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            files.add(os.path.normpath(full))
            continue
        if not os.path.isdir(full):
            raise LintInternalError(f"lint path {path!r} does not exist")
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(
                d for d in dirnames if d not in EXCLUDED_DIRS
            )
            for name in filenames:
                if name.endswith(".py"):
                    files.add(os.path.normpath(os.path.join(dirpath, name)))
    return sorted(files)


def _relative(path: str, root: str) -> str:
    rel = os.path.relpath(path, root)
    return rel.replace(os.sep, "/")


def lint_paths(
    paths: Sequence[str] | None = None,
    *,
    root: str = ".",
    select: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint ``paths`` (default: the standard surface) under ``root``."""
    try:
        selection = resolve_selection(select)
    except ValueError as exc:
        raise LintInternalError(str(exc)) from exc
    result = LintResult(rules=selection)
    findings: list[Finding] = []
    for filename in discover_files(paths or DEFAULT_PATHS, root):
        rel = _relative(filename, root)
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            raise LintInternalError(f"cannot read {rel}: {exc}") from exc
        result.files_checked += 1
        try:
            ctx = ModuleContext.from_source(source, rel)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="LNT001",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        try:
            findings.extend(run_rules(ctx, selection))
        except RecursionError as exc:  # pragma: no cover - defensive
            raise LintInternalError(f"rule crashed on {rel}: {exc}") from exc
    if baseline is not None:
        kept: list[Finding] = []
        for finding in findings:
            if finding.fingerprint() in baseline.fingerprints:
                result.suppressed += 1
            else:
                kept.append(finding)
        findings = kept
    result.findings = sorted(findings)
    return result


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} "
        f"file(s) [{len(result.rules)} rule(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} baselined"
    summary += "]"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files_checked": result.files_checked,
        "rules": list(result.rules),
        "suppressed": result.suppressed,
        "findings": [finding.to_dict() for finding in result.findings],
        "count": len(result.findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _rule_table() -> str:
    lines = []
    for rule_id in RULES.names():
        rule = RULES.get(rule_id)
        assert isinstance(rule, LintRule)
        lines.append(f"{rule.id}  {rule.name:28s} {rule.summary}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Determinism + concurrency static analysis over the repro "
            "source tree (exit 0 clean / 1 findings / 2 internal error)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is byte-stable for CI artifacts)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="suppress findings whose fingerprints appear in this file",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write the current findings as a baseline file and exit 0",
    )
    parser.add_argument(
        "--select", metavar="RULE[,RULE...]", default=None,
        help="run only these rules (ids like DET001 or names like "
             "unseeded-rng)",
    )
    parser.add_argument(
        "--root", metavar="DIR", default=".",
        help="repository root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None, *, stdout: TextIO | None = None,
         stderr: TextIO | None = None) -> int:
    """Entry point behind ``python -m repro lint``; returns 0/1/2."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    try:
        args = build_parser().parse_args(list(argv) if argv is not None else None)
    except SystemExit as exc:
        # argparse exits 2 on bad usage, which matches our contract;
        # --help exits 0.
        return int(exc.code or 0)
    if args.list_rules:
        out.write(_rule_table())
        return 0
    select = args.select.split(",") if args.select else None
    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
        result = lint_paths(
            args.paths or None,
            root=args.root,
            select=select,
            baseline=baseline,
        )
    except LintInternalError as exc:
        err.write(f"repro lint: error: {exc}\n")
        return 2
    except Exception as exc:  # pragma: no cover - defensive catch-all
        err.write(f"repro lint: internal error: {exc!r}\n")
        return 2
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(Baseline.render(result.findings))
        out.write(
            f"wrote {len(result.findings)} finding(s) to "
            f"{args.write_baseline}\n"
        )
        return 0
    out.write(render_text(result) if args.format == "text"
              else render_json(result))
    return 1 if result.findings else 0


def iter_findings(result: LintResult) -> Iterator[Finding]:
    """Convenience iterator (kept for symmetry with other subsystems)."""
    return iter(result.findings)
