"""Concurrency rules: the thread-safety contract, machine-checked.

The session broker, the market pool, the HTTP transport, the secure
settlement pool and the asyncio server all share mutable state across
threads (and, in the async server, across the event loop and a worker
pool).  Two properties keep that safe today, by convention:

* lock acquisition nests in one global order (no cycles), and
* state touched from both the event loop and pool threads is either
  loop-confined or lock-protected.

These rules lift both conventions out of reviewers' heads: ``CON001``
builds a static lock-acquisition graph from ``with <lock>:`` patterns
and reports any cycle; ``CON002`` flags attributes written both inside
``async def`` bodies (event-loop context) and plain methods (thread
context) with no lock in scope at one of the write sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, register_rule

__all__ = ["LOCK_FACTORIES", "build_lock_graph"]

#: Constructors whose result is a lock-like object; an attribute or
#: module global assigned from one of these is tracked as a lock even
#: if its name never says so.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock", "asyncio.Lock",
})


def _lockish_attr(name: str) -> bool:
    return "lock" in name.lower()


def _module_lock_names(ctx: ModuleContext) -> frozenset[str]:
    """Module-level names bound to a lock factory call."""
    names: set[str] = set()
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if ctx.call_name(node.value) in LOCK_FACTORIES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return frozenset(names)


def _class_lock_attrs(cls: ast.ClassDef, ctx: ModuleContext) -> frozenset[str]:
    """Attributes of ``cls`` known to hold locks.

    Detected from ``self.x = threading.Lock()`` assignments, dataclass
    fields annotated with a Lock type, and ``field(default_factory=
    threading.Lock)`` defaults.
    """
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if ctx.call_name(node.value) in LOCK_FACTORIES:
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
    for item in cls.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            annotation = ast.unparse(item.annotation)
            if "Lock" in annotation or "Condition" in annotation:
                attrs.add(item.target.id)
    return frozenset(attrs)


@dataclass
class _ClassLocks:
    """Lock-relevant facts about one class (or the module pseudo-class)."""

    name: str
    node: ast.ClassDef | ast.Module
    lock_attrs: frozenset[str]
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        default_factory=dict
    )
    #: lock id -> first acquisition site (for messages)
    sites: dict[str, int] = field(default_factory=dict)
    #: directed edges: (held, acquired) -> line of the inner acquisition
    edges: dict[tuple[str, str], int] = field(default_factory=dict)
    #: method name -> locks it acquires directly
    direct: dict[str, set[str]] = field(default_factory=dict)
    #: method name -> [(held locks at call site, callee name, line)]
    calls: list[tuple[str, tuple[str, ...], str, int]] = field(
        default_factory=list
    )


def _lock_id(
    expr: ast.AST, owner: _ClassLocks, module_locks: frozenset[str],
    ctx: ModuleContext,
) -> str | None:
    """Resolve a ``with`` context expression to a stable lock id.

    ``self.<attr>`` resolves to ``Class.<attr>``; a module global
    assigned from a lock factory resolves to ``<module>.<name>``; a
    lock-named attribute of any other object resolves to the wildcard
    owner ``*.<attr>`` — conservatively conflating same-named locks of
    different owners, which can over-approximate a cycle but never
    miss one through renaming.
    """
    if isinstance(expr, ast.Attribute):
        base = expr.value
        if isinstance(base, ast.Name) and base.id == "self":
            if expr.attr in owner.lock_attrs or _lockish_attr(expr.attr):
                return f"{owner.name}.{expr.attr}"
            return None
        if _lockish_attr(expr.attr):
            return f"*.{expr.attr}"
        return None
    if isinstance(expr, ast.Name):
        if expr.id in module_locks:
            return f"<module>.{expr.id}"
        if _lockish_attr(expr.id):
            return f"*.{expr.id}"
    return None


def _callee_name(call: ast.Call) -> str | None:
    """``self.f(...)`` -> ``f``; bare ``f(...)`` -> ``f`` (module scope)."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _walk_method(
    info: _ClassLocks,
    method_name: str,
    node: ast.AST,
    held: tuple[str, ...],
    module_locks: frozenset[str],
    ctx: ModuleContext,
) -> None:
    """Recursive sweep recording acquisitions, nesting edges and calls."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        acquired: list[str] = []
        for item in node.items:
            lock = _lock_id(item.context_expr, info, module_locks, ctx)
            if lock is not None:
                acquired.append(lock)
                info.sites.setdefault(lock, item.context_expr.lineno)
                for outer in held:
                    info.edges.setdefault((outer, lock), item.context_expr.lineno)
                info.direct.setdefault(method_name, set()).add(lock)
        inner = held + tuple(acquired)
        for child in node.body:
            _walk_method(info, method_name, child, inner, module_locks, ctx)
        return
    if isinstance(node, ast.Call):
        callee = _callee_name(node)
        if callee is not None:
            info.calls.append((method_name, held, callee, node.lineno))
        for child in ast.iter_child_nodes(node):
            _walk_method(info, method_name, child, held, module_locks, ctx)
        return
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not info.methods.get(method_name):
        # A nested def runs later, under whatever locks *its* caller
        # holds — not under the locks lexically held here.
        for child in ast.iter_child_nodes(node):
            _walk_method(info, method_name, child, (), module_locks, ctx)
        return
    for child in ast.iter_child_nodes(node):
        _walk_method(info, method_name, child, held, module_locks, ctx)


def _collect_class(
    name: str,
    node: ast.ClassDef | ast.Module,
    ctx: ModuleContext,
    module_locks: frozenset[str],
) -> _ClassLocks:
    lock_attrs = (
        _class_lock_attrs(node, ctx) if isinstance(node, ast.ClassDef)
        else frozenset()
    )
    info = _ClassLocks(name=name, node=node, lock_attrs=lock_attrs)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[item.name] = item
    for method_name, method in info.methods.items():
        for child in method.body:
            _walk_method(info, method_name, child, (), module_locks, ctx)
    return info


def _lock_closure(info: _ClassLocks) -> dict[str, set[str]]:
    """``method -> locks it may acquire`` (direct + via same-scope calls)."""
    closure: dict[str, set[str]] = {
        name: set(info.direct.get(name, ())) for name in info.methods
    }
    changed = True
    while changed:
        changed = False
        for caller, _held, callee, _line in info.calls:
            if callee in closure:
                before = len(closure[caller])
                closure[caller] |= closure[callee]
                if len(closure[caller]) != before:
                    changed = True
    return closure


def build_lock_graph(ctx: ModuleContext) -> dict[tuple[str, str], int]:
    """The module's full lock-acquisition graph: edge -> witness line.

    An edge ``(A, B)`` means some execution path acquires ``B`` while
    holding ``A`` — either lexically nested ``with`` blocks, or a call
    made under ``A`` to a same-scope method/function that acquires
    ``B`` (transitively through further same-scope calls).
    """
    module_locks = _module_lock_names(ctx)
    scopes: list[_ClassLocks] = [
        _collect_class("<module>", ctx.tree, ctx, module_locks)
    ]
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            scopes.append(_collect_class(node.name, node, ctx, module_locks))
    edges: dict[tuple[str, str], int] = {}
    for info in scopes:
        closure = _lock_closure(info)
        for edge, line in info.edges.items():
            edges.setdefault(edge, line)
        for _caller, held, callee, line in info.calls:
            if not held or callee not in closure:
                continue
            for outer in held:
                for inner in sorted(closure[callee]):
                    edges.setdefault((outer, inner), line)
    return edges


def _cycles(edges: dict[tuple[str, str], int]) -> list[tuple[str, ...]]:
    """Strongly-connected components with a cycle, plus self-loops.

    Deterministic: nodes visit in sorted order and each reported cycle
    is rotated to start at its smallest lock id.
    """
    graph: dict[str, list[str]] = {}
    for a, b in edges:
        graph.setdefault(a, []).append(b)
        graph.setdefault(b, [])
    for succs in graph.values():
        succs.sort()

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in graph[v]:
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            component: list[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            sccs.append(component)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    cycles: list[tuple[str, ...]] = []
    for component in sccs:
        if len(component) > 1:
            ordered = sorted(component)
            cycles.append(tuple(ordered))
        elif (component[0], component[0]) in edges:
            cycles.append((component[0],))
    return sorted(cycles)


@register_rule(
    "CON001",
    name="lock-order-cycle",
    summary="the static lock-acquisition graph must be acyclic",
)
def lock_order_cycle(ctx: ModuleContext) -> Iterator[Finding]:
    """Report cycles in the module's lock-acquisition graph.

    Two threads entering a cycle from different ends deadlock; a
    self-edge on a non-reentrant ``threading.Lock`` deadlocks a single
    thread.  The graph is built per module from ``with <lock>:``
    patterns plus same-scope call chains, so the check is conservative:
    it can over-approximate (wildcard ``*.attr`` owners conflate
    same-named locks) but a rename can never hide an ordering.
    """
    edges = build_lock_graph(ctx)
    for cycle in _cycles(edges):
        if len(cycle) == 1:
            lock = cycle[0]
            yield Finding(
                path=ctx.path,
                line=edges[(lock, lock)],
                col=0,
                rule="CON001",
                message=(
                    f"lock {lock} is re-acquired while already held "
                    "(self-deadlock on a non-reentrant lock)"
                ),
            )
            continue
        chain = " -> ".join(cycle + (cycle[0],))
        witness = min(
            line for (a, b), line in edges.items() if a in cycle and b in cycle
        )
        yield Finding(
            path=ctx.path,
            line=witness,
            col=0,
            rule="CON001",
            message=(
                f"potential deadlock: lock-acquisition cycle {chain}; "
                "impose one global acquisition order (see "
                "docs/LINTING.md#con001)"
            ),
        )


# ----------------------------------------------------------------------
# CON002 — mixed loop/thread mutation without a lock
# ----------------------------------------------------------------------
#: Methods that run before the object is shared: writes here are
#: happens-before any concurrent access and never need a lock.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass(frozen=True)
class _WriteSite:
    attr: str
    line: int
    in_async: bool
    locked: bool
    method: str


def _attr_writes(
    cls: ast.ClassDef, ctx: ModuleContext, lock_attrs: frozenset[str]
) -> list[_WriteSite]:
    writes: list[_WriteSite] = []

    def sweep(node: ast.AST, *, method: str, in_async: bool, locked: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds = locked or any(
                _with_item_is_lock(item.context_expr, lock_attrs)
                for item in node.items
            )
            for child in ast.iter_child_nodes(node):
                sweep(child, method=method, in_async=in_async, locked=holds)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs (executor thunks, callbacks) execute in
            # whatever context invokes them; classify by their own kind.
            nested_async = isinstance(node, ast.AsyncFunctionDef)
            for child in node.body:
                sweep(child, method=method, in_async=nested_async, locked=False)
            return
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                writes.append(
                    _WriteSite(
                        attr=target.attr,
                        line=target.lineno,
                        in_async=in_async,
                        locked=locked,
                        method=method,
                    )
                )
        for child in ast.iter_child_nodes(node):
            sweep(child, method=method, in_async=in_async, locked=locked)

    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if item.name in _CONSTRUCTION_METHODS:
            continue
        is_async = isinstance(item, ast.AsyncFunctionDef)
        for child in item.body:
            sweep(child, method=item.name, in_async=is_async, locked=False)
    return writes


def _with_item_is_lock(expr: ast.AST, lock_attrs: frozenset[str]) -> bool:
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return expr.attr in lock_attrs or _lockish_attr(expr.attr)
        return _lockish_attr(expr.attr)
    if isinstance(expr, ast.Name):
        return _lockish_attr(expr.id)
    return False


@register_rule(
    "CON002",
    name="mixed-context-mutation",
    summary="no unlocked attribute shared between async and thread code",
)
def mixed_context_mutation(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag attributes written on both the event loop and pool threads.

    In a class that mixes ``async def`` (event-loop context) with plain
    methods (thread-pool / caller-thread context), an attribute written
    in both contexts is shared mutable state crossing the loop-thread
    boundary.  That is only safe under a lock; if any of the write
    sites is unlocked, the attribute is flagged.  Constructor writes
    (``__init__``/``__post_init__``) happen before sharing and are
    exempt, as are attributes whose every cross-context write holds a
    lock.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        lock_attrs = _class_lock_attrs(node, ctx)
        writes = _attr_writes(node, ctx, lock_attrs)
        by_attr: dict[str, list[_WriteSite]] = {}
        for site in writes:
            by_attr.setdefault(site.attr, []).append(site)
        for attr in sorted(by_attr):
            sites = by_attr[attr]
            async_sites = [s for s in sites if s.in_async]
            sync_sites = [s for s in sites if not s.in_async]
            if not async_sites or not sync_sites:
                continue
            unlocked = [s for s in sites if not s.locked]
            if not unlocked:
                continue
            first = min(unlocked, key=lambda s: s.line)
            a_where = ", ".join(
                sorted({f"{s.method}:{s.line}" for s in async_sites})
            )
            t_where = ", ".join(
                sorted({f"{s.method}:{s.line}" for s in sync_sites})
            )
            yield Finding(
                path=ctx.path,
                line=first.line,
                col=0,
                rule="CON002",
                message=(
                    f"self.{attr} of {node.name} is written on the event "
                    f"loop ({a_where}) and in thread context ({t_where}) "
                    "with an unlocked write site; protect every write "
                    "with one lock or confine the attribute to one "
                    "context"
                ),
            )
