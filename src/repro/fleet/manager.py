"""Coordinator-side fleet policy over the durable job store.

:class:`FleetManager` is pure policy: every mutation it performs is a
single short transaction on the :class:`~repro.jobs.store.JobStore`, so
fleet state (worker rows, leases, heartbeat watermarks) shares the
durability story of the jobs it serves.  Kill -9 the coordinator and
restart it on the same store file: registered workers are still rows,
their next heartbeat re-adopts them (``adopted=True``), active leases
keep their deadlines, and the sweep resumes digest-identically.

Liveness is driven entirely by the requests that already flow — every
heartbeat, lease request and status read runs :meth:`expire` first —
so the coordinator needs no background reaper thread: a fleet with any
pulse at all sweeps itself, and an idle one has nothing to sweep.
"""

from __future__ import annotations

from repro import obs
from repro.jobs.store import JobStore
from repro.utils.canonical import content_digest
from repro.utils.validation import require

__all__ = ["FleetManager", "worker_id_for"]

#: Worker membership events: ``registered`` (first announcement),
#: ``adopted`` (a re-registration or a heartbeat revived a worker the
#: coordinator did not have live — the crash-adoption path), ``lost``
#: (heartbeat watermark went stale), ``left`` (graceful deregister).
_WORKER_EVENTS = obs.REGISTRY.counter(
    "repro_fleet_worker_events_total",
    "Fleet worker membership transitions.",
    ("event",),
)
_WORKERS = obs.REGISTRY.gauge(
    "repro_fleet_workers",
    "Registered fleet workers by liveness state.",
    ("state",),
)
#: Lease lifecycle: ``granted`` on every successful pull, ``completed``
#: when the result lands, ``expired`` when a deadline passes or the
#: holder is lost, ``duplicate`` when a stolen chunk's original holder
#: completes late (harmless: chunk payloads are deterministic).
_LEASE_EVENTS = obs.REGISTRY.counter(
    "repro_fleet_leases_total",
    "Chunk lease lifecycle events.",
    ("event",),
)
_STEALS = obs.REGISTRY.counter(
    "repro_fleet_steals_total",
    "Chunks re-granted to a different worker after a lease expiry.",
)
_HEARTBEAT_LAG = obs.REGISTRY.histogram(
    "repro_fleet_heartbeat_lag_seconds",
    "Wall time between a worker's consecutive heartbeats.",
    buckets=(0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0),
)


def worker_id_for(url: str) -> str:
    """The content-addressed id of a worker (its advertised URL).

    Deterministic on purpose: a worker that restarts and re-registers
    under the same URL gets the same row — identity follows the
    endpoint, and re-registration is adoption, not duplication.
    """
    require(bool(url), "a worker needs an advertised URL")
    return "w" + content_digest({"url": str(url).rstrip("/")})[:12]


class FleetManager:
    """Registration, heartbeats and the lease queue, over one store.

    Parameters
    ----------
    store:
        The durable :class:`JobStore` both jobs and fleet state live in.
    lease_ttl:
        Seconds a worker owns a leased chunk before it becomes
        stealable.  Must comfortably exceed the slowest expected chunk;
        a hung worker is only detected after this long.
    heartbeat_ttl:
        Seconds without a heartbeat before a worker is marked ``lost``
        and its active leases are re-queued.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        lease_ttl: float = 60.0,
        heartbeat_ttl: float = 15.0,
    ) -> None:
        require(lease_ttl > 0, "lease_ttl must be > 0")
        require(heartbeat_ttl > 0, "heartbeat_ttl must be > 0")
        self.store = store
        self.lease_ttl = float(lease_ttl)
        self.heartbeat_ttl = float(heartbeat_ttl)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(
        self,
        url: str,
        *,
        capacity: int = 1,
        labels: dict[str, object] | None = None,
    ) -> dict[str, object]:
        """Register (or re-adopt) the worker serving at ``url``."""
        worker_id = worker_id_for(url)
        row = self.store.register_worker(
            worker_id, str(url).rstrip("/"), int(capacity), labels
        )
        adopted = bool(row.pop("adopted"))
        _WORKER_EVENTS.inc(event="adopted" if adopted else "registered")
        self._refresh_gauges()
        row["adopted"] = adopted
        row["lease_ttl"] = self.lease_ttl
        row["heartbeat_ttl"] = self.heartbeat_ttl
        return row

    def heartbeat(
        self, worker_id: str, load: dict[str, object] | None = None
    ) -> dict[str, object]:
        """Record a worker's pulse; ``KeyError`` (404) asks it to
        re-register — the path a worker takes when the coordinator
        comes back with a fresh store."""
        self.expire()
        pulse = self.store.heartbeat_worker(worker_id, load)
        lag = float(pulse["lag"])
        _HEARTBEAT_LAG.observe(lag)
        if pulse["adopted"]:
            _WORKER_EVENTS.inc(event="adopted")
        self._refresh_gauges()
        return {
            "worker": worker_id,
            "status": "live",
            "lag": lag,
            "adopted": bool(pulse["adopted"]),
            "heartbeat_ttl": self.heartbeat_ttl,
        }

    def deregister(self, worker_id: str) -> dict[str, object]:
        """Gracefully remove a worker; its active leases re-queue."""
        left = self.store.deregister_worker(worker_id)
        if left:
            _WORKER_EVENTS.inc(event="left")
        self._refresh_gauges()
        return {"worker": worker_id, "left": left}

    # ------------------------------------------------------------------
    # The lease queue
    # ------------------------------------------------------------------
    def lease(self, worker_id: str) -> dict[str, object]:
        """Pull one chunk for ``worker_id`` (``{"lease": None}`` when
        the queue is empty)."""
        self.expire()
        order = self.store.grant_lease(worker_id, self.lease_ttl)
        if order is None:
            return {"lease": None}
        _LEASE_EVENTS.inc(event="granted")
        if order.get("stolen_from") is not None:
            _STEALS.inc()
        order["ttl"] = self.lease_ttl
        return {"lease": order}

    def complete(
        self,
        worker_id: str,
        job_id: str,
        chunk_index: int,
        result: dict[str, object],
        *,
        elapsed: float = 0.0,
    ) -> dict[str, object]:
        """Durably record a leased chunk's result."""
        first = self.store.complete_lease(
            worker_id, job_id, chunk_index, result, elapsed=float(elapsed)
        )
        _LEASE_EVENTS.inc(event="completed" if first else "duplicate")
        return {"recorded": True, "first": first, "job": job_id,
                "chunk": int(chunk_index)}

    def fail(
        self, worker_id: str, job_id: str, chunk_index: int, error: str
    ) -> dict[str, object]:
        """A chunk *raised* on its worker: fail the job, free the lease.

        Mirrors the push executors' contract — a worker crash is
        retried (lease expiry), but an error *reply* fails the job,
        because a bad spec raises identically everywhere.
        """
        self.store.release_lease(job_id, int(chunk_index), "expired")
        self.store.set_status(
            job_id, "failed",
            error=f"chunk {int(chunk_index)} on {worker_id}: {error}",
        )
        _LEASE_EVENTS.inc(event="failed")
        return {"recorded": True, "job": job_id, "chunk": int(chunk_index),
                "failed": True}

    def expire(self) -> dict[str, object]:
        """One liveness sweep: stale workers lost, overdue leases freed."""
        lost = self.store.mark_lost_workers(self.heartbeat_ttl)
        if lost:
            _WORKER_EVENTS.inc(len(lost), event="lost")
        expired = self.store.expire_leases()
        if expired:
            _LEASE_EVENTS.inc(len(expired), event="expired")
        if lost or expired:
            self._refresh_gauges()
        return {"lost": lost, "expired": expired}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict[str, object]:
        """The operator view ``GET /v1/fleet`` serves."""
        self.expire()
        workers = self.store.workers()
        return {
            "workers": workers,
            "leases": self.store.leases(active_only=True),
            "queue": self.store.queue_depth(),
            "lease_ttl": self.lease_ttl,
            "heartbeat_ttl": self.heartbeat_ttl,
        }

    def _refresh_gauges(self) -> None:
        counts = {"live": 0, "lost": 0, "left": 0}
        for row in self.store.workers():
            status = str(row["status"])
            counts[status] = counts.get(status, 0) + 1
        for state, count in counts.items():
            _WORKERS.set(count, state=state)
