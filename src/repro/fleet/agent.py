"""The worker-side fleet loop that ``repro serve --join URL`` embeds.

A :class:`FleetAgent` turns any process that can execute job chunks
into a fleet worker: it registers with the coordinator, heartbeats with
its current load on a daemon timer, and runs ``capacity`` puller
threads that lease chunks, execute them through the same
:data:`~repro.jobs.executor.CHUNK_RUNNERS` table a local shard would
use, and post the results back.  Everything is pull-shaped, so the
agent — not the coordinator — decides when it can take more work, and
a slow worker simply pulls less often (the work-stealing win on
heterogeneous fleets).

Failure handling mirrors the durable-store fault model:

* coordinator unreachable (restarting, network blip): every loop
  retries with a bounded backoff — registration state is durable on
  the coordinator, so the next heartbeat after a coordinator restart
  re-adopts this worker;
* coordinator answers 404 for this worker (a fresh store file): the
  agent re-registers and carries on;
* a chunk that *raises* is reported as a failure so the coordinator
  can fail the job — a bad spec raises identically everywhere, and
  retrying it forever would wedge the queue.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.client.client import MarketplaceClient
from repro.client.errors import ClientError, NotFoundError, TransportError
from repro.fleet.manager import worker_id_for
from repro.utils.validation import require

__all__ = ["FleetAgent"]

#: Worker-side chunk accounting, by terminal result.
_AGENT_CHUNKS = obs.REGISTRY.counter(
    "repro_fleet_agent_chunks_total",
    "Chunks this worker leased, by result.",
    ("result",),
)

#: Backoff ceiling for loops that talk to an unreachable coordinator.
_MAX_BACKOFF = 5.0


class FleetAgent:
    """Register, heartbeat, lease, execute, complete — repeatedly.

    Parameters
    ----------
    coordinator:
        Base URL of the coordinator's ``repro serve`` deployment.
    url:
        This worker's advertised URL (its identity: the worker id is
        content-addressed from it).
    capacity:
        Concurrent puller threads — the number of chunks this worker
        is willing to run at once, also advertised to the coordinator.
    labels:
        Free-form worker metadata, stored and echoed by ``repro fleet
        status`` (e.g. ``{"host": "gpu-3"}``).
    poll:
        Sleep between lease attempts when the queue is empty.
    heartbeat_interval:
        Seconds between heartbeats; keep well under the coordinator's
        ``heartbeat_ttl`` or the worker flaps lost/adopted.
    load_probe:
        Zero-argument callable returning this worker's current load
        dict — the same ``{sessions, chunks}`` shape ``GET
        /v1/healthz`` reports, so probes and heartbeats agree.
    throttle:
        Extra seconds to sleep per executed chunk (benchmark/test knob
        for heterogeneous-fleet scenarios; also settable via the
        ``REPRO_FLEET_THROTTLE`` environment variable in ``repro serve
        --join``).
    client_options:
        Extra :class:`~repro.client.http.HttpTransport` keyword
        arguments for the coordinator connection.
    """

    def __init__(
        self,
        coordinator: str,
        url: str,
        *,
        capacity: int = 1,
        labels: dict[str, object] | None = None,
        poll: float = 0.2,
        heartbeat_interval: float = 2.0,
        load_probe: object = None,
        throttle: float = 0.0,
        client_options: dict[str, object] | None = None,
    ) -> None:
        require(bool(coordinator), "the agent needs a coordinator URL")
        require(capacity >= 1, "capacity must be >= 1")
        require(poll > 0, "poll must be > 0")
        require(heartbeat_interval > 0, "heartbeat_interval must be > 0")
        require(throttle >= 0, "throttle must be >= 0")
        self.coordinator = str(coordinator).rstrip("/")
        self.url = str(url).rstrip("/")
        self.worker_id = worker_id_for(self.url)
        self.capacity = int(capacity)
        self.labels = dict(labels or {})
        self.poll = float(poll)
        self.heartbeat_interval = float(heartbeat_interval)
        self.load_probe = load_probe
        self.throttle = float(throttle)
        self.client_options = dict(client_options or {})
        self._stop = threading.Event()
        self._registered = threading.Event()
        self._threads: list[threading.Thread] = []
        # Chunks currently executing in this process: the same family
        # `_post_chunk` and `GET /v1/healthz` read, so an agent's
        # heartbeat load and an external probe agree by construction.
        self._running = obs.REGISTRY.gauge(
            "repro_job_chunks_running",
            "Job chunks currently executing in this process.",
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the heartbeat thread and ``capacity`` puller threads."""
        require(not self._threads, "agent already started")
        self._stop.clear()
        names = [
            (f"fleet-heartbeat-{self.worker_id}", self._heartbeat_loop)
        ] + [
            (f"fleet-pull-{self.worker_id}-{i}", self._work_loop)
            for i in range(self.capacity)
        ]
        for name, target in names:
            thread = threading.Thread(target=target, name=name, daemon=True)
            self._threads.append(thread)
            thread.start()

    def stop(self, *, deregister: bool = True, timeout: float = 10.0) -> None:
        """Stop the loops; optionally tell the coordinator goodbye."""
        self._stop.set()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._threads = []
        if deregister and self._registered.is_set():
            try:
                with self._client() as client:
                    client.deregister_worker(self.worker_id)
            except ClientError:
                pass  # the coordinator will mark us lost on its own
        self._registered.clear()

    def __enter__(self) -> "FleetAgent":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _client(self) -> MarketplaceClient:
        return MarketplaceClient.connect(self.coordinator,
                                         **self.client_options)

    def _load(self) -> dict[str, object]:
        if callable(self.load_probe):
            load = self.load_probe()
            if isinstance(load, dict):
                return load
        return {"sessions": 0, "chunks": int(self._running.value())}

    def _ensure_registered(self, client: MarketplaceClient) -> bool:
        """Register if needed; False when the coordinator is unreachable."""
        if self._registered.is_set():
            return True
        try:
            client.register_worker(self.url, capacity=self.capacity,
                                   labels=self.labels)
        except TransportError:
            return False
        self._registered.set()
        return True

    def _heartbeat_loop(self) -> None:
        with self._client() as client:
            while not self._stop.wait(self.heartbeat_interval):
                if not self._ensure_registered(client):
                    continue
                try:
                    client.worker_heartbeat(self.worker_id, load=self._load())
                except NotFoundError:
                    # Fresh coordinator store: our row is gone.
                    self._registered.clear()
                except TransportError:
                    pass  # coordinator down/restarting; keep pulsing

    def _work_loop(self) -> None:
        backoff = self.poll
        with self._client() as client:
            while not self._stop.is_set():
                if not self._ensure_registered(client):
                    if self._stop.wait(backoff):
                        return
                    backoff = min(backoff * 2, _MAX_BACKOFF)
                    continue
                backoff = self.poll
                try:
                    reply = client.lease_chunk(self.worker_id)
                except NotFoundError:
                    self._registered.clear()
                    continue
                except TransportError:
                    if self._stop.wait(backoff):
                        return
                    backoff = min(backoff * 2, _MAX_BACKOFF)
                    continue
                order = reply.get("lease")
                if not order:
                    self._stop.wait(self.poll)
                    continue
                self._execute(client, order)

    def _execute(self, client: MarketplaceClient,
                 order: dict[str, object]) -> None:
        """Run one leased chunk and post its result (or failure)."""
        from repro.jobs.executor import CHUNK_RUNNERS

        kind, job = str(order["kind"]), str(order["job"])
        chunk = int(str(order["chunk"]))
        start, stop = int(str(order["start"])), int(str(order["stop"]))
        spec = order["spec"]
        assert isinstance(spec, dict)
        error: str | None = None
        payload: dict[str, object] = {}
        self._running.add(1)
        try:
            with obs.span(f"fleet-chunk:{kind}", kind=kind, job=job,
                          chunk=chunk, start=start, stop=stop):
                payload = CHUNK_RUNNERS[kind](spec, start, stop)
        except Exception as exc:
            error = repr(exc)
        finally:
            self._running.add(-1)
        if self.throttle:
            # Heterogeneous-fleet knob: model a slower worker by
            # stretching its per-chunk service time.
            self._stop.wait(self.throttle)
        self._report(client, job, chunk, payload, error)

    def _report(self, client: MarketplaceClient, job: str, chunk: int,
                payload: dict[str, object], error: str | None) -> None:
        """Deliver a chunk outcome, riding out coordinator restarts."""
        backoff = self.poll
        while not self._stop.is_set():
            try:
                if error is None:
                    elapsed = float(str(payload.get("elapsed", 0.0)))
                    client.complete_chunk(self.worker_id, job, chunk,
                                          payload, elapsed=elapsed)
                    _AGENT_CHUNKS.inc(result="done")
                else:
                    client.fail_chunk(self.worker_id, job, chunk, error)
                    _AGENT_CHUNKS.inc(result="failed")
                return
            except NotFoundError:
                # Coordinator lost our registration (fresh store) or the
                # job itself: re-register once, then retry the delivery;
                # if the job is truly gone the next attempt 404s again
                # and the result is dropped with the lease.
                self._registered.clear()
                if not self._ensure_registered(client):
                    if self._stop.wait(backoff):
                        return
                    backoff = min(backoff * 2, _MAX_BACKOFF)
                    continue
                try:
                    client.job(job)
                except NotFoundError:
                    _AGENT_CHUNKS.inc(result="dropped")
                    return
                except TransportError:
                    pass
            except TransportError:
                # Coordinator down; the result is worth waiting for —
                # chunks are deterministic but not free.
                if self._stop.wait(backoff):
                    return
                backoff = min(backoff * 2, _MAX_BACKOFF)
