"""The elastic worker fleet: registration, heartbeats, work stealing.

PR 5's :class:`~repro.jobs.remote.RemoteShardExecutor` drives a
*static* ``--workers`` list and pushes chunks at it; this package
inverts the arrow into the deployment shape of real federated
platforms.  Workers announce themselves to a coordinator (``POST
/v1/workers``), heartbeat with their current load, and *pull* chunks
from a shared lease-based queue — so a heterogeneous fleet
load-balances itself (work stealing), a late joiner immediately picks
up pending chunks, and a dead or hung worker's lease expires back into
the queue instead of stranding the sweep.

Three pieces:

* :class:`~repro.fleet.manager.FleetManager` — coordinator-side
  policy over the durable :class:`~repro.jobs.store.JobStore` (fleet
  state persists next to the jobs it serves, so a kill -9'd
  coordinator restarts with workers and leases intact and re-adopts
  live workers from their next heartbeat);
* :class:`~repro.fleet.agent.FleetAgent` — the worker-side loop
  ``repro serve --join URL`` embeds (register, heartbeat, lease,
  execute, complete, repeat);
* :class:`~repro.fleet.executor.FleetExecutor` — the coordinator's
  executor: it marks the job running and watches the store while the
  fleet drains the queue, then merges exactly as the single-process
  path would — merged reports are bit-identical for any join/leave/
  kill interleaving.
"""

from repro.fleet.agent import FleetAgent
from repro.fleet.executor import FleetExecutor
from repro.fleet.manager import FleetManager, worker_id_for

__all__ = [
    "FleetAgent",
    "FleetExecutor",
    "FleetManager",
    "worker_id_for",
]
