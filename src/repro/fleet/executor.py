"""The coordinator's executor for fleet-run jobs.

:class:`FleetExecutor` is the third sibling of
:class:`~repro.jobs.executor.ShardedExecutor` (local process pool) and
:class:`~repro.jobs.remote.RemoteShardExecutor` (push to a static
worker list): it runs *no* chunks itself.  The job's pending chunks sit
in the store as a lease queue; registered workers pull, execute and
complete them through the ``/v1/workers`` routes; this executor marks
the job running, keeps lease/heartbeat liveness swept while it waits,
and performs the same deterministic merge as every other executor once
the queue drains — so the merged report is bit-identical to the
single-process path for any join/leave/kill interleaving.

Because all coordination state is durable, the executor itself is
disposable: kill -9 the coordinator mid-sweep and a fresh
``FleetExecutor`` over the same store file resumes exactly the pending
chunks — workers never notice beyond a few failed heartbeats.
"""

from __future__ import annotations

import threading
import time

from repro.fleet.manager import FleetManager
from repro.jobs.executor import ShardedExecutor
from repro.jobs.store import JobRecord, JobStore
from repro.utils.validation import require

__all__ = ["FleetExecutor"]


class FleetExecutor(ShardedExecutor):
    """Watches the store while the worker fleet drains a job's queue.

    Parameters
    ----------
    store:
        The durable :class:`JobStore` the fleet routes also serve.
    fleet:
        The :class:`FleetManager` to sweep liveness through (defaults
        to a new manager over ``store`` with default TTLs).
    stop_event / max_chunks:
        As on :class:`ShardedExecutor`: graceful drain, and the
        deterministic mid-run stop used by tests and CI drills
        (``max_chunks=K`` returns once K chunks of this invocation have
        completed, leaving the job ``interrupted``/resumable).
    poll:
        Store poll interval in seconds.
    idle_timeout:
        Give up (leaving the job resumable) after this many seconds
        without progress while no live worker holds a lease.  ``None``
        waits indefinitely — the queue is valid before any worker has
        joined, and late joiners pick it up.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        fleet: FleetManager | None = None,
        stop_event: threading.Event | None = None,
        max_chunks: int | None = None,
        poll: float = 0.1,
        idle_timeout: float | None = None,
    ) -> None:
        require(poll > 0, "poll must be > 0")
        super().__init__(store, shards=1, stop_event=stop_event,
                         max_chunks=max_chunks)
        self.fleet = fleet if fleet is not None else FleetManager(store)
        self.poll = float(poll)
        self.idle_timeout = idle_timeout

    def _run_pending(
        self,
        job_id: str,
        record: JobRecord,
        runner: object,
        pending: list[tuple[int, int, int]],
    ) -> bool:
        """Wait for the fleet to drain the queue; True if stopped early.

        ``runner`` is unused — workers resolve ``record.kind`` against
        :data:`~repro.jobs.executor.CHUNK_RUNNERS` on their own side.
        """
        budget = len(pending) if self.max_chunks is None else self.max_chunks
        initial = len(pending)
        last_progress = time.monotonic()
        remaining = initial
        while True:
            self.fleet.expire()
            current = self.store.get(job_id)
            if current.status == "failed":
                # A worker reported a chunk error; surface it exactly
                # as a local shard exception would.
                raise RuntimeError(current.error or
                                   f"job {job_id} failed on a worker")
            now_pending = len(self.store.pending_chunks(job_id))
            if now_pending < remaining:
                remaining = now_pending
                last_progress = time.monotonic()
            if remaining == 0:
                return False
            if self._stopped() or (initial - remaining) >= budget:
                return True
            if self.idle_timeout is not None and self._starved(
                time.monotonic() - last_progress
            ):
                return True
            time.sleep(self.poll)

    def _starved(self, stalled_for: float) -> bool:
        """No progress past the deadline with nobody working the queue."""
        assert self.idle_timeout is not None
        if stalled_for < self.idle_timeout:
            return False
        status = self.fleet.status()
        workers = status["workers"]
        assert isinstance(workers, list)
        live = sum(1 for row in workers if row["status"] == "live")
        leases = status["leases"]
        assert isinstance(leases, list)
        return live == 0 and not leases
