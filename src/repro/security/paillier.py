"""Paillier additively-homomorphic encryption, from scratch.

§3.6 proposes Homomorphic Encryption for protecting the performance
gain exchanged during bargaining; the paper cites Paillier (its
reference [19]).  This module provides a working implementation:

* key generation from Miller-Rabin-tested random primes;
* ``Enc(m1) ⊕ Enc(m2) = Enc(m1 + m2)`` (ciphertext multiplication);
* ``Enc(m) ⊗ k = Enc(m·k)`` (ciphertext exponentiation);
* fixed-point float encoding with exponent tracking, so performance
  gains (small floats) and payments can be computed under encryption.

Simulation-grade, not production crypto: default 256-bit primes keep
tests fast (use >= 1024 for realistic security margins), and no
side-channel hardening is attempted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.utils.rng import as_generator, spawn
from repro.utils.validation import require

__all__ = [
    "EncryptedNumber",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_keypair",
    "is_probable_prime",
]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)

#: Fixed-point scale for float encoding (one "exponent" unit).
FLOAT_SCALE = 1 << 32


def _rand_int_below(rng, bound: int) -> int:
    """Uniform integer in [0, bound) for arbitrary-precision bounds."""
    n_bits = bound.bit_length()
    while True:
        value = int.from_bytes(rng.bytes((n_bits + 7) // 8), "big")
        value &= (1 << n_bits) - 1
        if value < bound:
            return value


def is_probable_prime(n: int, *, rounds: int = 40, rng: object = None) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    gen = as_generator(rng)
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = 2 + _rand_int_below(gen, n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng) -> int:
    require(bits >= 16, "prime size must be >= 16 bits")
    while True:
        candidate = _rand_int_below(rng, 1 << bits)
        candidate |= (1 << (bits - 1)) | 1  # full size, odd
        if is_probable_prime(candidate, rng=rng):
            return candidate


@dataclass(frozen=True)
class EncryptedNumber:
    """A Paillier ciphertext with a fixed-point exponent.

    ``exponent`` counts how many factors of :data:`FLOAT_SCALE` the
    underlying plaintext mantissa carries; addition aligns exponents,
    scalar multiplication adds them.
    """

    public_key: "PaillierPublicKey"
    ciphertext: int
    exponent: int = 0

    # -- homomorphic operations ----------------------------------------
    def __add__(self, other: object) -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            require(
                self.public_key.n == other.public_key.n,
                "cannot add ciphertexts under different keys",
            )
            a, b = _align(self, other)
            n_sq = self.public_key.n_squared
            return EncryptedNumber(
                self.public_key, (a.ciphertext * b.ciphertext) % n_sq, a.exponent
            )
        return self + self.public_key.encrypt(other, exponent=self.exponent)

    def __radd__(self, other: object) -> "EncryptedNumber":
        return self.__add__(other)

    def __mul__(self, scalar: object) -> "EncryptedNumber":
        require(
            not isinstance(scalar, EncryptedNumber),
            "Paillier supports only ciphertext-plaintext multiplication",
        )
        mantissa, extra_exp = self.public_key.encode(scalar)
        n_sq = self.public_key.n_squared
        return EncryptedNumber(
            self.public_key,
            pow(self.ciphertext, mantissa, n_sq),
            self.exponent + extra_exp,
        )

    def __rmul__(self, scalar: object) -> "EncryptedNumber":
        return self.__mul__(scalar)

    def __sub__(self, other: object) -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            return self + (other * -1)
        return self + self.public_key.encrypt(other, exponent=self.exponent) * -1

    def __rsub__(self, other: object) -> "EncryptedNumber":
        return (self * -1) + other


def _align(a: EncryptedNumber, b: EncryptedNumber) -> tuple[EncryptedNumber, EncryptedNumber]:
    """Bring two ciphertexts to the same (larger) exponent."""
    if a.exponent == b.exponent:
        return a, b
    if a.exponent < b.exponent:
        a = a * (FLOAT_SCALE ** (b.exponent - a.exponent))
        # int scaling via __mul__ adds 0 exponent: encode() treats ints
        # exactly, so fix the bookkeeping here.
        a = EncryptedNumber(a.public_key, a.ciphertext, b.exponent)
        return a, b
    b, a = _align(b, a)
    return a, b


@dataclass(frozen=True)
class PaillierPublicKey:
    """Encryption key ``(n, g = n + 1)``."""

    n: int

    @property
    def n_squared(self) -> int:
        """Modulus of the ciphertext group."""
        return self.n * self.n

    @property
    def max_int(self) -> int:
        """Largest positive plaintext magnitude (half the modulus)."""
        return self.n // 2

    def encode(self, value: object) -> tuple[int, int]:
        """Fixed-point encode ``value`` -> (mantissa mod n, exponent)."""
        if isinstance(value, int):
            mantissa, exponent = value, 0
        else:
            mantissa = int(round(float(value) * FLOAT_SCALE))
            exponent = 1
        require(
            abs(mantissa) <= self.max_int,
            "plaintext magnitude exceeds key capacity",
        )
        return mantissa % self.n, exponent

    def decode(self, mantissa: int, exponent: int) -> float | int:
        """Invert :meth:`encode` (negative values wrap above n/2)."""
        if mantissa > self.max_int:
            mantissa -= self.n
        if exponent == 0:
            return mantissa
        return mantissa / float(FLOAT_SCALE**exponent)

    def raw_encrypt(self, mantissa: int, rng: object = None) -> int:
        """Textbook Paillier: ``c = g^m · r^n mod n²`` with ``g = n+1``."""
        gen = as_generator(rng)
        n, n_sq = self.n, self.n_squared
        while True:
            r = 1 + _rand_int_below(gen, n - 1)
            if math.gcd(r, n) == 1:
                break
        # (n+1)^m = 1 + n·m (mod n²) — the standard shortcut.
        g_m = (1 + n * mantissa) % n_sq
        return (g_m * pow(r, n, n_sq)) % n_sq

    def encrypt(
        self, value: object, *, rng: object = None, exponent: int | None = None
    ) -> EncryptedNumber:
        """Encrypt an int or float (floats use fixed-point encoding)."""
        mantissa, exp = self.encode(value)
        if exponent is not None and exponent > exp:
            mantissa = (mantissa * FLOAT_SCALE ** (exponent - exp)) % self.n
            exp = exponent
        return EncryptedNumber(self, self.raw_encrypt(mantissa, rng), exp)


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Decryption key ``(λ, μ)`` for a public key.

    ``p``/``q`` (the prime factorisation of ``n``) are optional: keys
    carrying them unlock :meth:`raw_decrypt_crt`, which exponentiates
    mod ``p²`` and ``q²`` with half-size exponents and recombines via
    the Chinese Remainder Theorem — the standard ~4x Paillier
    decryption speedup.  Keys built without the factors (``p == 0``)
    fall back to the textbook :meth:`raw_decrypt` transparently.
    """

    public_key: PaillierPublicKey
    lam: int
    mu: int
    p: int = 0
    q: int = 0

    def raw_decrypt(self, ciphertext: int) -> int:
        """Recover the mantissa of a ciphertext (textbook ``L``/``μ``)."""
        n, n_sq = self.public_key.n, self.public_key.n_squared
        x = pow(ciphertext, self.lam, n_sq)
        l_value = (x - 1) // n
        return (l_value * self.mu) % n

    # -- CRT-accelerated decryption ------------------------------------
    # cached_property writes straight into __dict__, which a frozen
    # dataclass permits — the params are derived, not state.
    @cached_property
    def _crt_params(self) -> tuple[int, int, int, int, int]:
        """``(p², q², h_p, h_q, p⁻¹ mod q)`` for :meth:`raw_decrypt_crt`."""
        p, q = self.p, self.q
        p_sq, q_sq = p * p, q * q
        g = self.public_key.n + 1
        h_p = pow((pow(g, p - 1, p_sq) - 1) // p, -1, p)
        h_q = pow((pow(g, q - 1, q_sq) - 1) // q, -1, q)
        return p_sq, q_sq, h_p, h_q, pow(p, -1, q)

    def raw_decrypt_crt(self, ciphertext: int) -> int:
        """:meth:`raw_decrypt`, ~4x faster via the known factorisation.

        Decrypts mod ``p²`` and ``q²`` (half-size moduli *and*
        half-size exponents ``p−1``/``q−1``) and CRT-recombines.  For
        every valid ciphertext the result is pinned equal to
        :meth:`raw_decrypt` — same mantissa, bit for bit.
        """
        if not self.p:
            return self.raw_decrypt(ciphertext)
        p, q = self.p, self.q
        p_sq, q_sq, h_p, h_q, p_inv = self._crt_params
        m_p = ((pow(ciphertext, p - 1, p_sq) - 1) // p) * h_p % p
        m_q = ((pow(ciphertext, q - 1, q_sq) - 1) // q) * h_q % q
        return m_p + p * ((m_q - m_p) * p_inv % q)

    def decrypt(self, encrypted: EncryptedNumber) -> float | int:
        """Decrypt and decode (ints round-trip exactly)."""
        require(
            encrypted.public_key.n == self.public_key.n,
            "ciphertext does not match this key",
        )
        mantissa = self.raw_decrypt(encrypted.ciphertext)
        return self.public_key.decode(mantissa, encrypted.exponent)


def generate_keypair(
    *, bits: int = 512, rng: object = None, seed: int | None = None
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a keypair with two ``bits/2``-bit primes.

    ``seed`` pins the whole generation — prime candidates *and* the
    Miller-Rabin witness draws — to the named RNG stream
    ``spawn(seed, "paillier-keygen", bits)``, so every process handed
    the same ``(seed, bits)`` rebuilds the identical keypair.  That is
    what lets sharded secure jobs derive their keys from the job spec
    alone.  ``seed`` and ``rng`` are mutually exclusive.
    """
    require(bits >= 64, "key size must be >= 64 bits")
    if seed is not None:
        require(rng is None, "pass either seed or rng, not both")
        require(isinstance(seed, int), "seed must be an int")
        rng = spawn(seed, "paillier-keygen", bits)
    gen = as_generator(rng)
    half = bits // 2
    while True:
        p = _random_prime(half, gen)
        q = _random_prime(half, gen)
        if p != q:
            break
    n = p * q
    lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
    public = PaillierPublicKey(n)
    # mu = L(g^lam mod n^2)^{-1} mod n, with g = n+1 -> L(...) = lam mod n.
    x = pow(1 + n, lam, n * n)
    l_value = (x - 1) // n
    mu = pow(l_value, -1, n)
    return public, PaillierPrivateKey(public, lam, mu, p, q)
