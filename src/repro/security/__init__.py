"""Security substrate for the §3.6 analysis: Paillier HE, blinded
comparison of performance gains, the batched/packed fast path the
simulator settles through, and the leakage attack they mitigate."""

from repro.security.batch import (
    ObfuscationPool,
    SecureSettlement,
    SlotLayout,
    pack_values,
    secure_payment_batch,
    secure_payment_serial_reference,
    secure_threshold_check_batch,
    secure_threshold_check_serial_reference,
    settlement_for,
    slot_layout,
    unpack_values,
)
from repro.security.paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
    is_probable_prime,
)
from repro.security.secure_compare import (
    BlindedComparison,
    encrypted_gain,
    secure_payment,
    secure_threshold_check,
)
from repro.security.threat import (
    attack_advantage,
    marginal_value_attack,
    rank_correlation,
)

__all__ = [
    "BlindedComparison",
    "EncryptedNumber",
    "ObfuscationPool",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "SecureSettlement",
    "SlotLayout",
    "attack_advantage",
    "encrypted_gain",
    "generate_keypair",
    "is_probable_prime",
    "marginal_value_attack",
    "pack_values",
    "rank_correlation",
    "secure_payment",
    "secure_payment_batch",
    "secure_payment_serial_reference",
    "secure_threshold_check",
    "secure_threshold_check_batch",
    "secure_threshold_check_serial_reference",
    "settlement_for",
    "slot_layout",
    "unpack_values",
]
