"""Security substrate for the §3.6 analysis: Paillier HE, blinded
comparison of performance gains, and the leakage attack it mitigates."""

from repro.security.paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
    is_probable_prime,
)
from repro.security.secure_compare import (
    BlindedComparison,
    encrypted_gain,
    secure_payment,
    secure_threshold_check,
)
from repro.security.threat import (
    attack_advantage,
    marginal_value_attack,
    rank_correlation,
)

__all__ = [
    "BlindedComparison",
    "EncryptedNumber",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "attack_advantage",
    "encrypted_gain",
    "generate_keypair",
    "is_probable_prime",
    "marginal_value_attack",
    "rank_correlation",
    "secure_payment",
    "secure_threshold_check",
]
