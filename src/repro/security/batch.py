"""Vectorised secure bargaining: packed Paillier at population scale.

The seed serial path (:mod:`repro.security.secure_compare`) performs
one full-width modular exponentiation per encryption and per
decryption, per session, per comparison — the slowest code in the
repo.  This module keeps the protocol (semi-honest parties, blinded
sign tests, linear payment under encryption) but restructures the
arithmetic so whole *rounds* of sessions settle in a handful of
big-int operations:

* **Slot packing** — each session's quantised gain is encrypted
  pre-positioned at a fixed-width slot ``value · B^j`` (``B = 2^W``)
  with a public sign offset, so the product of ``k`` ciphertexts is
  one ciphertext of ``k`` independently-addressable slots.  Per-slot
  homomorphic add and scalar-mul survive because slot arithmetic is
  exact integer arithmetic: only the *final* slot values must fit in
  ``W`` bits, intermediate overlaps cancel against the evaluator's
  plaintext correction term.
* **CRT decryption** — one
  :meth:`~repro.security.paillier.PaillierPrivateKey.raw_decrypt_crt`
  call (half-size moduli and exponents, pinned equal to
  ``raw_decrypt``) recovers all ``k`` slots at once.
* **Obfuscation pool** — :class:`ObfuscationPool` precomputes ``r^n``
  randomisers and draws fresh products of random pairs, so each
  encryption costs ~2 modular multiplications instead of a full
  ``n``-bit exponentiation.  (A randomiser pool narrows the
  randomiser space — a standard simulation-grade relaxation; the
  serial path keeps textbook fresh randomisers.)

Every decrypted outcome is **value-identical** to the seed serial
path: the packed slots carry the *same integers* the serial fixed-point
pipeline produces (``m_g·m_r + m_b·S`` for payments,
``s·(m_g − m_t)`` for blinded comparisons), so the final float
divisions are bit-for-bit the same, and comparison bits never depend
on the blinds.  The serial path is retained verbatim behind
:func:`secure_payment_serial_reference` /
:func:`secure_threshold_check_serial_reference`.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from repro import obs
from repro.market.pricing import QuotedPrice
from repro.security.paillier import (
    FLOAT_SCALE,
    PaillierPrivateKey,
    PaillierPublicKey,
    _rand_int_below,
    generate_keypair,
)
from repro.security.secure_compare import (
    BlindedComparison,
    encrypted_gain,
    secure_payment,
    secure_threshold_check,
)
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import require

__all__ = [
    "ObfuscationPool",
    "SecureSettlement",
    "SlotLayout",
    "pack_values",
    "secure_payment_batch",
    "secure_payment_serial_reference",
    "secure_threshold_check_batch",
    "secure_threshold_check_serial_reference",
    "settlement_for",
    "slot_layout",
    "unpack_values",
]

#: Gain-mantissa contract, mirroring ``encrypted_gain``'s plausible
#: range check (−1.0 <= ΔG <= 10.0 at ``FLOAT_SCALE`` fixed point).
_GAIN_MANT_MIN = -FLOAT_SCALE
_GAIN_MANT_MAX = 10 * FLOAT_SCALE

#: Public pre-offset added to every gain mantissa before encryption so
#: the slot-positioned plaintext is non-negative (a negative mantissa
#: would wrap mod ``n`` and smear across every higher slot).  The
#: evaluator knows it and subtracts ``coeff · _GAIN_OFFSET`` from its
#: plaintext correction.
_GAIN_OFFSET = 2 * FLOAT_SCALE

_DEFAULT_BLIND_RANGE = (1.0, 1000.0)

#: Settlement telemetry (monotonic timings only — this module is
#: digest-bearing, and settled payments must stay bit-identical with
#: metrics on or off).
_SETTLE_SECONDS = obs.REGISTRY.histogram(
    "repro_secure_settle_seconds",
    "Batched Paillier settle() latency per call (monotonic, seconds).",
)
_SETTLED_SESSIONS = obs.REGISTRY.counter(
    "repro_secure_settled_sessions_total",
    "Sessions whose payments were settled under encryption.",
)


def _quantise(value: float) -> int:
    """``encode``'s float mantissa: ``round(value · FLOAT_SCALE)``."""
    return int(round(float(value) * FLOAT_SCALE))


def _quantise_gain(delta_g: float) -> int:
    require(-1.0 <= float(delta_g) <= 10.0, "gain outside plausible range")
    return _quantise(delta_g)


# ----------------------------------------------------------------------
# Slot layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SlotLayout:
    """Fixed-width packing geometry: ``slots`` values of ``width`` bits.

    Each slot stores ``value + offset`` with ``offset = 2^(width−1)``
    (sign-offset encoding), so signed slot values in
    ``(−offset, offset)`` pack into non-negative fields.
    """

    width: int
    slots: int

    @property
    def offset(self) -> int:
        """The per-slot sign offset (half the slot range)."""
        return 1 << (self.width - 1)

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


def slot_layout(public_key: PaillierPublicKey, max_abs: int) -> SlotLayout:
    """The widest packing whose slots safely hold ``|value| <= max_abs``.

    ``width`` leaves two guard bits over the magnitude bound;
    ``slots`` fills the key's plaintext space minus two bits, so the
    packed total always stays below ``n`` (no modular wrap) and below
    the signed-decode boundary ``n/2``.
    """
    require(max_abs >= 0, "max_abs must be >= 0")
    width = max(int(max_abs).bit_length() + 2, 8)
    slots = (public_key.n.bit_length() - 2) // width
    require(
        slots >= 1,
        f"key too small: one {width}-bit slot does not fit "
        f"{public_key.n.bit_length()}-bit plaintexts",
    )
    return SlotLayout(width=width, slots=slots)


def pack_values(values: list[int], layout: SlotLayout) -> int:
    """Pack signed slot values into one integer (sign-offset encoded)."""
    require(len(values) <= layout.slots, "more values than slots")
    total = 0
    for j, value in enumerate(values):
        field = int(value) + layout.offset
        require(0 <= field <= layout.mask,
                "slot value outside the layout's signed range")
        total |= field << (j * layout.width)
    return total


def unpack_values(total: int, count: int, layout: SlotLayout) -> list[int]:
    """Invert :func:`pack_values` for the first ``count`` slots."""
    require(0 <= count <= layout.slots, "count outside the layout")
    return [
        ((total >> (j * layout.width)) & layout.mask) - layout.offset
        for j in range(count)
    ]


# ----------------------------------------------------------------------
# Obfuscation pool
# ----------------------------------------------------------------------
class ObfuscationPool:
    """Precomputed ``r^n mod n²`` randomisers for amortised encryption.

    Building the pool costs ``size`` full modular exponentiations —
    once per round (or per settlement).  Each draw multiplies two
    distinct pool entries (``r_i^n · r_j^n = (r_i·r_j)^n``, still a
    valid randomiser), so every subsequent encryption is ~2 modular
    multiplications.
    """

    def __init__(
        self,
        public_key: PaillierPublicKey,
        *,
        size: int = 32,
        rng: object = None,
    ):
        require(size >= 2, "pool size must be >= 2")
        self.public_key = public_key
        gen = as_generator(rng)
        n, n_sq = public_key.n, public_key.n_squared
        entries = []
        while len(entries) < size:
            r = 1 + _rand_int_below(gen, n - 1)
            if math.gcd(r, n) == 1:
                entries.append(pow(r, n, n_sq))
        self._entries = entries
        self._rng = gen
        self.draws = 0

    def draw(self) -> int:
        """A fresh randomiser ``(r_i · r_j)^n mod n²`` (i ≠ j)."""
        size = len(self._entries)
        i = int(self._rng.integers(size))
        j = int(self._rng.integers(size - 1))
        if j >= i:
            j += 1
        self.draws += 1
        return (self._entries[i] * self._entries[j]) % self.public_key.n_squared

    def raw_encrypt(self, mantissa: int) -> int:
        """``Enc(mantissa)`` using a pooled randomiser (~2 modmuls)."""
        n, n_sq = self.public_key.n, self.public_key.n_squared
        return ((1 + n * (mantissa % n)) % n_sq) * self.draw() % n_sq


# ----------------------------------------------------------------------
# The packed affine core
# ----------------------------------------------------------------------
def _packed_affine(
    gain_mantissas: list[int],
    coeffs: list[int],
    consts: list[int],
    public_key: PaillierPublicKey,
    private_key: PaillierPrivateKey,
    pool: ObfuscationPool,
) -> list[int]:
    """``coeffs[i]·m_i + consts[i]`` for every ``i``, under encryption.

    The task party encrypts each gain slot-positioned with the public
    offset: ``Enc((m_i + _GAIN_OFFSET) · B^j)``.  The evaluator (who
    never decrypts) raises each ciphertext to its small positive
    coefficient, multiplies the pack together, and adds one known
    plaintext correction ``Σ_j (offset + consts − coeffs·_GAIN_OFFSET)
    · B^j``; the key holder then recovers all slots with a single CRT
    decryption.  Slot values are exact integers, so results are
    independent of the pack width and grouping.
    """
    require(len(coeffs) == len(gain_mantissas) == len(consts),
            "batch inputs must have equal lengths")
    bound = 1
    for a, c in zip(coeffs, consts):
        require(a >= 0, "coefficients must be non-negative")
        bound = max(bound, abs(a * _GAIN_MANT_MAX + c),
                    abs(a * _GAIN_MANT_MIN + c))
    layout = slot_layout(public_key, bound)
    n, n_sq = public_key.n, public_key.n_squared
    out: list[int] = []
    for start in range(0, len(gain_mantissas), layout.slots):
        stop = min(start + layout.slots, len(gain_mantissas))
        packed = 1
        correction = 0
        for j, i in enumerate(range(start, stop)):
            shift = j * layout.width
            cipher = pool.raw_encrypt(
                (gain_mantissas[i] + _GAIN_OFFSET) << shift
            )
            packed = (packed * pow(cipher, coeffs[i], n_sq)) % n_sq
            correction += (
                layout.offset + consts[i] - coeffs[i] * _GAIN_OFFSET
            ) << shift
        packed = (packed * ((1 + n * (correction % n)) % n_sq)) % n_sq
        total = private_key.raw_decrypt_crt(packed)
        out.extend(unpack_values(total, stop - start, layout))
    return out


# ----------------------------------------------------------------------
# Batched protocol fronts
# ----------------------------------------------------------------------
def secure_threshold_check_batch(
    gains: list[float],
    thresholds: list[float],
    public_key: PaillierPublicKey,
    private_key: PaillierPrivateKey,
    *,
    rng: object = None,
    pool: ObfuscationPool | None = None,
    blind_range: tuple[float, float] = _DEFAULT_BLIND_RANGE,
) -> list[BlindedComparison]:
    """``ΔG_i >= t_i`` for a whole round of sessions, packed.

    Per slot the key holder sees ``s_i·(m_g − m_t)`` — the same
    multiplicatively-blinded difference the serial protocol reveals,
    one fresh positive blind per session.  The comparison bits are
    blind-independent, so they match the serial path exactly.
    """
    gen = as_generator(rng)
    if pool is None:
        pool = ObfuscationPool(public_key, rng=gen)
    mantissas = [_quantise_gain(g) for g in gains]
    t_mants = [_quantise(t) for t in thresholds]
    blinds = [_quantise(float(gen.uniform(*blind_range))) for _ in gains]
    values = _packed_affine(
        mantissas,
        blinds,
        [-s * t for s, t in zip(blinds, t_mants)],
        public_key,
        private_key,
        pool,
    )
    divisor = float(FLOAT_SCALE**2)
    return [
        BlindedComparison(result=(v / divisor) >= 0.0,
                          blinded_value=v / divisor)
        for v in values
    ]


def secure_payment_batch(
    gains: list[float],
    quotes: list[QuotedPrice],
    public_key: PaillierPublicKey,
    private_key: PaillierPrivateKey,
    *,
    rng: object = None,
    pool: ObfuscationPool | None = None,
) -> list[float]:
    """Def. 2.3 payments for a whole round, value-identical to serial.

    Mirrors :func:`repro.security.secure_compare.secure_payment`'s
    adaptive structure, one packed round per stage instead of one
    big-int op per session: (1) blinded cap checks for everyone,
    (2) blinded floor checks for the uncapped, (3) packed linear
    payments ``m_g·m_r + m_b·S`` for the in-range remainder — the same
    integers the serial fixed-point pipeline decrypts, so the returned
    floats are bit-for-bit equal.
    """
    require(len(gains) == len(quotes), "gains/quotes must have equal lengths")
    gen = as_generator(rng)
    if pool is None:
        pool = ObfuscationPool(public_key, rng=gen)
    payments = [0.0] * len(gains)

    at_cap = secure_threshold_check_batch(
        gains, [q.turning_point for q in quotes],
        public_key, private_key, rng=gen, pool=pool,
    )
    uncapped = []
    for i, check in enumerate(at_cap):
        if check.result:
            payments[i] = quotes[i].cap
        else:
            uncapped.append(i)
    if not uncapped:
        return payments

    above_floor = secure_threshold_check_batch(
        [gains[i] for i in uncapped], [0.0] * len(uncapped),
        public_key, private_key, rng=gen, pool=pool,
    )
    linear = []
    for i, check in zip(uncapped, above_floor):
        if check.result:
            linear.append(i)
        else:
            payments[i] = quotes[i].base
    if not linear:
        return payments

    values = _packed_affine(
        [_quantise_gain(gains[i]) for i in linear],
        [_quantise(quotes[i].rate) for i in linear],
        [_quantise(quotes[i].base) * FLOAT_SCALE for i in linear],
        public_key,
        private_key,
        pool,
    )
    divisor = float(FLOAT_SCALE**2)
    for i, value in zip(linear, values):
        payments[i] = float(value / divisor)
    return payments


# ----------------------------------------------------------------------
# The retained seed serial path (the reference the batch is pinned to)
# ----------------------------------------------------------------------
def secure_threshold_check_serial_reference(
    gains: list[float],
    thresholds: list[float],
    public_key: PaillierPublicKey,
    private_key: PaillierPrivateKey,
    *,
    rng: object = None,
    blind_range: tuple[float, float] = _DEFAULT_BLIND_RANGE,
) -> list[BlindedComparison]:
    """The seed serial path, looped: one encrypt + check per session."""
    gen = as_generator(rng)
    out = []
    for gain, threshold in zip(gains, thresholds):
        enc = encrypted_gain(float(gain), public_key, rng=gen)
        out.append(secure_threshold_check(
            enc, float(threshold), private_key,
            rng=gen, blind_range=blind_range,
        ))
    return out


def secure_payment_serial_reference(
    gains: list[float],
    quotes: list[QuotedPrice],
    public_key: PaillierPublicKey,
    private_key: PaillierPrivateKey,
    *,
    rng: object = None,
) -> list[float]:
    """The seed serial path, looped: one encrypt + payment per session."""
    gen = as_generator(rng)
    out = []
    for gain, quote in zip(gains, quotes):
        enc = encrypted_gain(float(gain), public_key, rng=gen)
        out.append(secure_payment(enc, quote, private_key, rng=gen))
    return out


# ----------------------------------------------------------------------
# Settlement: the simulator/service front
# ----------------------------------------------------------------------
class SecureSettlement:
    """Deterministic secure-payment engine for a (seed, key_bits) pair.

    Rebuildable from a job spec alone: the keypair comes from
    :func:`generate_keypair(seed=...) <repro.security.paillier.generate_keypair>`
    and the obfuscation pool from a named child stream, so every shard
    of a sharded secure job derives the identical keys.  Settled
    payments depend only on each session's ``(ΔG, quote)`` — never on
    the blinds, the pack grouping, or which other sessions share the
    batch — which is what keeps sharded secure reports digest-equal.
    """

    def __init__(self, *, seed: int = 0, key_bits: int = 256,
                 pool_size: int = 32):
        require(key_bits >= 64, "key_bits must be >= 64")
        self.seed = int(seed)
        self.key_bits = int(key_bits)
        self.public_key, self.private_key = generate_keypair(
            bits=self.key_bits, seed=self.seed
        )
        self.pool = ObfuscationPool(
            self.public_key, size=pool_size,
            rng=spawn(self.seed, "paillier-pool", self.key_bits),
        )
        self._lock = threading.Lock()
        self.settled_sessions = 0

    def settle(self, gains: list[float], quotes: list[QuotedPrice],
               *, rng: object = None) -> list[float]:
        """Batched secure payments for accepted sessions, in order."""
        if not gains:
            return []
        t0 = time.perf_counter()
        with self._lock:  # the pool's RNG draw is shared mutable state
            payments = secure_payment_batch(
                gains, quotes, self.public_key, self.private_key,
                rng=as_generator(rng) if rng is not None
                else spawn(self.seed, "paillier-blinds", self.key_bits),
                pool=self.pool,
            )
            self.settled_sessions += len(gains)
        _SETTLE_SECONDS.observe(time.perf_counter() - t0)
        _SETTLED_SESSIONS.inc(len(gains))
        return payments


#: Process-level settlement memo: workers running many chunks of one
#: secure job (and the parent merging them) build keys once.
_SETTLEMENTS: dict[tuple[int, int], SecureSettlement] = {}
_SETTLEMENTS_LOCK = threading.Lock()


def settlement_for(seed: int, key_bits: int) -> SecureSettlement:
    """The process-wide :class:`SecureSettlement` for ``(seed, key_bits)``."""
    key = (int(seed), int(key_bits))
    with _SETTLEMENTS_LOCK:
        settlement = _SETTLEMENTS.get(key)
        if settlement is None:
            settlement = SecureSettlement(seed=key[0], key_bits=key[1])
            _SETTLEMENTS[key] = settlement
        return settlement
