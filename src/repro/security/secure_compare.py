"""Privacy-preserving ΔG exchange for the bargaining phase (§3.6).

The threat the paper identifies: the raw performance gain crosses the
party boundary every round, and a curious counterparty can run
inference attacks on it.  The mitigation sketched in §3.6 is HE/SMC for
the multiplication/comparison operations bargaining actually needs.
This module instantiates that sketch with Paillier:

* :func:`secure_payment` — the data party computes the *linear region*
  of the payment ``P0 + p·ΔG`` homomorphically from ``Enc(ΔG)`` without
  ever seeing ΔG; the cap/floor clamp resolves through two blinded
  comparisons.
* :class:`BlindedComparison` — a two-message protocol deciding
  ``ΔG >= t`` where the evaluator learns only the *sign* of a
  multiplicatively-blinded difference, not its magnitude.

Model: semi-honest parties (follow the protocol, try to infer).  The
blinding leaks one bit per comparison — exactly the bit the protocol is
supposed to output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.market.pricing import QuotedPrice
from repro.security.paillier import (
    EncryptedNumber,
    PaillierPrivateKey,
    PaillierPublicKey,
)
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["BlindedComparison", "secure_payment", "secure_threshold_check"]


@dataclass(frozen=True)
class BlindedComparison:
    """Outcome of one blinded threshold comparison.

    ``blinded`` is what the key holder decrypts: ``s·(ΔG − t)`` for a
    random positive blind ``s``; its sign answers the query, its
    magnitude is uniformly scaled noise.
    """

    result: bool
    blinded_value: float


def secure_threshold_check(
    enc_gain: EncryptedNumber,
    threshold: float,
    private_key: PaillierPrivateKey,
    *,
    rng: object = None,
    blind_range: tuple[float, float] = (1.0, 1000.0),
) -> BlindedComparison:
    """Decide ``ΔG >= threshold`` from ``Enc(ΔG)`` with a blinded sign test.

    The holder of ``enc_gain`` (who cannot decrypt) computes
    ``Enc(s·(ΔG − t))`` for a fresh uniform blind ``s`` and hands it to
    the key holder, who learns only the sign.
    """
    gen = as_generator(rng)
    blind = float(gen.uniform(*blind_range))
    masked = (enc_gain - threshold) * blind
    revealed = float(private_key.decrypt(masked))
    return BlindedComparison(result=revealed >= 0.0, blinded_value=revealed)


def secure_payment(
    enc_gain: EncryptedNumber,
    quote: QuotedPrice,
    private_key: PaillierPrivateKey,
    *,
    rng: object = None,
) -> float:
    """Compute the Def. 2.3 payment without revealing ΔG.

    The data party (no private key) computes the linear payment
    ``Enc(P0 + p·ΔG)`` homomorphically and resolves the clamp with two
    blinded comparisons against the turning point and zero:

    * ``ΔG >= (Ph − P0)/p``  -> payment saturates at ``Ph``;
    * ``ΔG < 0``            -> payment floors at ``P0``;
    * otherwise the key holder decrypts the *linear payment only* —
      which both parties are entitled to know, since it is the invoice.
    """
    gen = as_generator(rng)
    at_cap = secure_threshold_check(
        enc_gain, quote.turning_point, private_key, rng=gen
    )
    if at_cap.result:
        return quote.cap
    above_floor = secure_threshold_check(enc_gain, 0.0, private_key, rng=gen)
    if not above_floor.result:
        return quote.base
    linear = enc_gain * quote.rate + quote.base
    return float(private_key.decrypt(linear))


def encrypted_gain(
    delta_g: float, public_key: PaillierPublicKey, *, rng: object = None
) -> EncryptedNumber:
    """The task party's encrypted report of a VFL course's gain."""
    require(-1.0 <= delta_g <= 10.0, "gain outside plausible range")
    return public_key.encrypt(float(delta_g), rng=as_generator(rng))
