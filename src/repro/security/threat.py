"""Threat demonstration: what plaintext ΔG exchange leaks (§3.6).

The paper warns that *"a party can access this information
[performance gain] and conduct possible inference attacks on the other
party's data."*  This module makes the leak concrete and measurable:

* :func:`marginal_value_attack` — an honest-but-curious task party that
  logs ``(bundle, ΔG)`` pairs across bargaining rounds can regress
  per-feature marginal values and recover *which of the data party's
  features are label-informative* — proprietary catalogue knowledge the
  seller never agreed to reveal.
* :func:`attack_advantage` — scores the attack by rank correlation with
  the ground-truth feature values; with the §3.6 mitigation (only
  blinded signs cross the boundary) the observations collapse to one
  bit and the attack degrades toward chance.
"""

from __future__ import annotations

import numpy as np

from repro.market.bundle import FeatureBundle
from repro.utils.validation import require

__all__ = ["attack_advantage", "marginal_value_attack", "rank_correlation"]


def marginal_value_attack(
    observations: list[tuple[FeatureBundle, float]], n_features: int
) -> np.ndarray:
    """Least-squares per-feature marginal values from (bundle, ΔG) logs.

    Models ``ΔG(F) ~ Σ_{i in F} v_i`` and solves for ``v`` by ridge
    regression over the bundle incidence matrix — exactly what a
    curious counterparty can do with its bargaining transcript.
    """
    require(bool(observations), "attack needs at least one observation")
    require(n_features >= 1, "n_features must be >= 1")
    X = np.zeros((len(observations), n_features))
    y = np.zeros(len(observations))
    for row, (bundle, gain) in enumerate(observations):
        X[row, list(bundle)] = 1.0
        y[row] = gain
    # Ridge for stability on small transcripts.
    reg = 1e-3 * np.eye(n_features)
    return np.linalg.solve(X.T @ X + reg, X.T @ y)


def rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (ties broken by order)."""
    a, b = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
    require(a.shape == b.shape, "inputs must align")
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = float(np.sqrt((ra**2).sum() * (rb**2).sum()))
    if denom == 0:
        return 0.0
    return float((ra * rb).sum() / denom)


def attack_advantage(
    observations: list[tuple[FeatureBundle, float]],
    true_values: np.ndarray,
) -> float:
    """How much catalogue knowledge the transcript leaks.

    Returns the rank correlation between attacked marginal values and
    the ground truth — 1.0 means the adversary fully recovers the
    seller's feature-quality ordering, ~0 means the transcript was
    uninformative (e.g. because only blinded bits were exchanged).
    """
    values = marginal_value_attack(observations, len(true_values))
    return rank_correlation(values, np.asarray(true_values))
