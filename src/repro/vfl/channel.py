"""In-process communication channel with traffic accounting.

Real VFL deployments pay for every float crossing the party boundary —
the paper's bargaining-cost analysis (§3.4.4) cites exactly this
accumulating communication/training cost.  The simulated channel
records message counts, payload bytes, and protocol rounds so the cost
models can be grounded in measured traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require

__all__ = ["Channel", "Message"]


def _payload_bytes(payload: object) -> int:
    """Approximate serialised size of a message payload."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple, set)):
        return sum(_payload_bytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            _payload_bytes(k) + _payload_bytes(v) for k, v in payload.items()
        )
    return 64  # conservative default for opaque objects


@dataclass(frozen=True)
class Message:
    """One directed message between parties."""

    sender: str
    receiver: str
    kind: str
    payload: object = None

    @property
    def nbytes(self) -> int:
        """Approximate wire size of the payload."""
        return _payload_bytes(self.payload)


@dataclass
class Channel:
    """Synchronous bidirectional link between the two parties.

    ``send`` + ``receive`` model one direction of a protocol step;
    :meth:`exchange` is the common request/response helper.  Statistics
    accumulate over the channel's lifetime; :meth:`reset_stats` starts a
    fresh measurement window.
    """

    n_messages: int = 0
    n_bytes: int = 0
    n_rounds: int = 0
    _inbox: dict[str, list[Message]] = field(default_factory=dict)
    log: list[tuple[str, str, str, int]] = field(default_factory=list)
    keep_log: bool = False

    def send(self, message: Message) -> None:
        """Queue ``message`` for its receiver and account for it."""
        require(message.sender != message.receiver, "cannot send to self")
        self.n_messages += 1
        self.n_bytes += message.nbytes
        if self.keep_log:
            self.log.append(
                (message.sender, message.receiver, message.kind, message.nbytes)
            )
        self._inbox.setdefault(message.receiver, []).append(message)

    def receive(self, receiver: str, kind: str | None = None) -> Message:
        """Pop the oldest message addressed to ``receiver``.

        ``kind`` (when given) asserts the protocol step matches.
        """
        queue = self._inbox.get(receiver, [])
        require(bool(queue), f"no pending messages for {receiver!r}")
        message = queue.pop(0)
        if kind is not None:
            require(
                message.kind == kind,
                f"protocol desync: expected {kind!r}, got {message.kind!r}",
            )
        return message

    def exchange(
        self, sender: str, receiver: str, kind: str, payload: object = None
    ) -> Message:
        """Send and immediately deliver — one protocol half-round."""
        self.send(Message(sender, receiver, kind, payload))
        return self.receive(receiver, kind)

    def next_round(self) -> None:
        """Mark the start of a new protocol round."""
        self.n_rounds += 1

    def reset_stats(self) -> None:
        """Zero the accounting counters (pending messages unaffected)."""
        self.n_messages = 0
        self.n_bytes = 0
        self.n_rounds = 0
        self.log.clear()

    def stats(self) -> dict[str, int]:
        """Snapshot of the accounting counters."""
        return {
            "messages": self.n_messages,
            "bytes": self.n_bytes,
            "rounds": self.n_rounds,
        }
