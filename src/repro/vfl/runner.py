"""One-call VFL course execution: isolated baseline vs joint training.

:func:`run_vfl` is the bridge between the VFL substrate and the market:
it trains the task party's isolated model (``M0``), runs the federated
protocol on a feature bundle (``M``), and returns the paper's
performance gain ``ΔG = (M − M0) / M0`` (Eq. 1) along with channel
traffic statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.ml.forest import RandomForestClassifier
from repro.ml.nn.mlp import MLPClassifier
from repro.utils.rng import spawn
from repro.utils.validation import require
from repro.vfl.channel import Channel
from repro.vfl.fedforest import FederatedForest
from repro.vfl.parties import parties_from_dataset
from repro.vfl.splitnn import SplitNN

__all__ = [
    "BASE_MODELS",
    "VFLResult",
    "isolated_performance",
    "resolve_model_params",
    "run_vfl",
]

BASE_MODELS = ("random_forest", "mlp")

_RF_DEFAULTS = {
    "n_estimators": 15,
    "max_depth": 8,
    "min_samples_leaf": 2,
    "max_features": "sqrt",
    "max_bins": 32,
}
_MLP_DEFAULTS = {
    "embed_dim": 64,
    "top_hidden": 32,
    "epochs": 60,
    "batch_size": 128,
    "lr": 1e-2,
}


@dataclass(frozen=True)
class VFLResult:
    """Outcome of one VFL course on one feature bundle."""

    bundle: tuple[int, ...]
    base_model: str
    performance_isolated: float
    performance_joint: float
    channel_stats: dict[str, int] = field(default_factory=dict)

    @property
    def delta_g(self) -> float:
        """Relative performance gain ``(M − M0)/M0`` (paper Eq. 1)."""
        return (self.performance_joint - self.performance_isolated) / max(
            self.performance_isolated, 1e-12
        )


def _merged(defaults: dict, overrides: dict | None) -> dict:
    params = dict(defaults)
    if overrides:
        unknown = set(overrides) - set(defaults)
        require(not unknown, f"unknown model params: {sorted(unknown)}")
        params.update(overrides)
    return params


def resolve_model_params(base_model: str, overrides: dict | None = None) -> dict:
    """Protocol defaults merged with ``overrides`` (rejecting unknown keys).

    The resolved dict is what a course actually trains with — the
    oracle factory fingerprints it for its persistent gain cache.
    """
    require(base_model in BASE_MODELS, f"base_model must be one of {BASE_MODELS}")
    defaults = _RF_DEFAULTS if base_model == "random_forest" else _MLP_DEFAULTS
    return _merged(defaults, overrides)


def isolated_performance(
    dataset: PartitionedDataset,
    *,
    base_model: str = "random_forest",
    model_params: dict | None = None,
    seed: object = 0,
) -> float:
    """Test accuracy of the task party training alone (``M0``)."""
    require(base_model in BASE_MODELS, f"base_model must be one of {BASE_MODELS}")
    rng = spawn(seed, dataset.name, base_model, "isolated")
    if base_model == "random_forest":
        params = _merged(_RF_DEFAULTS, model_params)
        model = RandomForestClassifier(
            params["n_estimators"],
            max_depth=params["max_depth"],
            min_samples_leaf=params["min_samples_leaf"],
            max_features=params["max_features"],
            max_bins=params["max_bins"],
            rng=rng,
        )
    else:
        params = _merged(_MLP_DEFAULTS, model_params)
        model = MLPClassifier(
            (params["embed_dim"], params["top_hidden"]),
            epochs=params["epochs"],
            batch_size=params["batch_size"],
            lr=params["lr"],
            rng=rng,
        )
    model.fit(dataset.task_train, dataset.y_train.astype(np.float64))
    return model.score(dataset.task_test, dataset.y_test)


def run_vfl(
    dataset: PartitionedDataset,
    bundle: object,
    *,
    base_model: str = "random_forest",
    model_params: dict | None = None,
    seed: object = 0,
    channel: Channel | None = None,
    m0: float | None = None,
    task_design: object = None,
    data_design: object = None,
) -> VFLResult:
    """Execute one VFL course and measure the performance gain.

    Parameters
    ----------
    dataset:
        A prepared (vertically-partitioned) dataset.
    bundle:
        Data-party feature indices to train on.
    base_model:
        ``"random_forest"`` (federated forest) or ``"mlp"`` (SplitNN).
    model_params:
        Overrides for the protocol defaults.
    seed:
        Root seed; isolated and joint models use disjoint streams.
    channel:
        Supply a channel to accumulate traffic across courses.
    m0:
        Pre-computed isolated performance (skips retraining the
        baseline — the bargaining engine caches it).
    task_design / data_design:
        Pre-binned :class:`~repro.ml.tree.BinnedDesign` objects for the
        task party's training features and the data party's *bundle*
        columns (training rows).  The oracle factory bins each party's
        full matrix once and passes column slices here, skipping the
        per-course re-bin; results are identical either way.  Only
        meaningful for ``base_model="random_forest"``.
    """
    require(base_model in BASE_MODELS, f"base_model must be one of {BASE_MODELS}")
    require(
        base_model == "random_forest" or (task_design is None and data_design is None),
        "pre-binned designs only apply to the random_forest protocol",
    )
    bundle = tuple(int(i) for i in bundle)
    require(len(bundle) >= 1, "bundle must contain at least one feature")
    task, data = parties_from_dataset(dataset)
    channel = channel if channel is not None else Channel()
    if m0 is None:
        m0 = isolated_performance(
            dataset, base_model=base_model, model_params=model_params, seed=seed
        )
    rng = spawn(seed, dataset.name, base_model, "joint", bundle)
    if base_model == "random_forest":
        params = _merged(_RF_DEFAULTS, model_params)
        forest = FederatedForest(
            params["n_estimators"],
            max_depth=params["max_depth"],
            min_samples_leaf=params["min_samples_leaf"],
            max_features=params["max_features"],
            max_bins=params["max_bins"],
            rng=rng,
        )
        forest.fit(
            task,
            data,
            bundle,
            channel,
            task_design=task_design,
            data_design=data_design,
        )
        m = forest.score(task.test_idx, task.y_test.astype(np.int64), channel)
    else:
        params = _merged(_MLP_DEFAULTS, model_params)
        net = SplitNN(
            task.d,
            len(bundle),
            embed_dim=params["embed_dim"],
            top_hidden=params["top_hidden"],
            epochs=params["epochs"],
            batch_size=params["batch_size"],
            lr=params["lr"],
            rng=rng,
        )
        net.fit(task, data, bundle, channel)
        m = net.score(task.test_idx, task.y_test.astype(np.int64), channel)
    return VFLResult(
        bundle=bundle,
        base_model=base_model,
        performance_isolated=float(m0),
        performance_joint=float(m),
        channel_stats=channel.stats(),
    )
