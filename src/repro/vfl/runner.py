"""One-call VFL course execution: isolated baseline vs joint training.

:func:`run_vfl` is the bridge between the VFL substrate and the market:
it trains the task party's isolated model (``M0``), runs the federated
protocol on a feature bundle (``M``), and returns the paper's
performance gain ``ΔG = (M − M0) / M0`` (Eq. 1) along with channel
traffic statistics.

Base models resolve through the service registry
(:mod:`repro.service.registry`): a
:func:`~repro.service.registry.register_base_model` call with course
builders makes a custom protocol trainable everywhere a built-in one is
— ``Market.from_spec`` oracle construction, the oracle factory, the
CLI's ``--model``/``--base-model`` choices, and HTTP specs.  The
built-in protocols (federated random forest, SplitNN) are described by
:data:`BUILTIN_BASE_MODELS` and registered by the registry module at
import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.ml.forest import RandomForestClassifier
from repro.ml.nn.mlp import MLPClassifier
from repro.utils.rng import spawn
from repro.utils.validation import require
from repro.vfl.channel import Channel
from repro.vfl.fedforest import FederatedForest
from repro.vfl.parties import parties_from_dataset
from repro.vfl.splitnn import SplitNN

__all__ = [
    "BASE_MODELS",
    "BUILTIN_BASE_MODELS",
    "VFLResult",
    "isolated_performance",
    "resolve_model_params",
    "run_vfl",
]

#: The built-in protocol names (legacy constant; validation now goes
#: through the registry, so registered custom models are equally valid).
BASE_MODELS = ("random_forest", "mlp")

_RF_DEFAULTS = {
    "n_estimators": 15,
    "max_depth": 8,
    "min_samples_leaf": 2,
    "max_features": "sqrt",
    "max_bins": 32,
}
_MLP_DEFAULTS = {
    "embed_dim": 64,
    "top_hidden": 32,
    "epochs": 60,
    "batch_size": 128,
    "lr": 1e-2,
}


@dataclass(frozen=True)
class VFLResult:
    """Outcome of one VFL course on one feature bundle."""

    bundle: tuple[int, ...]
    base_model: str
    performance_isolated: float
    performance_joint: float
    channel_stats: dict[str, int] = field(default_factory=dict)

    @property
    def delta_g(self) -> float:
        """Relative performance gain ``(M − M0)/M0`` (paper Eq. 1)."""
        return (self.performance_joint - self.performance_isolated) / max(
            self.performance_isolated, 1e-12
        )


def _merged(defaults: dict, overrides: dict | None) -> dict:
    params = dict(defaults)
    if overrides:
        unknown = set(overrides) - set(defaults)
        require(not unknown, f"unknown model params: {sorted(unknown)}")
        params.update(overrides)
    return params


def _entry(base_model: str):
    """The registered base-model entry (the validation choke point)."""
    from repro.service import registry

    if base_model not in registry.BASE_MODELS:
        raise ValueError(
            f"unknown base_model {base_model!r}; registered: "
            f"{list(registry.base_model_names())}"
        )
    return registry.BASE_MODELS.get(base_model)


def resolve_model_params(base_model: str, overrides: dict | None = None) -> dict:
    """Protocol defaults merged with ``overrides`` (rejecting unknown keys).

    The resolved dict is what a course actually trains with — the
    oracle factory fingerprints it for its persistent gain cache.
    Entries registered without ``defaults`` accept overrides verbatim.
    """
    entry = _entry(base_model)
    if entry.defaults is None:
        return dict(overrides or {})
    return _merged(entry.defaults, overrides)


# ----------------------------------------------------------------------
# Built-in course builders (the registry registers these under
# "random_forest" / "mlp"; custom models supply their own pair).
# ----------------------------------------------------------------------
def _rf_isolated(dataset: PartitionedDataset, params: dict, rng) -> float:
    model = RandomForestClassifier(
        params["n_estimators"],
        max_depth=params["max_depth"],
        min_samples_leaf=params["min_samples_leaf"],
        max_features=params["max_features"],
        max_bins=params["max_bins"],
        rng=rng,
    )
    model.fit(dataset.task_train, dataset.y_train.astype(np.float64))
    return model.score(dataset.task_test, dataset.y_test)


def _mlp_isolated(dataset: PartitionedDataset, params: dict, rng) -> float:
    model = MLPClassifier(
        (params["embed_dim"], params["top_hidden"]),
        epochs=params["epochs"],
        batch_size=params["batch_size"],
        lr=params["lr"],
        rng=rng,
    )
    model.fit(dataset.task_train, dataset.y_train.astype(np.float64))
    return model.score(dataset.task_test, dataset.y_test)


def _rf_joint(
    dataset: PartitionedDataset,
    bundle: tuple[int, ...],
    params: dict,
    rng,
    *,
    channel: Channel,
    task_design: object = None,
    data_design: object = None,
) -> float:
    task, data = parties_from_dataset(dataset)
    forest = FederatedForest(
        params["n_estimators"],
        max_depth=params["max_depth"],
        min_samples_leaf=params["min_samples_leaf"],
        max_features=params["max_features"],
        max_bins=params["max_bins"],
        rng=rng,
    )
    forest.fit(
        task,
        data,
        bundle,
        channel,
        task_design=task_design,
        data_design=data_design,
    )
    return forest.score(task.test_idx, task.y_test.astype(np.int64), channel)


def _mlp_joint(
    dataset: PartitionedDataset,
    bundle: tuple[int, ...],
    params: dict,
    rng,
    *,
    channel: Channel,
    task_design: object = None,
    data_design: object = None,
) -> float:
    task, data = parties_from_dataset(dataset)
    net = SplitNN(
        task.d,
        len(bundle),
        embed_dim=params["embed_dim"],
        top_hidden=params["top_hidden"],
        epochs=params["epochs"],
        batch_size=params["batch_size"],
        lr=params["lr"],
        rng=rng,
    )
    net.fit(task, data, bundle, channel)
    return net.score(task.test_idx, task.y_test.astype(np.int64), channel)


#: What the registry registers for the built-in protocols: keyword
#: arguments for :func:`repro.service.registry.register_base_model`.
BUILTIN_BASE_MODELS = {
    "random_forest": {
        "preset_params_attr": "rf_params",
        "defaults": _RF_DEFAULTS,
        "isolated": _rf_isolated,
        "joint": _rf_joint,
        "supports_designs": True,
    },
    "mlp": {
        "preset_params_attr": "mlp_params",
        "defaults": _MLP_DEFAULTS,
        "isolated": _mlp_isolated,
        "joint": _mlp_joint,
        "supports_designs": False,
    },
}


# ----------------------------------------------------------------------
# Course execution
# ----------------------------------------------------------------------
def isolated_performance(
    dataset: PartitionedDataset,
    *,
    base_model: str = "random_forest",
    model_params: dict | None = None,
    seed: object = 0,
) -> float:
    """Test accuracy of the task party training alone (``M0``)."""
    entry = _entry(base_model)
    require(
        entry.isolated is not None,
        f"base model {base_model!r} was registered without course "
        f"builders; pass isolated=/joint= to register_base_model",
    )
    params = resolve_model_params(base_model, model_params)
    rng = spawn(seed, dataset.name, base_model, "isolated")
    return float(entry.isolated(dataset, params, rng))


def run_vfl(
    dataset: PartitionedDataset,
    bundle: object,
    *,
    base_model: str = "random_forest",
    model_params: dict | None = None,
    seed: object = 0,
    channel: Channel | None = None,
    m0: float | None = None,
    task_design: object = None,
    data_design: object = None,
) -> VFLResult:
    """Execute one VFL course and measure the performance gain.

    Parameters
    ----------
    dataset:
        A prepared (vertically-partitioned) dataset.
    bundle:
        Data-party feature indices to train on.
    base_model:
        Any registered base model — ``"random_forest"`` (federated
        forest), ``"mlp"`` (SplitNN), or a custom registration.
    model_params:
        Overrides for the protocol defaults.
    seed:
        Root seed; isolated and joint models use disjoint streams.
    channel:
        Supply a channel to accumulate traffic across courses.
    m0:
        Pre-computed isolated performance (skips retraining the
        baseline — the bargaining engine caches it).
    task_design / data_design:
        Pre-binned :class:`~repro.ml.tree.BinnedDesign` objects for the
        task party's training features and the data party's *bundle*
        columns (training rows).  The oracle factory bins each party's
        full matrix once and passes column slices here, skipping the
        per-course re-bin; results are identical either way.  Only
        meaningful for base models registered with
        ``supports_designs=True``.
    """
    entry = _entry(base_model)
    require(
        entry.joint is not None,
        f"base model {base_model!r} was registered without course "
        f"builders; pass isolated=/joint= to register_base_model",
    )
    if not entry.supports_designs and (
        task_design is not None or data_design is not None
    ):
        from repro.service import registry

        supported = [
            name
            for name in registry.base_model_names()
            if registry.BASE_MODELS.get(name).supports_designs
        ]
        raise ValueError(
            f"pre-binned designs are not supported by base model "
            f"{base_model!r} (design-capable: {supported})"
        )
    bundle = tuple(int(i) for i in bundle)
    require(len(bundle) >= 1, "bundle must contain at least one feature")
    channel = channel if channel is not None else Channel()
    if m0 is None:
        m0 = isolated_performance(
            dataset, base_model=base_model, model_params=model_params, seed=seed
        )
    params = resolve_model_params(base_model, model_params)
    rng = spawn(seed, dataset.name, base_model, "joint", bundle)
    m = entry.joint(
        dataset,
        bundle,
        params,
        rng,
        channel=channel,
        task_design=task_design,
        data_design=data_design,
    )
    return VFLResult(
        bundle=bundle,
        base_model=base_model,
        performance_isolated=float(m0),
        performance_joint=float(m),
        channel_stats=channel.stats(),
    )
