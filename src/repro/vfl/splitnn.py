"""SplitNN: the federated training protocol for the MLP base model.

Each party owns a *bottom* encoder over its local features; the task
party additionally owns the *top* network and the labels.  Per batch:

1. the task party broadcasts the batch's aligned row indices;
2. the data party forwards its bundle features through its bottom
   encoder and sends the activations (never the raw features);
3. the task party concatenates both parties' activations, finishes the
   forward pass, computes the loss, and back-propagates; the gradient
   of the data party's activations — and nothing else — crosses back;
4. both parties update their own parameters locally.

This matches the paper's base model (§4.1.2): a 3-layer MLP with
embedding dimensions 64 and 32 — layer 1 is the per-party bottom
encoder (64), layers 2-3 are the task party's top network (32 → 1).
"""

from __future__ import annotations

import numpy as np

from repro.ml.nn.layers import Dense, ReLU, Sequential
from repro.ml.nn.losses import bce_with_logits, sigmoid
from repro.ml.nn.optim import Adam
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import require
from repro.vfl.channel import Channel, Message
from repro.vfl.parties import DATA, TASK, DataParty, TaskParty

__all__ = ["SplitNN"]


class SplitNN:
    """Two-party split neural network with BCE loss and Adam updates.

    Parameters
    ----------
    d_task / d_bundle:
        Input widths of the two bottom encoders.
    embed_dim:
        Bottom encoder output width (paper: 64).
    top_hidden:
        Top network hidden width (paper: 32).
    epochs / batch_size / lr:
        Training schedule (paper: lr=1e-2; batch 128 or 512).
    """

    def __init__(
        self,
        d_task: int,
        d_bundle: int,
        *,
        embed_dim: int = 64,
        top_hidden: int = 32,
        epochs: int = 60,
        batch_size: int = 128,
        lr: float = 1e-2,
        rng: object = None,
    ):
        require(d_task >= 1 and d_bundle >= 1, "both parties need >= 1 feature")
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.embed_dim = int(embed_dim)
        self.rng = as_generator(rng)
        # Task-party-owned modules.
        self.bottom_task = Sequential(
            Dense(d_task, embed_dim, rng=spawn(self.rng, "bottom_task")), ReLU()
        )
        self.top = Sequential(
            Dense(2 * embed_dim, top_hidden, rng=spawn(self.rng, "top")),
            ReLU(),
            Dense(top_hidden, 1, rng=spawn(self.rng, "head")),
        )
        # Data-party-owned module.
        self.bottom_data = Sequential(
            Dense(d_bundle, embed_dim, rng=spawn(self.rng, "bottom_data")), ReLU()
        )
        self._opt_task = Adam(
            self.bottom_task.parameters() + self.top.parameters(), lr=lr
        )
        self._opt_data = Adam(self.bottom_data.parameters(), lr=lr)
        self.loss_curve_: list[float] = []
        self._fitted = False

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        task: TaskParty,
        data: DataParty,
        bundle: object,
        channel: Channel,
    ) -> "SplitNN":
        """Run the split training protocol over the channel."""
        bundle = np.asarray(list(bundle), dtype=np.int64)
        require(bundle.size >= 1, "bundle must contain at least one feature")
        X_bundle = data.bundle_view(bundle)
        n = task.train_idx.shape[0]
        shuffle_rng = spawn(self.rng, "shuffle")
        self.loss_curve_ = []
        for _ in range(self.epochs):
            channel.next_round()
            order = shuffle_rng.permutation(n)
            epoch_loss, n_batches = 0.0, 0
            for start in range(0, n, self.batch_size):
                batch_rows = task.train_idx[order[start : start + self.batch_size]]
                # Task -> data: aligned sample ids for this batch.
                request = channel.exchange(TASK, DATA, "batch_rows", batch_rows)
                act_data = self.bottom_data.forward(X_bundle[request.payload])
                # Data -> task: bottom activations only.
                channel.send(Message(DATA, TASK, "activations", act_data))
                act_data = channel.receive(TASK, "activations").payload
                act_task = self.bottom_task.forward(task.X[batch_rows])
                joined = np.hstack([act_task, act_data])
                logits = self.top.forward(joined)
                loss, grad = bce_with_logits(logits, task.y[batch_rows])
                self._opt_task.zero_grad()
                self._opt_data.zero_grad()
                grad_joined = self.top.backward(grad)
                grad_task = grad_joined[:, : self.embed_dim]
                grad_data = grad_joined[:, self.embed_dim :]
                self.bottom_task.backward(grad_task)
                # Task -> data: gradient of the data party's activations.
                reply = channel.exchange(TASK, DATA, "activation_grads", grad_data)
                self.bottom_data.backward(reply.payload)
                self._opt_task.step()
                self._opt_data.step()
                epoch_loss += loss
                n_batches += 1
            self.loss_curve_.append(epoch_loss / max(n_batches, 1))
        self._bundle = bundle
        self._X_bundle = X_bundle
        self._task = task
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_proba(self, sample_rows: np.ndarray, channel: Channel) -> np.ndarray:
        """Joint forward pass for the given aligned sample rows."""
        require(self._fitted, "SplitNN must be fit before predicting")
        request = channel.exchange(TASK, DATA, "batch_rows", sample_rows)
        act_data = self.bottom_data.forward(self._X_bundle[request.payload])
        channel.send(Message(DATA, TASK, "activations", act_data))
        act_data = channel.receive(TASK, "activations").payload
        act_task = self.bottom_task.forward(self._task.X[sample_rows])
        logits = self.top.forward(np.hstack([act_task, act_data]))
        return sigmoid(logits.reshape(-1))

    def score(self, sample_rows: np.ndarray, y_true: np.ndarray, channel: Channel) -> float:
        """Accuracy over the given aligned sample rows."""
        pred = (self.predict_proba(sample_rows, channel) >= 0.5).astype(np.int64)
        return float((pred == np.asarray(y_true, dtype=np.int64)).mean())
