"""Federated Random Forest over vertically-partitioned features.

A SecureBoost-style split-finding protocol (Cheng et al., 2021 — the
paper's reference [2]): the task party drives tree growth; the data
party never reveals raw feature values.  Per node:

1. the task party computes count/positive histograms for its own
   features locally;
2. it requests the data party's histograms for the node's rows (in the
   real protocol the per-sample label contributions travel as Paillier
   ciphertexts; the simulation sends the values directly but preserves
   the message structure, so traffic accounting reflects the plaintext
   payload sizes);
3. the joint gini-optimal split is chosen with the *same* scorer the
   centralised tree uses — the protocol is lossless, and the test suite
   asserts exact prediction equality with
   :class:`~repro.ml.forest.RandomForestClassifier`;
4. thresholds of data-party features stay at the data party in a
   private split table; the task party's tree records only an opaque
   node id, and prediction-time comparisons are answered over the
   channel.

Known (accepted) leakage, as in SecureBoost: the data party observes
the instance-space partition of training rows.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import (
    BinnedDesign,
    best_split,
    node_histograms,
    quantile_bin,
    resolve_max_features,
)
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import require
from repro.vfl.channel import Channel, Message
from repro.vfl.parties import DATA, TASK, DataParty, TaskParty

__all__ = ["FederatedForest", "FederatedTree"]

_LEAF = -1
_OWNER_TASK = 0
_OWNER_DATA = 1


class _DataPartySplitService:
    """The data party's protocol endpoint for one forest training run.

    Owns the binned bundle design plus the private split table mapping
    opaque node uids to (local feature, threshold) pairs.
    """

    def __init__(
        self,
        data_party: DataParty,
        bundle: np.ndarray,
        max_bins: int,
        *,
        design: BinnedDesign | None = None,
    ):
        self.party = data_party
        self.bundle = bundle
        self.X_bundle = data_party.bundle_view(bundle)
        if design is None:
            design = quantile_bin(
                self.X_bundle[data_party.train_idx], max_bins=max_bins
            )
        else:
            # A pre-binned design (a column slice of the party's full
            # binned matrix — exact, since quantile edges are per-column).
            require(
                design.n_features == bundle.shape[0],
                "pre-binned data design column count must match the bundle",
            )
        self.design = design
        self.split_table: dict[int, tuple[int, float]] = {}

    def histograms(
        self, rows: np.ndarray, y_rows: np.ndarray, n_bins: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Count/positive histograms of the bundle features for ``rows``."""
        codes = self.design.codes[rows]
        if codes.shape[1] == 0:
            return np.zeros((0, n_bins)), np.zeros((0, n_bins))
        cnt, pos = node_histograms(codes, y_rows, n_bins)
        return cnt, pos

    def register_split(self, uid: int, feature_local: int, bin_code: int) -> None:
        """Record a data-party-owned split privately."""
        threshold = float(self.design.edges[feature_local][bin_code])
        self.split_table[uid] = (feature_local, threshold)

    def train_mask(self, uid: int, rows: np.ndarray, bin_code: int, feature_local: int) -> np.ndarray:
        """Left/right membership for training rows at a fresh split."""
        return self.design.codes[rows, feature_local] <= bin_code

    def eval_mask(self, uid: int, sample_rows: np.ndarray) -> np.ndarray:
        """Left/right membership of arbitrary aligned samples at ``uid``."""
        feature_local, threshold = self.split_table[uid]
        return self.X_bundle[sample_rows, feature_local] <= threshold


class FederatedTree:
    """One tree grown by the task party via the split-finding protocol."""

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        rng: object = None,
    ):
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.rng = as_generator(rng)
        self.owner_: list[int] = []
        self.feature_: list[int] = []
        self.threshold_: list[float] = []
        self.uid_: list[int] = []
        self.left_: list[int] = []
        self.right_: list[int] = []
        self.value_: list[float] = []

    def _resolve_max_features(self, d: int) -> int:
        return resolve_max_features(self.max_features, d)

    def fit(
        self,
        task: TaskParty,
        service: _DataPartySplitService,
        task_design: BinnedDesign,
        channel: Channel,
        *,
        tree_uid_base: int,
        sample_indices: np.ndarray | None = None,
    ) -> "FederatedTree":
        """Grow the tree over the channel; mirrors the centralised CART."""
        y_all = task.y_train
        if sample_indices is None:
            sample_indices = np.arange(y_all.shape[0])
        y = y_all[sample_indices]
        d_task = task_design.n_features
        d_data = service.design.n_features
        d = d_task + d_data
        n_bins = max(task_design.n_bins, service.design.n_bins)
        max_feat = self._resolve_max_features(d)

        n_cuts = np.array(
            [e.shape[0] for e in task_design.edges]
            + [e.shape[0] for e in service.design.edges],
            dtype=np.int64,
        )
        bin_index = np.arange(n_bins - 1)[None, :] if n_bins > 1 else np.zeros((1, 0))
        valid_cut = bin_index < n_cuts[:, None]

        def new_node() -> int:
            self.owner_.append(_OWNER_TASK)
            self.feature_.append(_LEAF)
            self.threshold_.append(0.0)
            self.uid_.append(-1)
            self.left_.append(_LEAF)
            self.right_.append(_LEAF)
            self.value_.append(0.0)
            return len(self.feature_) - 1

        root = new_node()
        stack = [(root, np.arange(y.shape[0]), 0)]
        while stack:
            node, rows, depth = stack.pop()
            y_node = y[rows]
            n_node = rows.shape[0]
            pos = float(y_node.sum())
            self.value_[node] = pos / n_node
            if (
                depth >= self.max_depth
                or n_node < self.min_samples_split
                or pos == 0.0
                or pos == n_node
                or n_bins <= 1
            ):
                continue
            # ``rows`` index the bootstrap sample; ``boot_rows`` map them
            # back to training-matrix rows shared by both parties.
            boot_rows = sample_indices[rows]
            task_codes = task_design.codes[boot_rows]
            cnt_t, pos_t = node_histograms(task_codes, y_node, n_bins)
            # Request the data party's histograms for these rows.  The
            # label payload models the encrypted per-sample gradient
            # vector of SecureBoost.
            request = channel.exchange(
                TASK, DATA, "hist_request", {"rows": boot_rows, "labels": y_node}
            )
            cnt_d, pos_d = service.histograms(
                request.payload["rows"], request.payload["labels"], n_bins
            )
            channel.send(Message(DATA, TASK, "hist_response", (cnt_d, pos_d)))
            response = channel.receive(TASK, "hist_response")
            cnt = np.vstack([cnt_t, response.payload[0]])
            pos_hist = np.vstack([pos_t, response.payload[1]])
            allowed = None
            if max_feat < d:
                chosen = self.rng.choice(d, size=max_feat, replace=False)
                allowed = np.zeros(d, dtype=bool)
                allowed[chosen] = True
            found = best_split(
                cnt,
                pos_hist,
                valid_cut=valid_cut,
                min_samples_leaf=self.min_samples_leaf,
                allowed_features=allowed,
            )
            if found is None:
                continue
            f, b, _ = found
            if f < d_task:
                self.owner_[node] = _OWNER_TASK
                self.feature_[node] = f
                self.threshold_[node] = float(task_design.edges[f][b])
                go_left = task_codes[:, f] <= b
            else:
                f_local = f - d_task
                uid = tree_uid_base + node
                self.owner_[node] = _OWNER_DATA
                self.uid_[node] = uid
                reply = channel.exchange(
                    TASK, DATA, "split_request",
                    {"uid": uid, "feature": f_local, "bin": b, "rows": boot_rows},
                )
                service.register_split(uid, f_local, b)
                mask = service.train_mask(uid, reply.payload["rows"], b, f_local)
                channel.send(Message(DATA, TASK, "split_response", mask))
                go_left = channel.receive(TASK, "split_response").payload
            left_id, right_id = new_node(), new_node()
            self.left_[node] = left_id
            self.right_[node] = right_id
            stack.append((left_id, rows[go_left], depth + 1))
            stack.append((right_id, rows[~go_left], depth + 1))
        return self

    def predict_proba(
        self,
        X_task_rows: np.ndarray,
        sample_rows: np.ndarray,
        service: _DataPartySplitService,
        channel: Channel,
    ) -> np.ndarray:
        """Joint inference: data-party node comparisons go over the channel."""
        n = X_task_rows.shape[0]
        node = np.zeros(n, dtype=np.int64)
        # Data-party-owned internal nodes keep feature_ == -1 (the split
        # is private), so leaf-ness is tracked via missing children.
        left = np.asarray(self.left_)
        owner = np.asarray(self.owner_)
        active = left[node] != _LEAF
        while active.any():
            for nid in np.unique(node[active]):
                at = np.flatnonzero(active & (node == nid))
                if owner[nid] == _OWNER_TASK:
                    go_left = X_task_rows[at, self.feature_[nid]] <= self.threshold_[nid]
                else:
                    request = channel.exchange(
                        TASK, DATA, "eval_request",
                        {"uid": self.uid_[nid], "rows": sample_rows[at]},
                    )
                    mask = service.eval_mask(
                        request.payload["uid"], request.payload["rows"]
                    )
                    channel.send(Message(DATA, TASK, "eval_response", mask))
                    go_left = channel.receive(TASK, "eval_response").payload
                node[at] = np.where(go_left, self.left_[nid], self.right_[nid])
            active = left[node] != _LEAF
        return np.asarray(self.value_)[node]


class FederatedForest:
    """Bagged federated trees; drop-in VFL counterpart of the RF base model.

    With ``max_features=None`` and ``bootstrap=False`` (or matching
    seeds) the fitted ensemble equals the centralised
    :class:`~repro.ml.forest.RandomForestClassifier` on the concatenated
    features — the protocol is lossless.
    """

    def __init__(
        self,
        n_estimators: int = 15,
        *,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: int | str | None = "sqrt",
        max_bins: int = 32,
        bootstrap: bool = True,
        rng: object = None,
    ):
        require(n_estimators >= 1, "n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.max_bins = int(max_bins)
        self.bootstrap = bool(bootstrap)
        self.rng = as_generator(rng)
        self.trees_: list[FederatedTree] = []
        self._service: _DataPartySplitService | None = None
        self._task: TaskParty | None = None

    def fit(
        self,
        task: TaskParty,
        data: DataParty,
        bundle: object,
        channel: Channel,
        *,
        task_design: BinnedDesign | None = None,
        data_design: BinnedDesign | None = None,
    ) -> "FederatedForest":
        """Train the forest over the channel on the given feature bundle.

        ``task_design``/``data_design`` let callers that run many
        courses (the oracle factory) bin each party's full matrix once
        and pass per-course column slices instead of re-binning here;
        the fitted forest is identical either way.
        """
        bundle = np.asarray(list(bundle), dtype=np.int64)
        require(bundle.size >= 1, "bundle must contain at least one feature")
        service = _DataPartySplitService(
            data, bundle, self.max_bins, design=data_design
        )
        if task_design is None:
            task_design = quantile_bin(task.X_train, max_bins=self.max_bins)
        else:
            require(
                task_design.n_features == task.d,
                "pre-binned task design column count must match the task party",
            )
        n = task.y_train.shape[0]
        self.trees_ = []
        for t in range(self.n_estimators):
            channel.next_round()
            tree_rng = spawn(self.rng, "tree", t)
            tree = FederatedTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=tree_rng,
            )
            indices = tree_rng.integers(0, n, size=n) if self.bootstrap else None
            tree.fit(
                task,
                service,
                task_design,
                channel,
                tree_uid_base=t * 100_000,
                sample_indices=indices,
            )
            self.trees_.append(tree)
        self._service = service
        self._task = task
        return self

    def predict_proba(self, sample_rows: np.ndarray, channel: Channel) -> np.ndarray:
        """Mean tree probability for the given aligned sample rows."""
        require(bool(self.trees_), "forest must be fit before predicting")
        assert self._service is not None and self._task is not None
        X_task_rows = self._task.X[sample_rows]
        acc = np.zeros(sample_rows.shape[0])
        for tree in self.trees_:
            acc += tree.predict_proba(X_task_rows, sample_rows, self._service, channel)
        return acc / len(self.trees_)

    def score(self, sample_rows: np.ndarray, y_true: np.ndarray, channel: Channel) -> float:
        """Accuracy over the given aligned sample rows."""
        pred = (self.predict_proba(sample_rows, channel) >= 0.5).astype(np.int64)
        return float((pred == np.asarray(y_true, dtype=np.int64)).mean())
