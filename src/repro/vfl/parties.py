"""The two VFL participants as data-holding objects.

Party objects hold *only* their local view of the dataset, mirroring
the paper's §2 setup: the task party owns ``{X_t, Y}``, the data party
owns ``{X_d}``.  Protocol implementations take both parties plus a
:class:`~repro.vfl.channel.Channel`; everything a protocol learns about
the other party must arrive as channel messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.utils.validation import require

__all__ = ["DataParty", "TaskParty"]

TASK = "task_party"
DATA = "data_party"


@dataclass
class TaskParty:
    """Label owner and model consumer (the buyer in the market).

    Attributes
    ----------
    X:
        Local ``(n, d_t)`` feature matrix over all aligned samples.
    y:
        Binary labels for all aligned samples.
    train_idx / test_idx:
        The shared train/test row split (sample alignment is public in
        VFL; the split is negotiated up front).
    """

    X: np.ndarray
    y: np.ndarray
    train_idx: np.ndarray
    test_idx: np.ndarray
    name: str = TASK

    def __post_init__(self) -> None:
        require(self.X.shape[0] == self.y.shape[0], "X/y row mismatch")

    @property
    def d(self) -> int:
        """Local feature count."""
        return int(self.X.shape[1])

    @property
    def X_train(self) -> np.ndarray:
        """Training-row view of the local features."""
        return self.X[self.train_idx]

    @property
    def X_test(self) -> np.ndarray:
        """Test-row view of the local features."""
        return self.X[self.test_idx]

    @property
    def y_train(self) -> np.ndarray:
        """Training labels."""
        return self.y[self.train_idx]

    @property
    def y_test(self) -> np.ndarray:
        """Held-out labels used to score VFL outcomes."""
        return self.y[self.test_idx]


@dataclass
class DataParty:
    """Feature owner (the seller in the market).

    ``bundle_view`` restricts the local matrix to the feature bundle
    under negotiation — only those columns participate in a VFL course.
    """

    X: np.ndarray
    train_idx: np.ndarray
    test_idx: np.ndarray
    name: str = DATA

    @property
    def d(self) -> int:
        """Local feature count."""
        return int(self.X.shape[1])

    def bundle_view(self, feature_indices: object) -> np.ndarray:
        """Columns of the local matrix selected by a bundle."""
        idx = np.asarray(list(feature_indices), dtype=np.int64)
        if idx.size:
            require(
                int(idx.min()) >= 0 and int(idx.max()) < self.d,
                f"bundle indices must be in [0, {self.d})",
            )
        return self.X[:, idx]


def parties_from_dataset(dataset: PartitionedDataset) -> tuple[TaskParty, DataParty]:
    """Split a prepared dataset into its two party-local views."""
    task = TaskParty(
        X=dataset.X_task,
        y=dataset.y.astype(np.float64),
        train_idx=dataset.train_idx,
        test_idx=dataset.test_idx,
    )
    data = DataParty(
        X=dataset.X_data,
        train_idx=dataset.train_idx,
        test_idx=dataset.test_idx,
    )
    return task, data
