"""Simulated Vertical Federated Learning substrate.

The market prices the *outcome* of VFL courses (§3.6: the market is
FL-protocol-agnostic), so this package provides two concrete training
protocols over an in-process message channel with byte accounting:

* :mod:`repro.vfl.fedforest` — SecureBoost-style federated Random
  Forest: parties exchange histogram aggregates and split masks, never
  raw features; the fitted ensemble is exactly equal to its centralised
  counterpart (lossless, tested).
* :mod:`repro.vfl.splitnn` — SplitNN for the 3-layer MLP: each party
  owns a bottom encoder; only activations and their gradients cross the
  boundary.

:func:`repro.vfl.runner.run_vfl` wraps either protocol into the
performance-gain measurements (ΔG) the bargaining market consumes.
"""

from repro.vfl.channel import Channel, Message
from repro.vfl.fedforest import FederatedForest
from repro.vfl.parties import DataParty, TaskParty
from repro.vfl.runner import VFLResult, run_vfl
from repro.vfl.splitnn import SplitNN

__all__ = [
    "Channel",
    "DataParty",
    "FederatedForest",
    "Message",
    "SplitNN",
    "TaskParty",
    "VFLResult",
    "run_vfl",
]
