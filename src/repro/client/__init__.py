"""The marketplace client SDK: one typed API over pluggable transports.

The paper's feature market is a multi-party protocol — buyer, sellers,
and a coordinating platform exchanging quotes — and this package is the
party-side library for it.  :class:`MarketplaceClient` exposes every
``/v1`` wire route as a typed method, and the transport decides where
the platform lives:

* :class:`LocalTransport` — in-process, wrapping a
  :class:`~repro.service.manager.SessionManager` and
  :class:`~repro.service.api.JobService` directly (zero HTTP
  overhead; what ``python -m repro bargain`` uses by default);
* :class:`HttpTransport` — stdlib HTTP with connection reuse and
  retry/backoff against a ``repro serve`` URL (what ``--server``
  switches any front door to).

Both transports dispatch through the same route table
(:mod:`repro.service.api`), so payloads are byte-identical across them.

Typical use::

    from repro.client import MarketplaceClient
    from repro.service import MarketSpec, SessionSpec

    client = MarketplaceClient.local()              # or .connect(url)
    market = client.build_market(MarketSpec(dataset="synthetic"))
    opened = client.open_session(
        SessionSpec(market=market["market"], seed=0))
    state = client.run_session(opened["session"])
    print(state["outcome"])

Errors are typed (:mod:`repro.client.errors`): a 404 raises
:class:`NotFoundError`, a network failure after the retry budget
raises :class:`TransportError`, and so on — clients catch meaning, not
status integers.
"""

from repro.client.client import MarketplaceClient
from repro.client.errors import (
    CapacityError,
    ClientError,
    ConflictError,
    GoneError,
    NotFoundError,
    RequestError,
    ServerError,
    TransportError,
    error_from_reply,
)
from repro.client.http import HttpTransport
from repro.client.local import LocalTransport
from repro.client.transport import Transport

__all__ = [
    "CapacityError",
    "ClientError",
    "ConflictError",
    "GoneError",
    "HttpTransport",
    "LocalTransport",
    "MarketplaceClient",
    "NotFoundError",
    "RequestError",
    "ServerError",
    "Transport",
    "TransportError",
    "error_from_reply",
]
