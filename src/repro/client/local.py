"""In-process transport: the ``/v1`` protocol with zero HTTP overhead.

Wraps a live :class:`~repro.service.manager.SessionManager` and
:class:`~repro.service.api.JobService` and dispatches through the same
route table as the HTTP server.  Every payload is passed through a
JSON round-trip before being returned, so embedded callers see
*exactly* what an HTTP client would — tuples become lists, NaN becomes
the same float the wire carries — and the transport-parity suite can
assert equality instead of "close enough".
"""

from __future__ import annotations

import json
from typing import Iterator

from repro.client.errors import error_from_reply
from repro.client.transport import Transport
from repro.service.api import JobService, ServiceContext, dispatch
from repro.service.manager import SessionManager

__all__ = ["LocalTransport"]


def _wire(payload: object) -> dict:
    """A payload as the wire would deliver it (one JSON round-trip)."""
    return json.loads(json.dumps(payload))


class LocalTransport(Transport):
    """Dispatch ``/v1`` requests against in-process service objects.

    Parameters
    ----------
    manager:
        The session broker to serve from (default: a fresh
        :class:`SessionManager` over the process-wide shared market
        pool — the same default the HTTP server uses).
    jobs:
        The :class:`JobService` for simulation-job routes (default: a
        lazily-stored service over the default durable job store, so a
        client that never submits a job never touches SQLite).
    """

    def __init__(
        self,
        manager: SessionManager | None = None,
        jobs: JobService | None = None,
    ):
        self.ctx = ServiceContext(
            manager=manager if manager is not None else SessionManager(),
            jobs=jobs if jobs is not None else JobService(),
        )

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        query: dict | None = None,
    ) -> tuple[int, dict]:
        reply = dispatch(self.ctx, method, path, body=body,
                         query=_stringify(query))
        if reply.streaming:
            # A streaming route fetched non-streamingly: drain it.
            return reply.status, _wire({"lines": list(reply.payload)})
        return reply.status, _wire(reply.payload)

    def stream(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        query: dict | None = None,
    ) -> Iterator[dict]:
        reply = dispatch(self.ctx, method, path, body=body,
                         query=_stringify(query))
        if not reply.streaming:
            raise error_from_reply(reply.status, _wire(reply.payload))
        return (_wire(item) for item in reply.payload)

    def request_text(
        self,
        method: str,
        path: str,
        *,
        query: dict | None = None,
    ) -> tuple[int, str]:
        reply = dispatch(self.ctx, method, path, query=_stringify(query))
        if isinstance(reply.payload, str):
            return reply.status, reply.payload
        return reply.status, json.dumps(reply.payload)


def _stringify(query: dict | None) -> dict | None:
    """Query parameters exactly as an HTTP server would see them."""
    if query is None:
        return None
    return {key: str(value) for key, value in query.items()}
