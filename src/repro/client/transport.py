"""The transport contract behind :class:`~repro.client.MarketplaceClient`.

A transport moves one ``/v1`` request and returns the wire-shaped
reply; it knows nothing about what the routes *mean*.  Two
implementations ship:

* :class:`~repro.client.local.LocalTransport` — in-process dispatch
  through :func:`repro.service.api.dispatch` (zero HTTP overhead);
* :class:`~repro.client.http.HttpTransport` — stdlib ``http.client``
  with connection reuse and retry/backoff.

Because both return payloads that have passed through a JSON
round-trip of the *same* route handlers, a client is byte-identical
across transports — the property the parity suite
(``tests/client/test_transport_parity.py``) pins.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Transport"]


class Transport:
    """Abstract transport: request/stream against the ``/v1`` protocol."""

    def request(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        query: dict | None = None,
    ) -> tuple[int, dict]:
        """Perform one request; returns ``(status, payload)``.

        Implementations return every completed HTTP exchange — errors
        included — as ``(status, envelope)``; they raise only
        :class:`~repro.client.errors.TransportError` (the exchange
        itself failed).
        """
        raise NotImplementedError

    def stream(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        query: dict | None = None,
    ) -> Iterator[dict]:
        """Open a JSON-lines streaming route; yields one dict per line.

        Non-2xx replies raise the mapped
        :class:`~repro.client.errors.ClientError` before the first
        item is yielded.
        """
        raise NotImplementedError

    def request_text(
        self,
        method: str,
        path: str,
        *,
        query: dict | None = None,
    ) -> tuple[int, str]:
        """Perform one request returning the raw body as text.

        For the one non-JSON route (``GET /v1/metrics``, Prometheus
        text exposition); errors still arrive as ``(status, text)``
        with the JSON envelope serialised in ``text``.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any held connections (idempotent)."""

    # ------------------------------------------------------------------
    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
