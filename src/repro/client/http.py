"""HTTP transport: stdlib ``http.client`` with reuse, retries, backoff.

Design points:

* **Connection reuse** — one persistent keep-alive connection per
  thread (``http.client`` connections are not thread-safe; a
  ``threading.local`` gives every caller thread its own), torn down
  and re-dialled on failure.
* **Retries with backoff** — connection-refused and DNS failures are
  retried for every method (the server never saw the request); errors
  after the request was sent are retried for ``GET`` only, because
  blindly replaying a ``POST /v1/sessions/<id>/step`` would advance
  the game twice.  Exhausting the budget raises
  :class:`~repro.client.errors.TransportError` with the attempt count.
* **Retryable statuses** — a ``429`` (session cap) or ``503`` (server
  draining) reply means the handler *refused* the request before
  touching any state, so replaying is safe for every method; both are
  retried within the same budget, honouring the server's
  ``Retry-After`` hint.  The exponential backoff is jittered
  (equal-jitter: half fixed, half random) so a fleet of clients
  refused together does not re-stampede together.
* **Streaming** — ``stream()`` opens a dedicated connection (the
  reply has no fixed length; it must not poison the pooled one) and
  yields one parsed JSON object per line.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from typing import Iterator
from urllib.parse import urlencode, urlsplit

from repro import obs
from repro.client.errors import TransportError, error_from_reply
from repro.client.transport import Transport

__all__ = ["HttpTransport"]

#: Client-side retry/backoff accounting, one family per concern: how
#: many replays ran, how often the server's Retry-After hint floored
#: the backoff, and how long the transport slept in total.  These make
#: retry pressure observable without tearing open TransportError.
_RETRY_ATTEMPTS = obs.REGISTRY.counter(
    "repro_client_retry_attempts_total",
    "Request replays after a retryable failure or 429/503 refusal.",
    ("method",),
)
_RETRY_AFTER_HONOURED = obs.REGISTRY.counter(
    "repro_client_retry_after_honoured_total",
    "Backoff sleeps floored by a server Retry-After hint.",
    ("method",),
)
_RETRY_SLEEP = obs.REGISTRY.counter(
    "repro_client_retry_sleep_seconds_total",
    "Total seconds this process slept in transport backoff.",
    ("method",),
)

#: Failures that prove the server never received the request — always
#: safe to retry, whatever the method.
_PRE_SEND_ERRORS = (ConnectionRefusedError, socket.gaierror)

#: Statuses whose handlers refuse the request *before* doing any work
#: (429 session cap, 503 drain) — replaying cannot double-apply
#: anything, so they are retryable for every method.
_RETRY_STATUSES = frozenset({429, 503})

#: A server's Retry-After hint is capped here; a transport retry loop
#: must not be parked for minutes by one overloaded reply.
_MAX_RETRY_AFTER = 30.0


def _parse_retry_after(value: str | None) -> float | None:
    """Seconds from a ``Retry-After`` header (delta form only)."""
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None  # HTTP-date form: not worth a date parser here
    if seconds < 0:
        return None
    return min(seconds, _MAX_RETRY_AFTER)


class HttpTransport(Transport):
    """``/v1`` over HTTP(S) against a ``repro serve`` base URL.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (a path prefix is honoured, e.g. behind a
        reverse proxy: ``http://gateway/market``).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Additional attempts after the first failure (so ``retries=2``
        means up to 3 connection attempts).
    backoff:
        Base sleep between attempts; doubles each retry.
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0,
                 retries: int = 2, backoff: float = 0.1):
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("http", "https"):
            raise ValueError(f"unsupported scheme {parts.scheme!r} in "
                             f"{base_url!r} (http/https only)")
        if not parts.hostname:
            raise ValueError(f"no host in base url {base_url!r}")
        self.scheme = parts.scheme
        self.host = parts.hostname
        self.port = parts.port or (443 if parts.scheme == "https" else 80)
        self.prefix = parts.path.rstrip("/")
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self._local = threading.local()
        # Every live connection, whichever thread dialled it: close()
        # may run on a different thread than the requests did (the
        # RemoteShardExecutor pattern), and must still release sockets.
        self._conn_lock = threading.Lock()
        self._conns: set = set()

    @property
    def base_url(self) -> str:
        return f"{self.scheme}://{self.host}:{self.port}{self.prefix}"

    # ------------------------------------------------------------------
    # Connection pool (one keep-alive connection per thread)
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        cls = (http.client.HTTPSConnection if self.scheme == "https"
               else http.client.HTTPConnection)
        conn = cls(self.host, self.port, timeout=self.timeout)
        conn.connect()
        # Nagle + delayed ACK costs ~40ms per small request/response
        # pair; RPC-shaped traffic needs segments on the wire now.
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._conn_lock:
            self._conns.add(conn)
        return conn

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._connect()
            self._local.conn = conn
        return conn

    def _release(self, conn) -> None:
        conn.close()
        with self._conn_lock:
            self._conns.discard(conn)

    def _drop(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._release(conn)
            self._local.conn = None

    def close(self) -> None:
        """Release every connection this transport dialled, on any thread."""
        self._drop()
        with self._conn_lock:
            conns, self._conns = list(self._conns), set()
        for conn in conns:
            # close() alone does not wake a peer thread blocked in
            # recv() on this socket (the fd stays referenced until the
            # read returns); shutdown() interrupts it immediately, which
            # is what lets RemoteShardExecutor abandon a hung worker
            # without waiting out the socket timeout.
            sock = getattr(conn, "sock", None)
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
            conn.close()

    # ------------------------------------------------------------------
    def _target(self, path: str, query: dict | None) -> str:
        target = self.prefix + path
        if query:
            target += "?" + urlencode(
                {k: str(v) for k, v in query.items()}
            )
        return target

    @staticmethod
    def _headers() -> dict:
        """Request headers, propagating the active span context if any."""
        headers = {"Content-Type": "application/json"}
        ctx = obs.current()
        if ctx is not None:
            headers["traceparent"] = obs.to_traceparent(ctx)
        return headers

    def request(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        query: dict | None = None,
    ) -> tuple[int, dict]:
        blob = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        target = self._target(path, query)
        headers = self._headers()
        attempts = self.retries + 1
        last: Exception | None = None
        retry_after: float | None = None
        for attempt in range(attempts):
            if attempt:
                # Equal-jitter exponential backoff: half deterministic,
                # half random, floored by the server's Retry-After hint.
                step = self.backoff * (2 ** (attempt - 1))
                delay = step / 2 + random.random() * step / 2  # lint: allow[DET001] backoff jitter is deliberately nondeterministic and never reaches digested material
                if retry_after is not None:
                    if retry_after >= delay:
                        _RETRY_AFTER_HONOURED.inc(method=method)
                    delay = max(delay, retry_after)
                _RETRY_ATTEMPTS.inc(method=method)
                _RETRY_SLEEP.inc(delay, method=method)
                time.sleep(delay)
            retry_after = None
            sent = False
            try:
                conn = self._connection()
                conn.request(method, target, body=blob, headers=headers)
                sent = True
                response = conn.getresponse()
                raw = response.read()
            except Exception as exc:
                self._drop()
                last = exc
                replayable = (
                    isinstance(exc, _PRE_SEND_ERRORS)
                    or not sent
                    or method == "GET"
                )
                if replayable and attempt + 1 < attempts:
                    continue
                raise TransportError(
                    f"{method} {self.base_url}{path} failed after "
                    f"{attempt + 1} attempt(s): {exc}",
                    attempts=attempt + 1,
                ) from exc
            if response.will_close:
                self._drop()
            if response.status in _RETRY_STATUSES and attempt + 1 < attempts:
                # The handler refused before touching state (session
                # cap / drain); the body is fully read, so the pooled
                # connection stays clean for the replay.
                retry_after = _parse_retry_after(
                    response.getheader("Retry-After")
                )
                continue
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TransportError(
                    f"{method} {self.base_url}{path} returned status "
                    f"{response.status} with a non-JSON body",
                    attempts=attempt + 1,
                ) from exc
            if not isinstance(payload, dict):
                payload = {"value": payload}
            return response.status, payload
        raise TransportError(  # pragma: no cover - loop always returns/raises
            f"{method} {self.base_url}{path} failed: {last}",
            attempts=attempts,
        )

    # ------------------------------------------------------------------
    def request_text(
        self,
        method: str,
        path: str,
        *,
        query: dict | None = None,
    ) -> tuple[int, str]:
        try:
            conn = self._connection()
            conn.request(method, self._target(path, query),
                         headers=self._headers())
            response = conn.getresponse()
            raw = response.read()
        except Exception as exc:
            self._drop()
            raise TransportError(
                f"{method} {self.base_url}{path} (text) failed: {exc}"
            ) from exc
        if response.will_close:
            self._drop()
        return response.status, raw.decode("utf-8")

    # ------------------------------------------------------------------
    def stream(
        self,
        method: str,
        path: str,
        *,
        body: dict | None = None,
        query: dict | None = None,
    ) -> Iterator[dict]:
        blob = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        conn = None  # dedicated connection: the pooled one stays clean
        try:
            conn = self._connect()
            conn.request(
                method, self._target(path, query), body=blob,
                headers=self._headers(),
            )
            response = conn.getresponse()
        except Exception as exc:
            if conn is not None:
                self._release(conn)
            raise TransportError(
                f"{method} {self.base_url}{path} (stream) failed: {exc}"
            ) from exc
        if response.status != 200:
            try:
                raw = response.read()
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {}
            finally:
                self._release(conn)
            raise error_from_reply(response.status, payload)

        def lines() -> Iterator[dict]:
            try:
                for raw_line in response:  # chunked decoding is built in
                    line = raw_line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
            except (http.client.HTTPException, OSError) as exc:
                raise TransportError(
                    f"stream from {self.base_url}{path} broke mid-read: "
                    f"{exc}"
                ) from exc
            finally:
                self._release(conn)

        return lines()
