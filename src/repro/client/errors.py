"""Typed client-side errors mapped from the ``/v1`` wire protocol.

Every non-2xx reply carries the envelope
``{"error": {"code", "message", "detail"}}``;
:func:`error_from_reply` turns it into the matching exception class so
callers catch *meaning* (``NotFoundError``) instead of matching status
integers.  :class:`TransportError` is the one network-level error:
the request never produced a usable HTTP reply (connection refused,
reset mid-read after retries, or a non-JSON response body).
"""

from __future__ import annotations

__all__ = [
    "CapacityError",
    "ClientError",
    "ConflictError",
    "GoneError",
    "NotFoundError",
    "RequestError",
    "ServerError",
    "TransportError",
    "error_from_reply",
]


class ClientError(Exception):
    """Base of every error the marketplace client raises."""

    def __init__(self, message: str, *, status: int | None = None,
                 code: str | None = None, detail: object = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.detail = detail


class TransportError(ClientError):
    """The request never completed at the transport level.

    Raised after the transport's retry budget is exhausted;
    ``attempts`` records how many tries were made.
    """

    def __init__(self, message: str, *, attempts: int = 1,
                 detail: object = None):
        super().__init__(message, detail=detail)
        self.attempts = attempts


class RequestError(ClientError):
    """400: malformed body or a spec that failed validation."""


class NotFoundError(ClientError):
    """404: unknown session id, job id, or route."""


class ConflictError(ClientError):
    """409: state conflict (e.g. restoring over a resident session)."""


class GoneError(ClientError):
    """410: a legacy route was used; ``detail`` names the /v1 home."""


class CapacityError(ClientError):
    """429: the server's resident-session limit is reached."""


class ServerError(ClientError):
    """5xx (or any unmapped status): the server failed the request."""


_BY_STATUS = {
    400: RequestError,
    404: NotFoundError,
    405: RequestError,
    409: ConflictError,
    410: GoneError,
    411: RequestError,
    413: RequestError,
    429: CapacityError,
}


def error_from_reply(status: int, payload: object) -> ClientError:
    """The typed exception for a non-2xx ``(status, payload)`` reply."""
    envelope = payload.get("error") if isinstance(payload, dict) else None
    if isinstance(envelope, dict):
        code = envelope.get("code")
        message = envelope.get("message") or f"HTTP {status}"
        detail = envelope.get("detail")
    else:  # a non-envelope body (proxy page, legacy server, ...)
        code, message, detail = None, f"HTTP {status}: {payload!r}", None
    cls = _BY_STATUS.get(status, ServerError)
    return cls(message, status=status, code=code, detail=detail)
