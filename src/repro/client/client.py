"""The typed marketplace client: one API, interchangeable transports.

:class:`MarketplaceClient` is the single programmatic surface every
front door shares — the CLI commands, the examples, the benchmarks and
the test suites all drive it, and swapping
:class:`~repro.client.local.LocalTransport` for
:class:`~repro.client.http.HttpTransport` (``--server URL``) flips any
of them from embedded to remote with byte-identical payloads.

Wire methods (one per ``/v1`` route) return the reply payloads as
plain dicts; 2xx-or-raise semantics with the typed errors of
:mod:`repro.client.errors`.  On top sit a few conveniences that
compose routes: :meth:`run_session`, :meth:`wait_job`,
:meth:`iter_jobs`, and the high-level :meth:`simulate` (local: direct
:func:`~repro.service.simulation.run_simulation`; remote: submit a
durable job, follow its event stream, rebuild the report — same
digest either way).
"""

from __future__ import annotations

from typing import Iterator

from repro import obs
from repro.client.errors import ServerError, TransportError, error_from_reply
from repro.client.http import HttpTransport
from repro.client.local import LocalTransport
from repro.client.transport import Transport

__all__ = ["MarketplaceClient"]

#: Job statuses after which polling/streaming stops.
_TERMINAL = ("done", "failed", "interrupted")


def _as_dict(spec) -> dict:
    return spec if isinstance(spec, dict) else spec.to_dict()


class MarketplaceClient:
    """Typed facade over the ``/v1`` marketplace protocol."""

    def __init__(self, transport: Transport):
        self.transport = transport

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def local(cls, manager=None, jobs=None) -> "MarketplaceClient":
        """An in-process client (no server, no sockets)."""
        return cls(LocalTransport(manager=manager, jobs=jobs))

    @classmethod
    def connect(cls, url: str, **kwargs) -> "MarketplaceClient":
        """A remote client for a ``repro serve`` base URL."""
        return cls(HttpTransport(url, **kwargs))

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "MarketplaceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _call(self, method: str, path: str, *, body: dict | None = None,
              query: dict | None = None, expect: tuple = (200,)) -> dict:
        # Every call opens a client span: over HTTP the span context
        # rides the traceparent header, so the server's dispatch span
        # becomes a child and a remote exchange stitches into one trace.
        with obs.span(f"client:{method} {path}", method=method,
                      path=path) as active:
            status, payload = self.transport.request(
                method, path, body=body, query=query
            )
            active.set(status=status)
        if status not in expect:
            raise error_from_reply(status, payload)
        return payload

    # ------------------------------------------------------------------
    # Probes and reports
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """``GET /v1/health`` — liveness."""
        return self._call("GET", "/v1/health")

    def healthz(self) -> dict:
        """``GET /v1/healthz`` — liveness + session/job/drain status."""
        return self._call("GET", "/v1/healthz")

    def report(self) -> dict:
        """``GET /v1/report`` — the operator report."""
        return self._call("GET", "/v1/report")

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — Prometheus text exposition, verbatim."""
        status, text = self.transport.request_text("GET", "/v1/metrics")
        if status != 200:  # pragma: no cover - route cannot fail today
            raise ServerError(f"GET /v1/metrics returned {status}",
                              status=status, code="metrics_failed",
                              detail={"body": text})
        return text

    def traces(self, *, offset: int = 0, limit: int = 1000) -> list[dict]:
        """``GET /v1/traces`` — finished spans after ``offset`` (by seq)."""
        return list(self.transport.stream(
            "GET", "/v1/traces", query={"offset": offset, "limit": limit},
        ))

    # ------------------------------------------------------------------
    # Markets and sessions
    # ------------------------------------------------------------------
    def build_market(self, spec) -> dict:
        """``POST /v1/markets`` — build (or warm) a market.

        ``spec`` is a :class:`~repro.service.specs.MarketSpec` or its
        dict form; the reply's ``market`` digest can seed
        :meth:`open_session`.
        """
        return self._call("POST", "/v1/markets", body=_as_dict(spec))

    def open_session(self, spec) -> dict:
        """``POST /v1/sessions`` — open a bargaining session."""
        return self._call("POST", "/v1/sessions", body=_as_dict(spec),
                          expect=(201,))

    def session(self, session_id: str) -> dict:
        """``GET /v1/sessions/{id}`` — current status."""
        return self._call("GET", f"/v1/sessions/{session_id}")

    def step(self, session_id: str, *, rounds: int = 1) -> dict:
        """``POST /v1/sessions/{id}/step`` — advance up to ``rounds``."""
        return self._call("POST", f"/v1/sessions/{session_id}/step",
                          body={"rounds": rounds})

    def run_session(self, session_id: str) -> dict:
        """Step a session to termination (one round trip)."""
        return self._call("POST", f"/v1/sessions/{session_id}/step",
                          body={"until_done": True})

    def checkpoint(self, session_id: str) -> dict:
        """``GET /v1/sessions/{id}/state`` — a shippable snapshot."""
        return self._call("GET", f"/v1/sessions/{session_id}/state")

    def restore(self, checkpoint: dict, *, session_id: str | None = None) -> dict:
        """``PUT /v1/sessions/{id}/state`` — restore a checkpoint.

        ``session_id`` defaults to the checkpoint's own session id.
        """
        sid = session_id or checkpoint.get("session")
        if not sid:
            raise ValueError("no session id: pass session_id= or a "
                             "checkpoint with a 'session' field")
        return self._call("PUT", f"/v1/sessions/{sid}/state",
                          body=checkpoint, expect=(201,))

    def close_session(self, session_id: str) -> dict:
        """``DELETE /v1/sessions/{id}`` — close (404 if not resident)."""
        return self._call("DELETE", f"/v1/sessions/{session_id}")

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def submit_simulation(self, spec, *, shards: int | None = None,
                          chunks: int | None = None,
                          fleet: bool = False) -> dict:
        """``POST /v1/simulations`` — submit a durable sharded job.

        ``fleet=True`` routes the job through the coordinator's lease
        queue so joined fleet workers pull its chunks.
        """
        body = _as_dict(spec)
        if shards is not None:
            body = {**body, "shards": shards}
        if chunks is not None:
            body = {**body, "chunks": chunks}
        if fleet:
            body = {**body, "fleet": True}
        return self._call("POST", "/v1/simulations", body=body,
                          expect=(202,))

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}`` — progress (+ report when done)."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def jobs(self, *, limit: int = 100, after: str | None = None) -> dict:
        """``GET /v1/jobs`` — one page: ``{jobs, count, next}``."""
        query: dict = {"limit": limit}
        if after is not None:
            query["after"] = after
        return self._call("GET", "/v1/jobs", query=query)

    def iter_jobs(self, *, page_size: int = 100) -> Iterator[dict]:
        """Every recorded job, walking the pagination cursor."""
        after: str | None = None
        while True:
            page = self.jobs(limit=page_size, after=after)
            yield from page["jobs"]
            after = page["next"]
            if after is None:
                return

    def resume_job(self, job_id: str, *, shards: int | None = None,
                   fleet: bool = False) -> dict:
        """``POST /v1/jobs/{id}/resume`` — restart pending chunks."""
        body: dict = {}
        if shards is not None:
            body["shards"] = shards
        if fleet:
            body["fleet"] = True
        return self._call("POST", f"/v1/jobs/{job_id}/resume", body=body,
                          expect=(202,))

    def job_events(self, job_id: str, *, poll: float = 0.1,
                   timeout: float = 600.0) -> Iterator[dict]:
        """``GET /v1/jobs/{id}/events`` — streamed progress lines."""
        return self.transport.stream(
            "GET", f"/v1/jobs/{job_id}/events",
            query={"poll": poll, "timeout": timeout},
        )

    def wait_job(self, job_id: str, *, timeout: float = 600.0,
                 poll: float = 0.1, on_event=None) -> dict:
        """Follow a job to a terminal status; returns its final payload.

        Prefers the event stream (one long-lived request); falls back
        to polling ``GET /v1/jobs/{id}`` if the stream breaks.
        ``on_event`` (optional callable) observes each streamed line —
        the hook the CLI uses to print live progress.
        """
        import time as _time

        deadline = _time.monotonic() + timeout
        try:
            for event in self.job_events(job_id, poll=poll, timeout=timeout):
                if on_event is not None:
                    on_event(event)
                if event.get("event") == "end":
                    return self.job(job_id)
                if event.get("event") == "timeout":
                    break
        except TransportError:
            pass  # stream broke; fall through to polling
        while _time.monotonic() < deadline:
            payload = self.job(job_id)
            if payload["status"] in _TERMINAL:
                return payload
            _time.sleep(poll)
        raise TimeoutError(
            f"job {job_id} did not reach a terminal status in {timeout}s"
        )

    def run_chunk(self, kind: str, spec: dict, start: int, stop: int) -> dict:
        """``POST /v1/chunks`` — execute one job chunk (worker protocol)."""
        return self._call(
            "POST", "/v1/chunks",
            body={"kind": kind, "spec": spec,
                  "start": int(start), "stop": int(stop)},
        )

    # ------------------------------------------------------------------
    # The fleet protocol (worker side of the lease queue)
    # ------------------------------------------------------------------
    def register_worker(self, url: str, *, capacity: int = 1,
                        labels: dict | None = None) -> dict:
        """``POST /v1/workers`` — register (or re-adopt) a worker."""
        body: dict = {"url": url, "capacity": int(capacity)}
        if labels:
            body["labels"] = dict(labels)
        return self._call("POST", "/v1/workers", body=body, expect=(201,))

    def worker_heartbeat(self, worker_id: str, *,
                         load: dict | None = None) -> dict:
        """``POST /v1/workers/{id}/heartbeat`` — record this worker's
        pulse (404 means: re-register)."""
        body: dict = {}
        if load is not None:
            body["load"] = load
        return self._call("POST", f"/v1/workers/{worker_id}/heartbeat",
                          body=body)

    def lease_chunk(self, worker_id: str) -> dict:
        """``POST /v1/workers/{id}/lease`` — pull one chunk lease
        (``{"lease": None}`` when the queue is empty)."""
        return self._call("POST", f"/v1/workers/{worker_id}/lease", body={})

    def complete_chunk(self, worker_id: str, job_id: str, chunk: int,
                       result: dict, *, elapsed: float = 0.0) -> dict:
        """``POST /v1/workers/{id}/complete`` — deliver a chunk result."""
        return self._call(
            "POST", f"/v1/workers/{worker_id}/complete",
            body={"job": job_id, "chunk": int(chunk), "result": result,
                  "elapsed": float(elapsed)},
        )

    def fail_chunk(self, worker_id: str, job_id: str, chunk: int,
                   error: str) -> dict:
        """``POST /v1/workers/{id}/complete`` with ``error`` — report a
        chunk that raised (fails the job)."""
        return self._call(
            "POST", f"/v1/workers/{worker_id}/complete",
            body={"job": job_id, "chunk": int(chunk), "error": str(error)},
        )

    def deregister_worker(self, worker_id: str) -> dict:
        """``DELETE /v1/workers/{id}`` — graceful goodbye."""
        return self._call("DELETE", f"/v1/workers/{worker_id}")

    def fleet_status(self) -> dict:
        """``GET /v1/fleet`` — workers, active leases, queue depth."""
        return self._call("GET", "/v1/fleet")

    # ------------------------------------------------------------------
    # High level
    # ------------------------------------------------------------------
    def simulate(self, spec, *, market_spec=None, shards: int | None = None,
                 chunks: int | None = None, timeout: float = 3600.0,
                 on_event=None):
        """Run a population simulation; returns the
        :class:`~repro.simulate.report.SimulationReport`.

        Local transport: the in-process
        :func:`~repro.service.simulation.run_simulation` fast path over
        the transport's own market pool (``market_spec`` may override
        the oracle-backing market exactly as the CLI does).  Remote:
        submit the spec as a durable job, follow its event stream, and
        rebuild the report from the wire payload.  Both paths produce
        the same report digest — the contract
        ``tests/client/test_cli_server_parity.py`` pins.
        """
        if isinstance(self.transport, LocalTransport):
            from repro.service.simulation import run_simulation
            from repro.service.specs import SimulationSpec

            if isinstance(spec, dict):
                spec = SimulationSpec.from_dict(spec)
            with obs.span("simulate:local", sessions=spec.sessions):
                _, _, local_report = run_simulation(
                    spec,
                    pool=self.transport.ctx.manager.pool,
                    market_spec=market_spec,
                )
            return local_report
        if market_spec is not None:
            raise ValueError(
                "market_spec only applies to local transports; a remote "
                "server resolves the oracle-backing market from the "
                "SimulationSpec itself"
            )
        from repro.simulate.report import report_from_dict

        submitted = self.submit_simulation(spec, shards=shards, chunks=chunks)
        final = self.wait_job(submitted["job"], timeout=timeout,
                              on_event=on_event)
        if final["status"] != "done":
            raise ServerError(
                f"simulation job {final['job']} ended "
                f"{final['status']}: {final.get('error')}",
                status=500, code="job_failed", detail=final,
            )
        return report_from_dict(final["report"])
