"""Command-line interface: ``python -m repro <command> ...``.

Every command is a thin spec-constructor over the client SDK
(:mod:`repro.client`): choices come from the live registries, the
arguments become a typed :class:`~repro.service.specs.MarketSpec` /
:class:`~repro.service.specs.SessionSpec` /
:class:`~repro.service.specs.SimulationSpec`, and execution drives a
:class:`~repro.client.MarketplaceClient` — in-process by default
(:class:`~repro.client.LocalTransport` over the shared market pool),
or against any ``python -m repro serve`` deployment with
``--server URL`` (:class:`~repro.client.HttpTransport`), with
identical report digests either way.

Commands
--------
``bargain``
    Play bargaining games on one of the registered markets and print
    the outcome summary (the quickstart example, parameterised).
``simulate``
    Run a population of heterogeneous bargaining sessions through the
    :class:`repro.simulate.SessionPool` scheduler and print the
    aggregate report (acceptance rate, rounds, payment/net-profit
    histograms, throughput).
``serve``
    Serve the marketplace as a JSON HTTP API (markets, sessions,
    stepping, simulation jobs) on top of one warm market pool.
``jobs``
    Durable sharded simulation jobs: ``run`` fans a population across
    worker-process shards with chunk-level progress in a SQLite store,
    ``resume`` re-attaches after a crash (or ``kill -9``) and finishes
    only the pending chunks, ``status``/``list`` inspect the store.
    The merged report is bit-identical to ``simulate`` for any shard
    count.
``obs``
    Pretty-print a live server's telemetry: the ``/v1/metrics``
    Prometheus exposition, optionally with its recent trace spans.
``lint``
    Determinism + concurrency static analysis over the source tree
    (:mod:`repro.analysis`): unseeded RNG, wall-clock in digest-bearing
    modules, non-canonical serialisation, set-iteration order, spec
    shape, lock-order cycles, unlocked loop/thread shared state.
    Exit codes: 0 clean, 1 findings, 2 internal error.
``table``
    Regenerate one of the paper's tables (2, 3 or 4).
``figure``
    Regenerate one of the paper's figures (1, 2, 3 or 4) as an ASCII
    chart (optionally dumping the CSV series).

Examples
--------
::

    python -m repro bargain --dataset titanic --runs 5
    python -m repro bargain --dataset credit --task increase_price --jobs 4
    python -m repro simulate --sessions 10000 --preset titanic
    python -m repro simulate --sessions 2000 --dataset credit --jobs 4
    python -m repro simulate --sessions 1000 --mix "strategic:strategic=0.8,increase_price:strategic=0.2"
    python -m repro simulate --sessions 5000 --server http://localhost:8765
    python -m repro bargain --runs 3 --server http://localhost:8765
    python -m repro jobs run --sessions 20000 --shards 4 --store sweeps.sqlite3
    python -m repro jobs run --sessions 20000 --workers http://a:8765,http://b:8765
    python -m repro jobs run --sessions 20000 --server http://localhost:8765
    python -m repro jobs resume j0123abcd4567ef89 --store sweeps.sqlite3
    python -m repro serve --port 8765
    python -m repro simulate --sessions 120 --trace sim-trace.ndjson
    python -m repro obs --server http://localhost:8765 --traces 10
    python -m repro lint --format json
    python -m repro lint src/repro/service --select CON001,CON002
    python -m repro table 3 --dataset adult
    python -m repro figure 2 --dataset titanic --csv-dir results/
"""

from __future__ import annotations

import argparse
import contextlib
import sys

import numpy as np

from repro.service import registry

__all__ = ["build_parser", "main"]


def _add_oracle_options(parser: argparse.ArgumentParser) -> None:
    """Oracle-factory knobs shared by commands that build real oracles."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for pre-bargaining VFL courses "
                             "(0 = all cores; results are identical)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="gain-cache directory (default: "
                             "$REPRO_ORACLE_CACHE or ~/.cache/repro/oracle)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent gain cache")


def _oracle_cache(args: argparse.Namespace):
    """The GainCache implied by --cache-dir/--no-cache (None if disabled)."""
    if args.no_cache:
        return None
    from repro.oracle_factory import GainCache, default_cache_dir

    return GainCache(args.cache_dir or default_cache_dir())


def _add_secure_options(parser: argparse.ArgumentParser) -> None:
    """Flags for the §3.6 secure-bargaining settlement path."""
    parser.add_argument("--secure", action="store_true",
                        help="settle accepted payments through the batched "
                             "Paillier path (value-identical to the serial "
                             "secure protocol; shard-invariant)")
    parser.add_argument("--key-bits", type=int, default=256, metavar="BITS",
                        help="Paillier key size for --secure (default 256; "
                             "the keypair derives deterministically from "
                             "--seed)")


def _add_client_option(parser: argparse.ArgumentParser) -> None:
    """The local-vs-remote switch every client-driven command shares."""
    parser.add_argument("--server", default=None, metavar="URL",
                        help="drive a remote `repro serve` deployment at "
                             "this base URL instead of running in-process "
                             "(identical report digests either way)")


def _add_trace_option(parser: argparse.ArgumentParser) -> None:
    """The trace-capture flag shared by the workload commands."""
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="run the command under a root span and append "
                             "every finished span to FILE as JSON lines "
                             "(telemetry only; report digests are unchanged)")


@contextlib.contextmanager
def _tracing(args: argparse.Namespace, name: str):
    """Root span + NDJSON sink for a ``--trace FILE`` invocation."""
    trace = getattr(args, "trace", None)
    if not trace:
        yield
        return
    from repro import obs

    obs.TRACER.set_sink(trace)
    try:
        with obs.span(name, command=name):
            yield
    finally:
        obs.TRACER.set_sink(None)
        print(f"trace written to {trace}")


def _client(args: argparse.Namespace):
    """The MarketplaceClient the command should drive."""
    from repro.client import MarketplaceClient

    if args.server:
        return MarketplaceClient.connect(args.server)
    return MarketplaceClient.local()


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for tests and docs).

    All ``choices=`` tuples are sourced from the service registries —
    registering a dataset, base model, strategy or cost kind makes it
    appear here (and in spec validation, and in the simulator's mix
    parser) with no CLI changes.
    """
    datasets = registry.dataset_names()
    vfl_datasets = registry.dataset_names(include_synthetic=False)
    base_models = registry.base_model_names()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bargaining-based VFL feature market (Cui et al., ICDE 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bargain = sub.add_parser("bargain", help="play bargaining games on a market")
    bargain.add_argument("--dataset", default="titanic", choices=datasets)
    bargain.add_argument("--model", default="random_forest", choices=base_models)
    bargain.add_argument("--task", default="strategic",
                         choices=registry.task_strategy_names())
    bargain.add_argument("--data", default="strategic",
                         choices=registry.data_strategy_names())
    bargain.add_argument("--information", default="perfect",
                         choices=("perfect", "imperfect"))
    bargain.add_argument("--runs", type=int, default=1)
    bargain.add_argument("--seed", type=int, default=0)
    _add_secure_options(bargain)
    _add_oracle_options(bargain)
    _add_client_option(bargain)
    _add_trace_option(bargain)

    def _add_population_options(parser: argparse.ArgumentParser) -> None:
        """Simulation-describing flags shared by simulate and jobs run."""
        parser.add_argument("--sessions", type=int, default=1000,
                            help="population size (default 1000)")
        parser.add_argument("--preset", default=None,
                            choices=registry.preset_names(),
                            help="calibration anchor for the population "
                                 "(default: the --dataset name, else synthetic)")
        parser.add_argument("--dataset", default=None, choices=vfl_datasets,
                            help="anchor the catalogue on a real pre-bargaining "
                                 "oracle: the factory runs one VFL course per "
                                 "bundle on this dataset")
        parser.add_argument("--base-model", default="random_forest",
                            choices=base_models,
                            help="base model for the --dataset oracle courses")
        parser.add_argument("--seed", type=int, default=0)
        _add_oracle_options(parser)
        parser.add_argument("--batch-size", type=int, default=1024,
                            help="scheduler batch width (outcomes are invariant)")
        parser.add_argument("--mix", default=None, metavar="PAIRS",
                            help="strategy mix, e.g. "
                                 "'strategic:strategic=0.8,increase_price:strategic=0.2'")
        parser.add_argument("--cost", default=None, metavar="COSTS",
                            help="bargaining-cost mix, e.g. 'none=0.7,linear:0.05=0.3'")
        parser.add_argument("--bins", type=int, default=16,
                            help="histogram bins in the report")
        _add_secure_options(parser)

    simulate = sub.add_parser(
        "simulate", help="run a population of concurrent bargaining sessions"
    )
    _add_population_options(simulate)
    _add_client_option(simulate)
    _add_trace_option(simulate)
    simulate.add_argument("--json", default=None, metavar="PATH",
                          help="also dump the report as JSON here")
    simulate.add_argument("--expect-digest", default=None, metavar="HEX",
                          help="fail unless the report digest matches (CI guard)")

    serve = sub.add_parser(
        "serve", help="serve the marketplace as a JSON HTTP API"
    )
    from repro.service.server import add_serve_arguments

    add_serve_arguments(serve)

    jobs = sub.add_parser(
        "jobs", help="durable, sharded simulation jobs (submit, kill, resume)"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    def _add_store_option(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--store", default=None, metavar="PATH",
                            help="durable job store (default: $REPRO_JOB_STORE "
                                 "or ~/.cache/repro/jobs.sqlite3)")

    def _add_execution_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--shards", type=int, default=2, metavar="N",
                            help="worker-process shards (default 2; 0 = all "
                                 "cores; the merged report is identical for "
                                 "every value)")
        parser.add_argument("--workers", default=None, metavar="URLS",
                            help="comma-separated `repro serve` worker URLs: "
                                 "ship chunks to these hosts over /v1/chunks "
                                 "instead of local processes (the merged "
                                 "report is still identical)")
        parser.add_argument("--fleet", action="store_true",
                            help="run through the fleet lease queue: joined "
                                 "workers (`repro serve --join`) pull the "
                                 "chunks instead of this process executing "
                                 "them (the merged report is still "
                                 "identical)")
        parser.add_argument("--max-chunks", type=int, default=None,
                            metavar="K",
                            help="stop after K chunks this invocation, "
                                 "leaving the job resumable (testing/drills)")
        parser.add_argument("--expect-digest", default=None, metavar="HEX",
                            help="fail unless the merged report digest "
                                 "matches (CI guard)")
        _add_client_option(parser)
        _add_trace_option(parser)

    jobs_run = jobs_sub.add_parser(
        "run", help="submit a simulation job and execute it shard-parallel"
    )
    _add_population_options(jobs_run)
    jobs_run.add_argument("--chunks", type=int, default=None, metavar="M",
                          help="progress granularity: sessions are recorded "
                               "to the store in M chunks (default: up to 16)")
    _add_store_option(jobs_run)
    _add_execution_options(jobs_run)

    jobs_resume = jobs_sub.add_parser(
        "resume", help="re-attach to a job and run its pending chunks"
    )
    jobs_resume.add_argument("job_id")
    _add_store_option(jobs_resume)
    _add_execution_options(jobs_resume)

    jobs_status = jobs_sub.add_parser("status", help="one job's progress")
    jobs_status.add_argument("job_id")
    jobs_status.add_argument("--report", action="store_true",
                             help="also print the stored report of a "
                                  "finished job")
    _add_store_option(jobs_status)
    _add_client_option(jobs_status)

    jobs_list = jobs_sub.add_parser("list", help="every recorded job")
    _add_store_option(jobs_list)
    _add_client_option(jobs_list)

    fleet = sub.add_parser(
        "fleet", help="inspect a coordinator's elastic worker fleet"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status", help="workers, active leases, and queue depth "
                       "(GET /v1/fleet)"
    )
    _add_client_option(fleet_status)

    obs_cmd = sub.add_parser(
        "obs", help="inspect a live server's telemetry (GET /v1/metrics)"
    )
    _add_client_option(obs_cmd)
    obs_cmd.add_argument("--raw", action="store_true",
                         help="print the raw Prometheus text exposition "
                              "instead of the pretty summary")
    obs_cmd.add_argument("--traces", type=int, default=0, metavar="N",
                         help="also print the server's last N finished "
                              "trace spans (GET /v1/traces)")

    lint = sub.add_parser(
        "lint",
        help="determinism + concurrency static analysis "
             "(exit 0 clean / 1 findings / 2 internal error)",
        add_help=False,
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments for the lint driver "
                           "(see `repro lint --help`)")

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(2, 3, 4))
    table.add_argument("--dataset", default="titanic", choices=vfl_datasets)
    table.add_argument("--model", default="random_forest", choices=base_models)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(1, 2, 3, 4))
    figure.add_argument("--dataset", default="titanic", choices=vfl_datasets)
    figure.add_argument("--csv-dir", default=None,
                        help="also write the series as CSV files here")
    return parser


def _cmd_bargain(args: argparse.Namespace) -> int:
    from repro.experiments import spec_for
    from repro.market.pricing import QuotedPrice
    from repro.service import SessionSpec

    if not args.secure and args.key_bits != 256:
        raise SystemExit("--key-bits only applies with --secure")
    spec = spec_for(
        args.dataset,
        args.model,
        seed=args.seed,
        jobs=args.jobs,
        cache=_oracle_cache(args),
    )
    with _client(args) as client:
        market = client.build_market(spec)
        # Only a build that happened in this call has a report describing
        # it; a market reused from the serving pool would misreport — the
        # wire payload carries the summary exactly when this call built.
        if market["build_report"]:
            print(market["build_report"])
        print(f"market: {market['name']} | catalogue {market['n_bundles']} "
              f"bundles | target dG* = {market['target_gain']:.4f}")
        if args.secure:
            print(f"secure bargaining: Paillier {args.key_bits}-bit "
                  f"(batched, seed-derived keypair)")
        outcomes = []
        for i in range(args.runs):
            opened = client.open_session(SessionSpec(
                market=spec,
                task=args.task,
                data=args.data,
                information=args.information,
                seed=args.seed,
                run=i,
                secure=args.secure,
                key_bits=args.key_bits,
            ))
            state = client.run_session(opened["session"])
            outcomes.append(state["outcome"])
            client.close_session(opened["session"])
    accepted = [o for o in outcomes if o["accepted"]]
    for i, o in enumerate(outcomes):
        line = (f"run {i}: {o['status']:<10} rounds={o['n_rounds']:<4}")
        if o["accepted"]:
            quote = QuotedPrice.from_dict(o["quote"])
            line += (f" dG={o['delta_g']:.4f} payment={o['payment']:.3f} "
                     f"net={o['net_profit']:.2f} quote={quote}")
        print(line)
    if accepted:
        print(f"summary: {len(accepted)}/{len(outcomes)} accepted | "
              f"mean net profit "
              f"{np.mean([o['net_profit'] for o in accepted]):.2f} | "
              f"mean payment {np.mean([o['payment'] for o in accepted]):.3f}")
    return 0


def _float(text: str, context: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise SystemExit(f"bad {context}: {text!r} is not a number") from None


def _parse_mix(text: str) -> tuple[tuple[str, str, float], ...]:
    """``'strategic:strategic=0.8,...'`` -> strategy_mix triples."""
    entries = []
    for part in text.split(","):
        pair, _, weight = part.strip().partition("=")
        task, _, data = pair.partition(":")
        if not (task and data):
            raise SystemExit(f"bad --mix entry {part!r}; expected task:data=weight")
        entries.append((task.strip(), data.strip(),
                        _float(weight, f"--mix weight in {part!r}") if weight
                        else 1.0))
    return tuple(entries)


def _parse_cost(text: str) -> tuple[tuple[str, float, float], ...]:
    """``'none=0.7,linear:0.05=0.3'`` -> cost_mix triples.

    Whether a kind takes a parameter comes from the cost registry;
    unknown kinds are parsed permissively here and rejected by spec
    validation with the full list of registered kinds.
    """
    entries = []
    for part in text.split(","):
        spec, _, weight = part.strip().partition("=")
        kind, _, a = spec.partition(":")
        kind = kind.strip()
        if kind not in registry.COSTS:
            # Pass unknown kinds straight through so spec validation
            # rejects them by name (with the registered-kind list)
            # instead of a misleading parameter-shape complaint here.
            entries.append((kind,
                            _float(a, f"--cost parameter in {part!r}") if a
                            else 0.0,
                            _float(weight, f"--cost weight in {part!r}")
                            if weight else 1.0))
            continue
        takes_parameter = registry.COSTS.get(kind).takes_parameter
        if takes_parameter and not a:
            # Defaulting a missing parameter would silently flip the
            # sessions into cost-aware (Eq. 6/7) acceptance mode.
            raise SystemExit(
                f"bad --cost entry {part!r}: {kind!r} needs a parameter "
                f"(expected {kind}:a=weight)"
            )
        if not takes_parameter and a:
            # 'none:0.7' is the natural typo for 'none=0.7' — storing
            # 0.7 as an ignored parameter would silently skew the mix.
            raise SystemExit(
                f"bad --cost entry {part!r}: {kind!r} takes no parameter "
                f"(expected {kind}=weight)"
            )
        entries.append((kind,
                        _float(a, f"--cost parameter in {part!r}") if a else 0.0,
                        _float(weight, f"--cost weight in {part!r}") if weight
                        else 1.0))
    return tuple(entries)


def _simulation_spec(args: argparse.Namespace):
    """The validated ``SimulationSpec`` described by simulate-style flags
    (shared by ``simulate`` and ``jobs run``)."""
    from repro.service import SimulationSpec

    for name, value in (("--sessions", args.sessions),
                        ("--batch-size", args.batch_size),
                        ("--bins", args.bins)):
        if value < 1:
            raise SystemExit(f"{name} must be >= 1, got {value}")
    try:
        sim = SimulationSpec(
            sessions=args.sessions,
            preset=args.preset,
            dataset=args.dataset,
            base_model=args.base_model,
            seed=args.seed,
            batch_size=args.batch_size,
            bins=args.bins,
            strategy_mix=_parse_mix(args.mix) if args.mix else None,
            cost_mix=_parse_cost(args.cost) if args.cost else None,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            secure=args.secure,
            key_bits=args.key_bits,
        )
    except ValueError as exc:  # unknown strategy/cost kind, bad weight, ...
        raise SystemExit(f"invalid population spec: {exc}") from None
    if not args.secure and args.key_bits != 256:
        # A dangling key size would be silently recorded in the spec
        # (changing its digest) without ever being used.
        raise SystemExit("--key-bits only applies with --secure")
    if not args.dataset:
        # These knobs only affect the pre-bargaining oracle build;
        # silently ignoring them would let users believe they took
        # effect on the synthetic-catalogue path.
        ignored = []
        if args.jobs != 1:
            ignored.append("--jobs")
        if args.cache_dir:
            ignored.append("--cache-dir")
        if args.no_cache:
            ignored.append("--no-cache")
        if args.base_model != "random_forest":
            ignored.append("--base-model")
        if ignored:
            raise SystemExit(
                f"{', '.join(ignored)} only apply with --dataset "
                f"(no oracle is built for synthetic catalogues)"
            )
    return sim


def _cmd_simulate(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    sim = _simulation_spec(args)
    market_spec = None
    if args.dataset and not args.server:
        # A real pre-bargaining oracle: the factory runs (or replays
        # from cache) one VFL course per catalogued bundle.  With
        # --server the remote deployment resolves and builds it.
        from repro.experiments import market_is_cached, spec_for
        from repro.service import shared_pool

        market_spec = spec_for(
            args.dataset,
            args.base_model,
            seed=args.seed,
            jobs=args.jobs,
            cache=_oracle_cache(args),
        )
        fresh_build = not market_is_cached(market_spec)
        market = shared_pool().get(market_spec)
        build_report = getattr(market.oracle, "build_report", None)
        if fresh_build and build_report is not None:
            print(build_report.summary())
    with _client(args) as client:
        report = client.simulate(sim, market_spec=market_spec)
    print(report.to_text())
    if args.json:
        import json
        import os

        from repro.utils.canonical import json_safe

        payload = json_safe(asdict(report))
        payload["digest"] = report.digest()
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, allow_nan=False)
        print(f"report written to {args.json}")
    if args.expect_digest and report.digest() != args.expect_digest:
        print(f"digest mismatch: got {report.digest()}, "
              f"expected {args.expect_digest}")
        return 1
    return 0


def _job_store(args: argparse.Namespace):
    from repro.jobs import JobStore, default_store_path

    return JobStore(args.store or default_store_path())


def _print_job(record) -> None:
    line = (f"job {record.job_id}: {record.status} | kind {record.kind} | "
            f"chunks {record.done_chunks}/{record.n_chunks}")
    if record.digest:
        line += f" | digest {record.digest}"
    print(line)


def _print_job_report(record) -> None:
    """The stored report of a finished job, rendered per kind."""
    if record.kind == "simulation":
        from repro.simulate.report import report_from_dict

        print(report_from_dict(record.report).to_text())
    else:
        print(f"batch: {record.report['accepted']}/{record.report['runs']} "
              f"accepted")


def _finish_job_command(record, expect_digest: str | None,
                        resume_suffix: str = "") -> int:
    """Shared run/resume epilogue: report, digest guard, exit code.

    ``record`` is a :class:`~repro.jobs.store.JobRecord` or the
    duck-typed :class:`_WireJobView` over a /v1 payload, so the local
    and ``--server`` paths render identically; ``resume_suffix`` tails
    the resume hints (e.g. ``" --server URL"``).
    """
    _print_job(record)
    if record.finished:
        _print_job_report(record)
    if expect_digest:
        if not record.finished:
            print(f"job not finished (status {record.status}); cannot verify "
                  f"digest — resume it with: repro jobs resume "
                  f"{record.job_id}{resume_suffix}")
            return 1
        if record.digest != expect_digest:
            print(f"digest mismatch: got {record.digest}, "
                  f"expected {expect_digest}")
            return 1
    if not record.finished:
        print(f"resume with: python -m repro jobs resume "
              f"{record.job_id}{resume_suffix}")
    return 0


class _WireJobView:
    """A /v1 job payload duck-typed as the JobRecord fields the jobs
    epilogue renders, so local and remote output share one code path."""

    def __init__(self, payload: dict):
        self.job_id = payload["job"]
        self.kind = payload["kind"]
        self.status = payload["status"]
        self.done_chunks = payload["chunks_done"]
        self.n_chunks = payload["chunks"]
        self.digest = payload.get("digest")
        self.report = payload.get("report")

    @property
    def finished(self) -> bool:
        return self.status == "done"


def _cmd_jobs_remote(args: argparse.Namespace) -> int:
    """The jobs subcommands against a remote server's durable store."""
    from repro.client import ClientError

    def on_event(event: dict) -> None:
        if event.get("event") == "progress":
            print(f"  chunks {event['chunks_done']}/{event['chunks']} "
                  f"({event['status']})")

    try:
        with _client(args) as client:
            if args.jobs_command == "list":
                shown = 0
                for payload in client.iter_jobs():
                    _print_job(_WireJobView(payload))
                    shown += 1
                if not shown:
                    print(f"no jobs recorded on {args.server}")
                return 0
            if args.jobs_command == "status":
                record = _WireJobView(client.job(args.job_id))
                _print_job(record)
                if args.report and record.finished:
                    _print_job_report(record)
                return 0
            if args.jobs_command == "run":
                spec = _simulation_spec(args)
                submitted = client.submit_simulation(
                    spec, shards=args.shards, chunks=args.chunks,
                    fleet=args.fleet,
                )
                where = "fleet queue" if args.fleet else args.server
                print(f"submitted job {submitted['job']} "
                      f"({submitted['chunks']} chunks, on {where})")
                job_id = submitted["job"]
            else:  # resume
                client.resume_job(args.job_id, shards=args.shards,
                                  fleet=args.fleet)
                job_id = args.job_id
            # Server-side jobs can legitimately run for hours; the wait
            # mirrors the local executor's behaviour (block until done).
            final = client.wait_job(job_id, timeout=86400.0,
                                    on_event=on_event)
    except TimeoutError:
        print(f"job {job_id} is still running on {args.server}; check it "
              f"with: python -m repro jobs status {job_id} "
              f"--server {args.server}")
        return 1
    except ClientError as exc:
        raise SystemExit(str(exc)) from None
    return _finish_job_command(_WireJobView(final), args.expect_digest,
                               resume_suffix=f" --server {args.server}")


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.jobs import RemoteShardExecutor, ShardedExecutor

    workers = getattr(args, "workers", None)
    fleet = getattr(args, "fleet", False)
    if args.server and workers:
        raise SystemExit(
            "--server and --workers are mutually exclusive: --server runs "
            "the job on that deployment's own store, --workers fans this "
            "process's job across remote chunk executors"
        )
    if workers and fleet:
        raise SystemExit(
            "--workers and --fleet are mutually exclusive: --workers "
            "pushes chunks to a static host list, --fleet lets joined "
            "workers pull them from the lease queue"
        )
    if args.server:
        return _cmd_jobs_remote(args)

    store = _job_store(args)
    if args.jobs_command == "list":
        records = store.jobs()
        if not records:
            print(f"no jobs recorded in {store.path}")
        for record in records:
            _print_job(record)
        return 0
    if args.jobs_command == "status":
        try:
            record = store.get(args.job_id)
        except KeyError as exc:
            raise SystemExit(str(exc).strip("'\"")) from None
        _print_job(record)
        if args.report and record.finished:
            _print_job_report(record)
        return 0

    if fleet:
        # Coordinate through the shared store file: a `repro serve
        # --job-store` process on the same path serves the lease routes,
        # so this CLI invocation only watches the queue drain and merges.
        from repro.fleet import FleetExecutor

        executor = FleetExecutor(store, max_chunks=args.max_chunks)
    elif workers:
        executor = RemoteShardExecutor(
            store, workers.split(","), max_chunks=args.max_chunks
        )
    else:
        executor = ShardedExecutor(
            store, shards=args.shards, max_chunks=args.max_chunks
        )
    if args.jobs_command == "run":
        spec = _simulation_spec(args)
        record = executor.submit(spec, chunks=args.chunks)
        where = ("fleet queue" if fleet
                 else f"workers {workers}" if workers
                 else f"{args.shards or 'all'} shards")
        print(f"submitted job {record.job_id} "
              f"({record.n_chunks} chunks, {where}, "
              f"store {store.path})")
        job_id = record.job_id
    else:  # resume
        job_id = args.job_id
    try:
        record = executor.run(job_id)
    except KeyError as exc:
        raise SystemExit(str(exc).strip("'\"")) from None
    return _finish_job_command(record, args.expect_digest)


def _parse_prometheus(text: str) -> list[dict]:
    """Group a Prometheus text exposition into renderable families."""
    families: dict[str, dict] = {}

    def family(name: str) -> dict:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base.removesuffix(suffix) in families:
                base = base.removesuffix(suffix)
                break
        return families.setdefault(
            base, {"name": base, "help": "", "kind": "", "series": []}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            family(name)["help"] = help_text
        elif line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            family(name)["kind"] = kind
        elif not line.startswith("#"):
            sample, _, value = line.rpartition(" ")
            name = sample.partition("{")[0]
            family(name)["series"].append((sample, value))
    return list(families.values())


def _cmd_obs(args: argparse.Namespace) -> int:
    if not args.server:
        raise SystemExit(
            "repro obs inspects a live deployment; pass --server URL "
            "(an in-process registry would only describe this one-shot "
            "CLI process)"
        )
    with _client(args) as client:
        text = client.metrics_text()
        spans = client.traces(limit=10000) if args.traces > 0 else []
    if args.raw:
        print(text, end="")
    else:
        print(f"metrics from {args.server}:")
        for fam in _parse_prometheus(text):
            if not fam["series"]:
                continue
            line = f"\n{fam['name']} ({fam['kind'] or 'untyped'})"
            if fam["help"]:
                line += f" — {fam['help']}"
            print(line)
            for sample, value in fam["series"]:
                print(f"  {sample}  {value}")
    if args.traces > 0:
        print(f"\nlast {min(args.traces, len(spans))} of {len(spans)} "
              f"buffered spans:")
        for record in spans[-args.traces:]:
            attrs = ",".join(f"{k}={v}" for k, v in
                             sorted(record.get("attrs", {}).items()))
            print(f"  seq={record['seq']} {record['name']} "
                  f"trace={record['trace_id']} "
                  f"duration={record['duration']:.6f}s"
                  + (f" [{attrs}]" if attrs else ""))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_server

    return run_server(
        args.host,
        args.port,
        idle_ttl=args.idle_ttl,
        max_sessions=args.max_sessions,
        coalesce_window=args.coalesce_window,
        job_store=args.job_store,
        shards=args.shards,
        drain_timeout=args.drain_timeout,
        eviction_interval=args.eviction_interval,
        use_async=args.use_async,
        http_workers=args.http_workers,
        verbose=args.verbose,
        join=args.join,
        capacity=args.capacity,
        worker_url=args.worker_url,
        lease_ttl=args.lease_ttl,
        heartbeat_ttl=args.heartbeat_ttl,
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    """``repro fleet status`` — the coordinator's elastic-worker view."""
    if not args.server:
        raise SystemExit(
            "repro fleet status inspects a live coordinator; pass "
            "--server URL"
        )
    with _client(args) as client:
        status = client.fleet_status()
    workers = status["workers"]
    leases = status["leases"]
    print(f"fleet at {args.server}: {len(workers)} worker(s), "
          f"{len(leases)} active lease(s), queue depth {status['queue']} "
          f"(lease_ttl {status['lease_ttl']}s, "
          f"heartbeat_ttl {status['heartbeat_ttl']}s)")
    for row in workers:
        load = row.get("load") or {}
        labels = ",".join(f"{k}={v}" for k, v in
                          sorted(row.get("labels", {}).items()))
        print(f"  {row['worker']} {row['status']:<5} {row['url']} "
              f"capacity={row['capacity']} "
              f"load={load.get('chunks', '?')} chunk(s)"
              + (f" [{labels}]" if labels else ""))
    for lease in leases:
        print(f"  lease {lease['job']}#{lease['chunk']} -> "
              f"{lease['worker']} (deadline {lease['deadline']:.0f})")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import format_table, table2_rows, table3_rows, table4_rows

    if args.number == 2:
        headers, rows = table2_rows()
        title = "Table 2: dataset statistics"
    elif args.number == 3:
        headers, rows = table3_rows(args.dataset)
        title = f"Table 3: bargaining cost ({args.dataset}, RF)"
    else:
        headers, rows = table4_rows(args.dataset, args.model)
        title = f"Table 4: imperfect vs perfect ({args.dataset}, {args.model})"
    print(format_table(headers, rows, title=title))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import (
        ascii_chart,
        figure1_series,
        figure23_series,
        figure4_series,
        write_csv,
    )

    if args.number == 1:
        series = figure1_series()
        print(ascii_chart({"payment": series["payment"]},
                          title="Figure 1a: payment vs dG", x_label="dG"))
        print(ascii_chart({"net profit": series["net_profit"]},
                          title="Figure 1b: net profit vs dG", x_label="dG"))
        if args.csv_dir:
            write_csv(os.path.join(args.csv_dir, "fig1.csv"),
                      ["delta_g", "payment", "net_profit"],
                      [series["delta_g"], series["payment"], series["net_profit"]])
        return 0
    if args.number in (2, 3):
        model = "random_forest" if args.number == 2 else "mlp"
        fig = figure23_series(args.dataset, model)
        for field in ("net_profit", "payment", "delta_g"):
            series = {
                label: variant["curves"][field]["mean"]
                for label, variant in fig["variants"].items()
            }
            print(ascii_chart(
                series,
                title=f"Figure {args.number} ({args.dataset}, {model}): {field}",
            ))
        return 0
    fig = figure4_series(args.dataset, "random_forest")
    print(ascii_chart(
        {"Task Party": fig["task_mse"], "Data Party": fig["data_mse"]},
        title=f"Figure 4 ({args.dataset}, RF): estimator MSE",
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw[:1] == ["lint"]:
        # Hand everything after `lint` to the lint driver verbatim.
        # argparse's REMAINDER refuses option-like first tokens
        # (`repro lint --select ...`), so the passthrough cannot go
        # through the main parser.
        from repro.analysis import main as lint_main

        return lint_main(raw[1:])
    args = build_parser().parse_args(argv)
    if args.command == "bargain":
        with _tracing(args, "cli:bargain"):
            return _cmd_bargain(args)
    if args.command == "simulate":
        with _tracing(args, "cli:simulate"):
            return _cmd_simulate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "jobs":
        with _tracing(args, f"cli:jobs-{args.jobs_command}"):
            return _cmd_jobs(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "obs":
        try:
            return _cmd_obs(args)
        except BrokenPipeError:
            return 0  # scrape piped into head/grep closed early
    if args.command == "lint":
        from repro.analysis import main as lint_main

        return lint_main(args.lint_args)
    if args.command == "table":
        return _cmd_table(args)
    return _cmd_figure(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
