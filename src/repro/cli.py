"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``bargain``
    Play bargaining games on one of the paper's markets and print the
    outcome summary (the quickstart example, parameterised).
``simulate``
    Run a population of heterogeneous bargaining sessions through the
    :class:`repro.simulate.SessionPool` scheduler and print the
    aggregate report (acceptance rate, rounds, payment/net-profit
    histograms, throughput).
``table``
    Regenerate one of the paper's tables (2, 3 or 4).
``figure``
    Regenerate one of the paper's figures (1, 2, 3 or 4) as an ASCII
    chart (optionally dumping the CSV series).

Examples
--------
::

    python -m repro bargain --dataset titanic --runs 5
    python -m repro bargain --dataset credit --task increase_price --jobs 4
    python -m repro simulate --sessions 10000 --preset titanic
    python -m repro simulate --sessions 2000 --dataset credit --jobs 4
    python -m repro simulate --sessions 1000 --mix "strategic:strategic=0.8,increase_price:strategic=0.2"
    python -m repro table 3 --dataset adult
    python -m repro figure 2 --dataset titanic --csv-dir results/
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["build_parser", "main"]


def _add_oracle_options(parser: argparse.ArgumentParser) -> None:
    """Oracle-factory knobs shared by commands that build real oracles."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for pre-bargaining VFL courses "
                             "(0 = all cores; results are identical)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="gain-cache directory (default: "
                             "$REPRO_ORACLE_CACHE or ~/.cache/repro/oracle)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent gain cache")


def _oracle_cache(args: argparse.Namespace):
    """The GainCache implied by --cache-dir/--no-cache (None if disabled)."""
    if args.no_cache:
        return None
    from repro.oracle_factory import GainCache, default_cache_dir

    return GainCache(args.cache_dir or default_cache_dir())


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bargaining-based VFL feature market (Cui et al., ICDE 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bargain = sub.add_parser("bargain", help="play bargaining games on a market")
    bargain.add_argument("--dataset", default="titanic",
                         choices=("titanic", "credit", "adult"))
    bargain.add_argument("--model", default="random_forest",
                         choices=("random_forest", "mlp"))
    bargain.add_argument("--task", default="strategic",
                         choices=("strategic", "increase_price"))
    bargain.add_argument("--data", default="strategic",
                         choices=("strategic", "random_bundle"))
    bargain.add_argument("--information", default="perfect",
                         choices=("perfect", "imperfect"))
    bargain.add_argument("--runs", type=int, default=1)
    bargain.add_argument("--seed", type=int, default=0)
    _add_oracle_options(bargain)

    simulate = sub.add_parser(
        "simulate", help="run a population of concurrent bargaining sessions"
    )
    simulate.add_argument("--sessions", type=int, default=1000,
                          help="population size (default 1000)")
    simulate.add_argument("--preset", default=None,
                          choices=("synthetic", "titanic", "credit", "adult"),
                          help="calibration anchor for the population "
                               "(default: the --dataset name, else synthetic)")
    simulate.add_argument("--dataset", default=None,
                          choices=("titanic", "credit", "adult"),
                          help="anchor the catalogue on a real pre-bargaining "
                               "oracle: the factory runs one VFL course per "
                               "bundle on this dataset")
    simulate.add_argument("--base-model", default="random_forest",
                          choices=("random_forest", "mlp"),
                          help="base model for the --dataset oracle courses")
    simulate.add_argument("--seed", type=int, default=0)
    _add_oracle_options(simulate)
    simulate.add_argument("--batch-size", type=int, default=1024,
                          help="scheduler batch width (outcomes are invariant)")
    simulate.add_argument("--mix", default=None, metavar="PAIRS",
                          help="strategy mix, e.g. "
                               "'strategic:strategic=0.8,increase_price:strategic=0.2'")
    simulate.add_argument("--cost", default=None, metavar="COSTS",
                          help="bargaining-cost mix, e.g. 'none=0.7,linear:0.05=0.3'")
    simulate.add_argument("--bins", type=int, default=16,
                          help="histogram bins in the report")
    simulate.add_argument("--json", default=None, metavar="PATH",
                          help="also dump the report as JSON here")
    simulate.add_argument("--expect-digest", default=None, metavar="HEX",
                          help="fail unless the report digest matches (CI guard)")

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(2, 3, 4))
    table.add_argument("--dataset", default="titanic",
                       choices=("titanic", "credit", "adult"))
    table.add_argument("--model", default="random_forest",
                       choices=("random_forest", "mlp"))

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(1, 2, 3, 4))
    figure.add_argument("--dataset", default="titanic",
                        choices=("titanic", "credit", "adult"))
    figure.add_argument("--csv-dir", default=None,
                        help="also write the series as CSV files here")
    return parser


def _cmd_bargain(args: argparse.Namespace) -> int:
    from repro.experiments import get_market, market_is_cached

    fresh_build = not market_is_cached(args.dataset, args.model, seed=args.seed)
    market = get_market(
        args.dataset,
        args.model,
        seed=args.seed,
        jobs=args.jobs,
        cache=_oracle_cache(args),
    )
    outcomes = market.bargain_many(
        args.runs,
        base_seed=args.seed,
        task=args.task,
        data=args.data,
        information=args.information,
    )
    accepted = [o for o in outcomes if o.accepted]
    # Only a build that happened in this call has a report describing it;
    # a market reused from the process cache would misreport.
    report = getattr(market.oracle, "build_report", None)
    if fresh_build and report is not None:
        print(report.summary())
    print(f"market: {market.name} | catalogue {len(market.oracle)} bundles | "
          f"target dG* = {market.config.target_gain:.4f}")
    for i, o in enumerate(outcomes):
        line = (f"run {i}: {o.status:<10} rounds={o.n_rounds:<4}")
        if o.accepted:
            line += (f" dG={o.delta_g:.4f} payment={o.payment:.3f} "
                     f"net={o.net_profit:.2f} quote={o.quote}")
        print(line)
    if accepted:
        print(f"summary: {len(accepted)}/{len(outcomes)} accepted | "
              f"mean net profit {np.mean([o.net_profit for o in accepted]):.2f} | "
              f"mean payment {np.mean([o.payment for o in accepted]):.3f}")
    return 0


def _float(text: str, context: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise SystemExit(f"bad {context}: {text!r} is not a number") from None


def _parse_mix(text: str) -> tuple[tuple[str, str, float], ...]:
    """``'strategic:strategic=0.8,...'`` -> strategy_mix triples."""
    entries = []
    for part in text.split(","):
        pair, _, weight = part.strip().partition("=")
        task, _, data = pair.partition(":")
        if not (task and data):
            raise SystemExit(f"bad --mix entry {part!r}; expected task:data=weight")
        entries.append((task.strip(), data.strip(),
                        _float(weight, f"--mix weight in {part!r}") if weight
                        else 1.0))
    return tuple(entries)


def _parse_cost(text: str) -> tuple[tuple[str, float, float], ...]:
    """``'none=0.7,linear:0.05=0.3'`` -> cost_mix triples."""
    entries = []
    for part in text.split(","):
        spec, _, weight = part.strip().partition("=")
        kind, _, a = spec.partition(":")
        kind = kind.strip()
        if kind != "none" and not a:
            # Defaulting a missing parameter would silently flip the
            # sessions into cost-aware (Eq. 6/7) acceptance mode.
            raise SystemExit(
                f"bad --cost entry {part!r}: {kind!r} needs a parameter "
                f"(expected {kind}:a=weight)"
            )
        if kind == "none" and a:
            # 'none:0.7' is the natural typo for 'none=0.7' — storing
            # 0.7 as an ignored parameter would silently skew the mix.
            raise SystemExit(
                f"bad --cost entry {part!r}: 'none' takes no parameter "
                f"(expected none=weight)"
            )
        entries.append((kind,
                        _float(a, f"--cost parameter in {part!r}") if a else 0.0,
                        _float(weight, f"--cost weight in {part!r}") if weight
                        else 1.0))
    return tuple(entries)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from dataclasses import asdict

    from repro.simulate import (
        PopulationSpec,
        SessionPool,
        build_report,
        sample_population,
    )

    for name, value in (("--sessions", args.sessions),
                        ("--batch-size", args.batch_size),
                        ("--bins", args.bins)):
        if value < 1:
            raise SystemExit(f"{name} must be >= 1, got {value}")
    overrides: dict = {"preset": args.preset or args.dataset or "synthetic"}
    if args.mix:
        overrides["strategy_mix"] = _parse_mix(args.mix)
    if args.cost:
        overrides["cost_mix"] = _parse_cost(args.cost)
    try:
        spec = PopulationSpec(**overrides)
    except ValueError as exc:  # unknown strategy/cost kind, bad weight, ...
        raise SystemExit(f"invalid population spec: {exc}") from None
    if not args.dataset:
        # These knobs only affect the pre-bargaining oracle build;
        # silently ignoring them would let users believe they took
        # effect on the synthetic-catalogue path.
        ignored = []
        if args.jobs != 1:
            ignored.append("--jobs")
        if args.cache_dir:
            ignored.append("--cache-dir")
        if args.no_cache:
            ignored.append("--no-cache")
        if args.base_model != "random_forest":
            ignored.append("--base-model")
        if ignored:
            raise SystemExit(
                f"{', '.join(ignored)} only apply with --dataset "
                f"(no oracle is built for synthetic catalogues)"
            )
    oracle = None
    if args.dataset:
        # A real pre-bargaining oracle: the factory runs (or replays
        # from cache) one VFL course per catalogued bundle.
        from repro.experiments import get_market, market_is_cached

        fresh_build = not market_is_cached(
            args.dataset, args.base_model, seed=args.seed
        )
        market = get_market(
            args.dataset,
            args.base_model,
            seed=args.seed,
            jobs=args.jobs,
            cache=_oracle_cache(args),
        )
        oracle = market.oracle
        report = getattr(oracle, "build_report", None)
        if fresh_build and report is not None:
            print(report.summary())
    population = sample_population(
        spec, args.sessions, seed=args.seed, oracle=oracle
    )
    result = SessionPool(population, batch_size=args.batch_size).run()
    report = build_report(population, result, n_bins=args.bins)
    print(report.to_text())
    if args.json:
        import json
        import math
        import os

        def _jsonable(value):
            # NaN/inf are not valid JSON tokens; strict parsers (jq,
            # JSON.parse) reject them, so export them as null.
            if isinstance(value, float) and not math.isfinite(value):
                return None
            if isinstance(value, dict):
                return {k: _jsonable(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [_jsonable(v) for v in value]
            return value

        payload = _jsonable(asdict(report))
        payload["digest"] = report.digest()
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, allow_nan=False)
        print(f"report written to {args.json}")
    if args.expect_digest and report.digest() != args.expect_digest:
        print(f"digest mismatch: got {report.digest()}, "
              f"expected {args.expect_digest}")
        return 1
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import format_table, table2_rows, table3_rows, table4_rows

    if args.number == 2:
        headers, rows = table2_rows()
        title = "Table 2: dataset statistics"
    elif args.number == 3:
        headers, rows = table3_rows(args.dataset)
        title = f"Table 3: bargaining cost ({args.dataset}, RF)"
    else:
        headers, rows = table4_rows(args.dataset, args.model)
        title = f"Table 4: imperfect vs perfect ({args.dataset}, {args.model})"
    print(format_table(headers, rows, title=title))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import (
        ascii_chart,
        figure1_series,
        figure23_series,
        figure4_series,
        write_csv,
    )

    if args.number == 1:
        series = figure1_series()
        print(ascii_chart({"payment": series["payment"]},
                          title="Figure 1a: payment vs dG", x_label="dG"))
        print(ascii_chart({"net profit": series["net_profit"]},
                          title="Figure 1b: net profit vs dG", x_label="dG"))
        if args.csv_dir:
            write_csv(os.path.join(args.csv_dir, "fig1.csv"),
                      ["delta_g", "payment", "net_profit"],
                      [series["delta_g"], series["payment"], series["net_profit"]])
        return 0
    if args.number in (2, 3):
        model = "random_forest" if args.number == 2 else "mlp"
        fig = figure23_series(args.dataset, model)
        for field in ("net_profit", "payment", "delta_g"):
            series = {
                label: variant["curves"][field]["mean"]
                for label, variant in fig["variants"].items()
            }
            print(ascii_chart(
                series,
                title=f"Figure {args.number} ({args.dataset}, {model}): {field}",
            ))
        return 0
    fig = figure4_series(args.dataset, "random_forest")
    print(ascii_chart(
        {"Task Party": fig["task_mse"], "Data Party": fig["data_mse"]},
        title=f"Figure 4 ({args.dataset}, RF): estimator MSE",
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "bargain":
        return _cmd_bargain(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "table":
        return _cmd_table(args)
    return _cmd_figure(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
