"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``bargain``
    Play bargaining games on one of the paper's markets and print the
    outcome summary (the quickstart example, parameterised).
``table``
    Regenerate one of the paper's tables (2, 3 or 4).
``figure``
    Regenerate one of the paper's figures (1, 2, 3 or 4) as an ASCII
    chart (optionally dumping the CSV series).

Examples
--------
::

    python -m repro bargain --dataset titanic --runs 5
    python -m repro bargain --dataset credit --task increase_price
    python -m repro table 3 --dataset adult
    python -m repro figure 2 --dataset titanic --csv-dir results/
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bargaining-based VFL feature market (Cui et al., ICDE 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bargain = sub.add_parser("bargain", help="play bargaining games on a market")
    bargain.add_argument("--dataset", default="titanic",
                         choices=("titanic", "credit", "adult"))
    bargain.add_argument("--model", default="random_forest",
                         choices=("random_forest", "mlp"))
    bargain.add_argument("--task", default="strategic",
                         choices=("strategic", "increase_price"))
    bargain.add_argument("--data", default="strategic",
                         choices=("strategic", "random_bundle"))
    bargain.add_argument("--information", default="perfect",
                         choices=("perfect", "imperfect"))
    bargain.add_argument("--runs", type=int, default=1)
    bargain.add_argument("--seed", type=int, default=0)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int, choices=(2, 3, 4))
    table.add_argument("--dataset", default="titanic",
                       choices=("titanic", "credit", "adult"))
    table.add_argument("--model", default="random_forest",
                       choices=("random_forest", "mlp"))

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int, choices=(1, 2, 3, 4))
    figure.add_argument("--dataset", default="titanic",
                        choices=("titanic", "credit", "adult"))
    figure.add_argument("--csv-dir", default=None,
                        help="also write the series as CSV files here")
    return parser


def _cmd_bargain(args: argparse.Namespace) -> int:
    from repro.experiments import get_market

    market = get_market(args.dataset, args.model, seed=args.seed)
    outcomes = market.bargain_many(
        args.runs,
        base_seed=args.seed,
        task=args.task,
        data=args.data,
        information=args.information,
    )
    accepted = [o for o in outcomes if o.accepted]
    print(f"market: {market.name} | catalogue {len(market.oracle)} bundles | "
          f"target dG* = {market.config.target_gain:.4f}")
    for i, o in enumerate(outcomes):
        line = (f"run {i}: {o.status:<10} rounds={o.n_rounds:<4}")
        if o.accepted:
            line += (f" dG={o.delta_g:.4f} payment={o.payment:.3f} "
                     f"net={o.net_profit:.2f} quote={o.quote}")
        print(line)
    if accepted:
        print(f"summary: {len(accepted)}/{len(outcomes)} accepted | "
              f"mean net profit {np.mean([o.net_profit for o in accepted]):.2f} | "
              f"mean payment {np.mean([o.payment for o in accepted]):.3f}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import format_table, table2_rows, table3_rows, table4_rows

    if args.number == 2:
        headers, rows = table2_rows()
        title = "Table 2: dataset statistics"
    elif args.number == 3:
        headers, rows = table3_rows(args.dataset)
        title = f"Table 3: bargaining cost ({args.dataset}, RF)"
    else:
        headers, rows = table4_rows(args.dataset, args.model)
        title = f"Table 4: imperfect vs perfect ({args.dataset}, {args.model})"
    print(format_table(headers, rows, title=title))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import (
        ascii_chart,
        figure1_series,
        figure23_series,
        figure4_series,
        write_csv,
    )

    if args.number == 1:
        series = figure1_series()
        print(ascii_chart({"payment": series["payment"]},
                          title="Figure 1a: payment vs dG", x_label="dG"))
        print(ascii_chart({"net profit": series["net_profit"]},
                          title="Figure 1b: net profit vs dG", x_label="dG"))
        if args.csv_dir:
            write_csv(os.path.join(args.csv_dir, "fig1.csv"),
                      ["delta_g", "payment", "net_profit"],
                      [series["delta_g"], series["payment"], series["net_profit"]])
        return 0
    if args.number in (2, 3):
        model = "random_forest" if args.number == 2 else "mlp"
        fig = figure23_series(args.dataset, model)
        for field in ("net_profit", "payment", "delta_g"):
            series = {
                label: variant["curves"][field]["mean"]
                for label, variant in fig["variants"].items()
            }
            print(ascii_chart(
                series,
                title=f"Figure {args.number} ({args.dataset}, {model}): {field}",
            ))
        return 0
    fig = figure4_series(args.dataset, "random_forest")
    print(ascii_chart(
        {"Task Party": fig["task_mse"], "Data Party": fig["data_mse"]},
        title=f"Figure 4 ({args.dataset}, RF): estimator MSE",
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "bargain":
        return _cmd_bargain(args)
    if args.command == "table":
        return _cmd_table(args)
    return _cmd_figure(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
