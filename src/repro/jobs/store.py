"""The durable job store: submitted specs, chunk progress, results.

One SQLite file records every job the platform has accepted: the
canonical spec, the immutable chunk layout, each chunk's result as it
lands, and the merged report once all chunks are in.  Everything is
written through at the moment it happens, so a ``kill -9`` mid-sweep
loses at most the chunks that were still in flight — ``resume`` re-runs
exactly the pending ones and merges a bit-identical report.

Job ids are **content-addressed** (the shared
:mod:`repro.utils.canonical` digest over ``kind + spec + chunk
layout``), so resubmitting the same job is idempotent: the second
submit finds the first's record — finished chunks and all — instead of
starting a duplicate sweep.

Chunk results may carry NaN (failed sessions' ``delta_g``); they are
stored via :func:`repro.utils.canonical.stable_json` — sorted keys
plus Python's JSON NaN extension, which :func:`json.loads` round-trips
exactly.  Wire-facing callers sanitise with
:func:`repro.utils.canonical.json_safe`.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.utils.canonical import canonical_json, content_digest, stable_json
from repro.utils.validation import require

__all__ = ["JobRecord", "JobStore", "default_store_path"]

#: Job lifecycle: ``submitted`` (chunks pending, nothing running),
#: ``running`` (an executor owns it), ``interrupted`` (an executor
#: stopped early — drain, crash, or operator stop), ``done``,
#: ``failed``.  ``resume`` accepts anything that is not ``done``.
_STATUSES = ("submitted", "running", "interrupted", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id     TEXT PRIMARY KEY,
    kind       TEXT NOT NULL,
    spec       TEXT NOT NULL,
    chunks     TEXT NOT NULL,
    status     TEXT NOT NULL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    report     TEXT,
    digest     TEXT,
    error      TEXT
);
CREATE TABLE IF NOT EXISTS chunks (
    job_id      TEXT NOT NULL,
    chunk_index INTEGER NOT NULL,
    status      TEXT NOT NULL,
    result      TEXT,
    elapsed     REAL,
    updated_at  REAL NOT NULL,
    PRIMARY KEY (job_id, chunk_index)
);
CREATE TABLE IF NOT EXISTS workers (
    worker_id      TEXT PRIMARY KEY,
    url            TEXT NOT NULL,
    capacity       INTEGER NOT NULL,
    labels         TEXT NOT NULL,
    status         TEXT NOT NULL,
    registered_at  REAL NOT NULL,
    last_heartbeat REAL NOT NULL,
    load           TEXT
);
CREATE TABLE IF NOT EXISTS leases (
    job_id      TEXT NOT NULL,
    chunk_index INTEGER NOT NULL,
    worker_id   TEXT NOT NULL,
    granted_at  REAL NOT NULL,
    deadline    REAL NOT NULL,
    status      TEXT NOT NULL,
    PRIMARY KEY (job_id, chunk_index)
);
"""

#: Worker lifecycle as the coordinator sees it: ``live`` (heartbeat
#: within the TTL), ``lost`` (heartbeat watermark went stale — its
#: leases are re-queued), ``left`` (deregistered gracefully).
_WORKER_STATUSES = ("live", "lost", "left")

#: Lease lifecycle: ``active`` (a worker owns the chunk until the
#: deadline), ``done`` (result recorded), ``expired`` (deadline passed
#: or holder lost; the chunk went back to the queue).
_LEASE_STATUSES = ("active", "done", "expired")


def default_store_path() -> str:
    """``$REPRO_JOB_STORE`` or ``~/.cache/repro/jobs.sqlite3``."""
    env = os.environ.get("REPRO_JOB_STORE")
    if env:
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "jobs.sqlite3"
    )


def _wall_now() -> float:
    """The ``created_at``/``updated_at`` row clock.

    These columns are operational metadata — when a row last moved, for
    ``jobs list`` and staleness display.  They never reach a job id,
    chunk result, report or digest, so the wall clock is the right
    clock here (a monotonic clock would be meaningless across
    processes).
    """
    return time.time()  # lint: allow[DET002] row timestamps are operational metadata, never digested


@dataclass(frozen=True)
class JobRecord:
    """One job's durable state (a row of the ``jobs`` table, decoded)."""

    job_id: str
    kind: str
    spec: dict
    chunks: tuple[tuple[int, int], ...]
    status: str
    created_at: float
    updated_at: float
    report: dict | None
    digest: str | None
    error: str | None
    done_chunks: int

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def finished(self) -> bool:
        return self.status == "done"

    def progress(self) -> dict:
        """Wire-facing progress summary."""
        payload = {
            "job": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "chunks": self.n_chunks,
            "chunks_done": self.done_chunks,
        }
        if self.digest is not None:
            payload["digest"] = self.digest
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobStore:
    """Durable, content-addressed store of jobs and chunk results.

    Every method opens its own short-lived connection (SQLite serialises
    writers itself, within and across processes), so one store instance
    is safe to share between the server's request threads and a job's
    executor thread — and a second process pointed at the same file sees
    the same jobs, which is what ``repro jobs resume`` relies on after a
    crash.
    """

    def __init__(self, path: str):
        require(bool(path), "JobStore needs a file path (durability is the point)")
        self.path = str(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)

    @contextmanager
    def _connect(self):
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            yield conn
            conn.commit()
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @staticmethod
    def job_id_for(
        kind: str, spec: dict, chunks: list[tuple[int, int]]
    ) -> str:
        """The content-addressed id of a job (kind + spec + layout)."""
        return "j" + content_digest(
            {"kind": kind, "spec": spec, "chunks": [list(c) for c in chunks]}
        )

    def submit(
        self, kind: str, spec: dict, chunks: list[tuple[int, int]]
    ) -> JobRecord:
        """Record a job (idempotent: same content → same record)."""
        require(bool(chunks), "a job needs at least one chunk")
        job_id = self.job_id_for(kind, spec, chunks)
        now = _wall_now()
        with self._connect() as conn:
            conn.execute(
                "INSERT OR IGNORE INTO jobs "
                "(job_id, kind, spec, chunks, status, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, 'submitted', ?, ?)",
                (
                    job_id,
                    kind,
                    canonical_json(spec),
                    canonical_json([list(c) for c in chunks]),
                    now,
                    now,
                ),
            )
            conn.executemany(
                "INSERT OR IGNORE INTO chunks "
                "(job_id, chunk_index, status, updated_at) "
                "VALUES (?, ?, 'pending', ?)",
                [(job_id, index, now) for index in range(len(chunks))],
            )
        return self.get(job_id)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    _RECORD_QUERY = (
        "SELECT j.job_id, j.kind, j.spec, j.chunks, j.status, j.created_at, "
        "j.updated_at, j.report, j.digest, j.error, "
        "(SELECT COUNT(*) FROM chunks c "
        " WHERE c.job_id = j.job_id AND c.status = 'done') "
        "FROM jobs j"
    )

    @staticmethod
    def _record(row: tuple) -> JobRecord:
        return JobRecord(
            job_id=row[0],
            kind=row[1],
            spec=json.loads(row[2]),
            chunks=tuple(tuple(c) for c in json.loads(row[3])),
            status=row[4],
            created_at=row[5],
            updated_at=row[6],
            report=json.loads(row[7]) if row[7] is not None else None,
            digest=row[8],
            error=row[9],
            done_chunks=int(row[10]),
        )

    def get(self, job_id: str) -> JobRecord:
        """The job's current record; ``KeyError`` if unknown."""
        with self._connect() as conn:
            row = conn.execute(
                f"{self._RECORD_QUERY} WHERE j.job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"unknown job {job_id!r}")
        return self._record(row)

    def jobs(self) -> list[JobRecord]:
        """Every recorded job, newest first (one query, one connection)."""
        with self._connect() as conn:
            rows = conn.execute(
                f"{self._RECORD_QUERY} ORDER BY j.created_at DESC"
            ).fetchall()
        return [self._record(row) for row in rows]

    def list_jobs(
        self, *, limit: int | None = None, after: str | None = None
    ) -> list[JobRecord]:
        """One page of jobs in deterministic ascending job-id order.

        ``after`` is an exclusive cursor (the last job id of the
        previous page), so listing stays O(page) however large the
        store grows: the query walks the primary-key index, never the
        whole table.  Job ids are content-addressed, which makes the
        order stable across processes and restarts.
        """
        require(limit is None or limit >= 1, "limit must be >= 1")
        clauses, args = [], []
        if after is not None:
            clauses.append("WHERE j.job_id > ?")
            args.append(str(after))
        clauses.append("ORDER BY j.job_id ASC")
        if limit is not None:
            clauses.append("LIMIT ?")
            args.append(int(limit))
        with self._connect() as conn:
            rows = conn.execute(
                " ".join([self._RECORD_QUERY, *clauses]), args
            ).fetchall()
        return [self._record(row) for row in rows]

    def pending_chunks(self, job_id: str) -> list[tuple[int, int, int]]:
        """``(chunk_index, start, stop)`` of every not-yet-done chunk."""
        record = self.get(job_id)
        with self._connect() as conn:
            pending = {
                row[0]
                for row in conn.execute(
                    "SELECT chunk_index FROM chunks "
                    "WHERE job_id = ? AND status != 'done'",
                    (job_id,),
                )
            }
        return [
            (index, start, stop)
            for index, (start, stop) in enumerate(record.chunks)
            if index in pending
        ]

    def chunk_results(self, job_id: str) -> dict[int, dict]:
        """Decoded results of every finished chunk."""
        self.get(job_id)  # raise KeyError for unknown jobs
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT chunk_index, result FROM chunks "
                "WHERE job_id = ? AND status = 'done'",
                (job_id,),
            ).fetchall()
        return {int(index): json.loads(result) for index, result in rows}

    # ------------------------------------------------------------------
    # Writes (each durable the moment it returns)
    # ------------------------------------------------------------------
    def record_chunk(
        self, job_id: str, chunk_index: int, result: dict, *, elapsed: float = 0.0
    ) -> None:
        """Persist one finished chunk's result."""
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE chunks SET status = 'done', result = ?, elapsed = ?, "
                "updated_at = ? WHERE job_id = ? AND chunk_index = ?",
                (stable_json(result), float(elapsed), _wall_now(),
                 job_id, int(chunk_index)),
            ).rowcount
            require(
                updated == 1,
                f"job {job_id!r} has no chunk {chunk_index!r}",
            )

    def set_status(self, job_id: str, status: str, *, error: str | None = None) -> None:
        """Move a job through its lifecycle."""
        require(status in _STATUSES, f"status must be one of {_STATUSES}")
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE jobs SET status = ?, error = ?, updated_at = ? "
                "WHERE job_id = ?",
                (status, error, _wall_now(), job_id),
            ).rowcount
            require(updated == 1, f"unknown job {job_id!r}")

    def finish(self, job_id: str, report: dict, digest: str) -> None:
        """Record the merged report and mark the job done."""
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE jobs SET status = 'done', report = ?, digest = ?, "
                "error = NULL, updated_at = ? WHERE job_id = ?",
                (stable_json(report), digest, _wall_now(), job_id),
            ).rowcount
            require(updated == 1, f"unknown job {job_id!r}")

    # ------------------------------------------------------------------
    # Fleet state: workers, leases, heartbeat watermarks
    # ------------------------------------------------------------------
    # The elastic fleet (src/repro/fleet/) keeps its state in the same
    # durable file as the jobs it serves, so a kill -9'd coordinator
    # restarts with its workers and in-flight leases intact and
    # re-adopts live workers from their next heartbeat.  Timestamps
    # here are operational metadata exactly like the row clocks above:
    # they bound lease/heartbeat lifetimes and never reach a digest.

    def register_worker(
        self, worker_id: str, url: str, capacity: int,
        labels: dict | None = None,
    ) -> dict:
        """Upsert a worker row (idempotent; re-registration re-adopts).

        Returns the stored row; ``adopted`` is True when the row already
        existed — a worker re-announcing itself after a restart on
        either side keeps its identity and its lease history.
        """
        require(capacity >= 1, "worker capacity must be >= 1")
        now = _wall_now()
        with self._connect() as conn:
            existing = conn.execute(
                "SELECT registered_at FROM workers WHERE worker_id = ?",
                (worker_id,),
            ).fetchone()
            conn.execute(
                "INSERT INTO workers (worker_id, url, capacity, labels, "
                "status, registered_at, last_heartbeat, load) "
                "VALUES (?, ?, ?, ?, 'live', ?, ?, NULL) "
                "ON CONFLICT(worker_id) DO UPDATE SET url = excluded.url, "
                "capacity = excluded.capacity, labels = excluded.labels, "
                "status = 'live', last_heartbeat = excluded.last_heartbeat",
                (worker_id, url, int(capacity),
                 canonical_json(labels or {}), now, now),
            )
        row = self.worker(worker_id)
        row["adopted"] = existing is not None
        return row

    def worker(self, worker_id: str) -> dict:
        """One worker's stored row; ``KeyError`` if unknown."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT worker_id, url, capacity, labels, status, "
                "registered_at, last_heartbeat, load FROM workers "
                "WHERE worker_id = ?",
                (worker_id,),
            ).fetchone()
        if row is None:
            raise KeyError(f"unknown worker {worker_id!r}")
        return self._worker_row(row)

    @staticmethod
    def _worker_row(row: tuple) -> dict:
        return {
            "worker": row[0],
            "url": row[1],
            "capacity": int(row[2]),
            "labels": json.loads(row[3]),
            "status": row[4],
            "registered_at": float(row[5]),
            "last_heartbeat": float(row[6]),
            "load": json.loads(row[7]) if row[7] is not None else None,
        }

    def workers(self) -> list[dict]:
        """Every registered worker, in deterministic worker-id order."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT worker_id, url, capacity, labels, status, "
                "registered_at, last_heartbeat, load FROM workers "
                "ORDER BY worker_id ASC"
            ).fetchall()
        return [self._worker_row(row) for row in rows]

    def heartbeat_worker(self, worker_id: str, load: dict | None) -> dict:
        """Record a heartbeat; ``KeyError`` tells the agent to re-register.

        Returns ``{lag, adopted}``: ``lag`` is the wall time since the
        previous watermark and ``adopted`` is True when this heartbeat
        revived a worker the coordinator had not seen live — the
        crash-adoption path after a coordinator restart.
        """
        now = _wall_now()
        with self._connect() as conn:
            row = conn.execute(
                "SELECT status, last_heartbeat FROM workers "
                "WHERE worker_id = ?",
                (worker_id,),
            ).fetchone()
            if row is None:
                raise KeyError(f"unknown worker {worker_id!r}")
            conn.execute(
                "UPDATE workers SET status = 'live', last_heartbeat = ?, "
                "load = ? WHERE worker_id = ?",
                (now, stable_json(load) if load is not None else None,
                 worker_id),
            )
        return {
            "lag": max(0.0, now - float(row[1])),
            "adopted": row[0] != "live",
        }

    def deregister_worker(self, worker_id: str) -> bool:
        """Mark a worker ``left`` and expire its active leases."""
        with self._connect() as conn:
            updated = conn.execute(
                "UPDATE workers SET status = 'left', last_heartbeat = ? "
                "WHERE worker_id = ? AND status != 'left'",
                (_wall_now(), worker_id),
            ).rowcount
            conn.execute(
                "UPDATE leases SET status = 'expired' "
                "WHERE worker_id = ? AND status = 'active'",
                (worker_id,),
            )
        return updated == 1

    def mark_lost_workers(self, heartbeat_ttl: float) -> list[str]:
        """Move live workers with stale heartbeats to ``lost``.

        A lost worker's active leases expire in the same transaction, so
        its chunks are immediately stealable.  Returns the worker ids
        that transitioned (a later heartbeat re-adopts them).
        """
        cutoff = _wall_now() - float(heartbeat_ttl)
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT worker_id FROM workers "
                "WHERE status = 'live' AND last_heartbeat < ? "
                "ORDER BY worker_id ASC",
                (cutoff,),
            ).fetchall()
            lost = [row[0] for row in rows]
            for worker_id in lost:
                conn.execute(
                    "UPDATE workers SET status = 'lost' WHERE worker_id = ?",
                    (worker_id,),
                )
                conn.execute(
                    "UPDATE leases SET status = 'expired' "
                    "WHERE worker_id = ? AND status = 'active'",
                    (worker_id,),
                )
        return lost

    def grant_lease(self, worker_id: str, lease_ttl: float) -> dict | None:
        """Atomically lease the oldest unleased pending chunk.

        One transaction: pick the first not-done chunk (deterministic
        ``job_id, chunk_index`` order) of any submitted/running job that
        carries no active lease, and write the lease row.  Returns the
        work order — ``{job, chunk, start, stop, kind, spec, deadline,
        stolen_from}`` — or ``None`` when the queue is empty.
        ``stolen_from`` names the previous (expired) holder when this
        grant re-queues another worker's chunk: a steal.
        """
        self.worker(worker_id)  # KeyError for unknown workers
        now = _wall_now()
        with self._connect() as conn:
            row = conn.execute(
                "SELECT c.job_id, c.chunk_index, j.kind, j.spec, j.chunks "
                "FROM chunks c JOIN jobs j ON j.job_id = c.job_id "
                "WHERE c.status != 'done' "
                "AND j.status IN ('submitted', 'running') "
                "AND NOT EXISTS (SELECT 1 FROM leases l "
                "  WHERE l.job_id = c.job_id "
                "  AND l.chunk_index = c.chunk_index "
                "  AND l.status = 'active') "
                "ORDER BY c.job_id ASC, c.chunk_index ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            job_id, chunk_index, kind, spec, chunks = row
            previous = conn.execute(
                "SELECT worker_id FROM leases "
                "WHERE job_id = ? AND chunk_index = ? AND status = 'expired'",
                (job_id, chunk_index),
            ).fetchone()
            deadline = now + float(lease_ttl)
            conn.execute(
                "INSERT INTO leases (job_id, chunk_index, worker_id, "
                "granted_at, deadline, status) VALUES (?, ?, ?, ?, ?, "
                "'active') ON CONFLICT(job_id, chunk_index) DO UPDATE SET "
                "worker_id = excluded.worker_id, "
                "granted_at = excluded.granted_at, "
                "deadline = excluded.deadline, status = 'active'",
                (job_id, int(chunk_index), worker_id, now, deadline),
            )
        start, stop = json.loads(chunks)[int(chunk_index)]
        stolen_from = previous[0] if (
            previous is not None and previous[0] != worker_id
        ) else None
        return {
            "job": job_id,
            "chunk": int(chunk_index),
            "start": int(start),
            "stop": int(stop),
            "kind": kind,
            "spec": json.loads(spec),
            "deadline": deadline,
            "stolen_from": stolen_from,
        }

    def complete_lease(
        self, worker_id: str, job_id: str, chunk_index: int,
        result: dict, *, elapsed: float = 0.0,
    ) -> bool:
        """Record a leased chunk's result; True if it was the first.

        Chunk payloads are pure functions of ``(spec, start, stop)``, so
        a duplicate completion — the original holder finishing after its
        lease was stolen — rewrites byte-identical bytes and is reported
        (not raised) for the steal metrics.
        """
        with self._connect() as conn:
            row = conn.execute(
                "SELECT status FROM chunks "
                "WHERE job_id = ? AND chunk_index = ?",
                (job_id, int(chunk_index)),
            ).fetchone()
            if row is None:
                raise KeyError(f"job {job_id!r} has no chunk {chunk_index!r}")
            first = row[0] != "done"
            conn.execute(
                "UPDATE chunks SET status = 'done', result = ?, elapsed = ?, "
                "updated_at = ? WHERE job_id = ? AND chunk_index = ?",
                (stable_json(result), float(elapsed), _wall_now(),
                 job_id, int(chunk_index)),
            )
            conn.execute(
                "UPDATE leases SET status = 'done', worker_id = ? "
                "WHERE job_id = ? AND chunk_index = ?",
                (worker_id, job_id, int(chunk_index)),
            )
        return first

    def release_lease(
        self, job_id: str, chunk_index: int, status: str = "expired"
    ) -> None:
        """Force a lease out of ``active`` (failure reports, drills)."""
        require(status in _LEASE_STATUSES,
                f"lease status must be one of {_LEASE_STATUSES}")
        with self._connect() as conn:
            conn.execute(
                "UPDATE leases SET status = ? "
                "WHERE job_id = ? AND chunk_index = ?",
                (status, job_id, int(chunk_index)),
            )

    def expire_leases(self) -> list[dict]:
        """Expire active leases past their deadline (one transaction).

        Each expired chunk goes straight back to the queue — the next
        ``grant_lease`` hands it to whichever worker asks first, which
        is the steal that makes a hung worker survivable.
        """
        now = _wall_now()
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT job_id, chunk_index, worker_id FROM leases "
                "WHERE status = 'active' AND deadline < ? "
                "ORDER BY job_id ASC, chunk_index ASC",
                (now,),
            ).fetchall()
            conn.execute(
                "UPDATE leases SET status = 'expired' "
                "WHERE status = 'active' AND deadline < ?",
                (now,),
            )
        return [
            {"job": row[0], "chunk": int(row[1]), "worker": row[2]}
            for row in rows
        ]

    def leases(self, *, active_only: bool = False) -> list[dict]:
        """Lease rows in deterministic order (fleet status display)."""
        clause = " WHERE status = 'active'" if active_only else ""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT job_id, chunk_index, worker_id, granted_at, "
                f"deadline, status FROM leases{clause} "
                "ORDER BY job_id ASC, chunk_index ASC"
            ).fetchall()
        return [
            {
                "job": row[0],
                "chunk": int(row[1]),
                "worker": row[2],
                "granted_at": float(row[3]),
                "deadline": float(row[4]),
                "status": row[5],
            }
            for row in rows
        ]

    def queue_depth(self) -> int:
        """Pending chunks of submitted/running jobs with no active lease."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT COUNT(*) FROM chunks c "
                "JOIN jobs j ON j.job_id = c.job_id "
                "WHERE c.status != 'done' "
                "AND j.status IN ('submitted', 'running') "
                "AND NOT EXISTS (SELECT 1 FROM leases l "
                "  WHERE l.job_id = c.job_id "
                "  AND l.chunk_index = c.chunk_index "
                "  AND l.status = 'active')"
            ).fetchone()
        return int(row[0])
