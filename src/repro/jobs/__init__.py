"""Distributed simulation jobs: durable store + sharded execution.

The execution layer that turns the PR 3 service stack into a
multi-process, crash-tolerant platform:

* :class:`~repro.jobs.store.JobStore` — a durable, content-addressed
  SQLite store of submitted jobs and their chunk-level progress.  A
  killed run resumes where it stopped: finished chunks are never
  re-executed.
* :class:`~repro.jobs.executor.ShardedExecutor` — partitions a job's
  sessions across ``ProcessPoolExecutor`` worker shards, each hosting
  its own market pool, and merges the per-shard records into a result
  that is **bit-identical** to the single-process
  :class:`~repro.simulate.pool.SessionPool` path (pinned by report
  digests, for any shard count, including after a kill + resume).
* :class:`~repro.jobs.remote.RemoteShardExecutor` — the multi-host
  twin: the same store, layout, and merge, with chunks shipped to
  ``repro serve`` worker processes over ``POST /v1/chunks`` (dead
  workers are dropped and their chunks re-queued; runs stay
  resumable and digest-identical).

Front doors: ``python -m repro jobs run|status|resume|list``
(``--workers URL,URL`` fans chunks across hosts) and the server's
``POST /v1/simulations`` / ``GET /v1/jobs/<id>`` routes.
"""

from repro.jobs.executor import (
    CHUNK_RUNNERS,
    ShardedExecutor,
    chunk_layout,
    merge_batch_chunks,
    merge_simulation_chunks,
    submit_batch,
    submit_simulation,
)
from repro.jobs.remote import RemoteShardExecutor
from repro.jobs.store import JobRecord, JobStore, default_store_path

__all__ = [
    "CHUNK_RUNNERS",
    "JobRecord",
    "JobStore",
    "RemoteShardExecutor",
    "ShardedExecutor",
    "chunk_layout",
    "default_store_path",
    "merge_batch_chunks",
    "merge_simulation_chunks",
    "submit_batch",
    "submit_simulation",
]
