"""Sharded job execution: one population, many worker processes.

The executor partitions a job's sessions into contiguous *chunks* and
fans the chunks across ``ProcessPoolExecutor`` worker shards.  Each
worker rebuilds the job's world from its canonical spec alone — its own
market pool, its own sampled population — and advances only its chunk's
sessions, which is sound because every session draws from a private
seeded RNG stream (see :meth:`repro.simulate.pool.SessionPool.run`).

The merge is therefore **bit-identical** to the single-process path for
any shard count and any kill/resume interleaving:

* per-session terminal records are placed back at their original
  indices (no ordering effects);
* additive counters (kernel/stepped sessions, oracle queries) sum;
* the memoised-oracle *hit* count is reconstructed exactly: the first
  query of each distinct bundle is a miss wherever it runs, so
  ``hits = total queries − |union of distinct bundles queried|`` —
  the same number one shared cache would have produced.

Chunk results are durably recorded in the :class:`~repro.jobs.store.JobStore`
as they land, so a crashed run resumes from its last finished chunk.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

import numpy as np

from repro import obs
from repro.jobs.store import JobRecord, JobStore
from repro.service.specs import BatchSpec, SimulationSpec
from repro.simulate.pool import session_record_arrays
from repro.utils.canonical import content_digest
from repro.utils.validation import require

__all__ = [
    "CHUNK_RUNNERS",
    "ShardedExecutor",
    "chunk_layout",
    "merge_batch_chunks",
    "merge_simulation_chunks",
    "submit_batch",
    "submit_simulation",
]

#: Chunk lifecycle telemetry: every transition a chunk makes through
#: the executor (queued at run start, running on dispatch, done on
#: durable record; failed is job-level) plus worker-reported chunk
#: runtimes.  Coordinator-side only — worker processes keep their own
#: registries, which the remote executor surfaces per worker.
_CHUNK_EVENTS = obs.REGISTRY.counter(
    "repro_job_chunk_events_total",
    "Job chunk lifecycle transitions, by job kind.",
    ("kind", "event"),
)
_CHUNK_SECONDS = obs.REGISTRY.histogram(
    "repro_job_chunk_seconds",
    "Worker-reported chunk execution time (monotonic, seconds).",
    ("kind",),
)

#: Fields of a simulation chunk payload that are per-session arrays —
#: derived from the shared layout so the wire format cannot drift from
#: the PoolResult it reassembles into.
_ARRAY_FIELDS = tuple(session_record_arrays(0))


def chunk_layout(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` spans covering ``range(n_items)``.

    Spans are balanced to within one item.  The layout is part of the
    job's content-addressed identity: resuming always re-uses the
    layout recorded at submit time, never the current CLI flags.
    """
    require(n_items >= 1, "n_items must be >= 1")
    require(n_chunks >= 1, "n_chunks must be >= 1")
    n_chunks = min(n_chunks, n_items)
    bounds = np.linspace(0, n_items, n_chunks + 1).astype(int)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_chunks)
        if bounds[i] < bounds[i + 1]
    ]


# ----------------------------------------------------------------------
# Submission
# ----------------------------------------------------------------------
def submit_simulation(
    store: JobStore, spec: SimulationSpec, *, chunks: int | None = None
) -> JobRecord:
    """Record a population-simulation job (idempotent per content)."""
    layout = chunk_layout(spec.sessions, chunks or _default_chunks(spec.sessions))
    return store.submit("simulation", spec.to_dict(), layout)


def submit_batch(
    store: JobStore, spec: BatchSpec, *, chunks: int | None = None
) -> JobRecord:
    """Record a repeated-session batch job (idempotent per content)."""
    layout = chunk_layout(spec.runs, chunks or _default_chunks(spec.runs))
    return store.submit("batch", spec.to_dict(), layout)


def _default_chunks(n_items: int) -> int:
    """Enough chunks that a kill mid-run loses little finished work."""
    return max(1, min(16, n_items))


# ----------------------------------------------------------------------
# Worker-side chunk execution (module-level: picklable by the pool)
# ----------------------------------------------------------------------
#: Last population built in this process, keyed by spec digest.  A
#: worker that executes several chunks of one job (and the parent,
#: which merges after sampling once) must not repeat the O(sessions)
#: vectorised sampling per chunk.  One entry bounds memory; sampling is
#: pure, and nothing downstream mutates the population.
_POPULATION_MEMO: tuple[str, object] | None = None


def _population_for(spec: SimulationSpec):
    """The job's population, rebuilt from its spec (worker or parent).

    Oracle-backed jobs resolve their market through the process-wide
    pool with the same experiment-scale-aware rule as
    :func:`repro.service.simulation.run_simulation`, so a worker that
    runs several chunks builds (or, with the persistent gain cache,
    replays) the oracle once — and shards digest-match the
    single-process path under every ``REPRO_*`` tier.
    """
    global _POPULATION_MEMO

    from repro.service.manager import shared_pool
    from repro.service.simulation import backing_market_spec
    from repro.simulate.population import sample_population

    digest = spec.digest()
    if _POPULATION_MEMO is not None and _POPULATION_MEMO[0] == digest:
        return _POPULATION_MEMO[1]
    oracle = None
    backing = backing_market_spec(spec)
    if backing is not None:
        oracle = shared_pool().get(backing).oracle
    population = sample_population(
        spec.population_spec(), spec.sessions, seed=spec.seed, oracle=oracle
    )
    _POPULATION_MEMO = (digest, population)
    return population


def run_simulation_chunk(spec_dict: dict, start: int, stop: int) -> dict:
    """Advance sessions ``[start, stop)`` of the job's population."""
    from repro.service.simulation import settlement_for
    from repro.simulate.pool import SessionPool

    spec = SimulationSpec.from_dict(spec_dict)
    population = _population_for(spec)
    # Secure shards rebuild the identical (seed, key_bits) keypair from
    # the spec alone, and settled payments are per-session pure, so the
    # merge below stays bit-identical to the single-process path.
    result = SessionPool(
        population, batch_size=spec.batch_size, settlement=settlement_for(spec)
    ).run(indices=np.arange(start, stop))
    payload = {"start": int(start), "stop": int(stop)}
    for name in _ARRAY_FIELDS:
        payload[name] = getattr(result, name)[start:stop].tolist()
    payload.update(
        kernel_sessions=result.kernel_sessions,
        stepped_sessions=result.stepped_sessions,
        oracle_queries=result.oracle_queries,
        queried_bundles=[list(b) for b in result.queried_bundles],
        elapsed=result.elapsed,
    )
    return payload


def run_batch_chunk(spec_dict: dict, start: int, stop: int) -> dict:
    """Play runs ``[start, stop)`` of a batch job to termination."""
    from dataclasses import replace

    from repro.service.manager import SessionManager

    spec = BatchSpec.from_dict(spec_dict)
    manager = SessionManager()  # worker-local broker over the shared pool
    t0 = time.perf_counter()
    outcomes = []
    for run in range(start, stop):
        session_id = manager.open_session(replace(spec.session, run=run))
        summary = manager.run(session_id)
        outcomes.append(summary["outcome"])
        manager.close(session_id)
    return {
        "start": int(start),
        "stop": int(stop),
        "outcomes": outcomes,
        "elapsed": time.perf_counter() - t0,
    }


# ----------------------------------------------------------------------
# Merging (parent-side, deterministic)
# ----------------------------------------------------------------------
def merge_simulation_chunks(spec: SimulationSpec, results: dict[int, dict]):
    """Assemble chunk payloads into the single-process pool result.

    Returns ``(population, PoolResult, SimulationReport)`` exactly as
    :func:`repro.service.simulation.run_simulation` would have.
    """
    from repro.simulate.pool import PoolResult
    from repro.simulate.report import build_report

    population = _population_for(spec)
    n = population.n_sessions
    covered = np.zeros(n, dtype=bool)
    arrays = session_record_arrays(n)
    kernel = stepped = queries = 0
    bundles: set[tuple[int, ...]] = set()
    elapsed = 0.0
    for payload in results.values():
        start, stop = int(payload["start"]), int(payload["stop"])
        require(not covered[start:stop].any(),
                "overlapping chunk results (corrupt job store?)")
        covered[start:stop] = True
        for name in _ARRAY_FIELDS:
            dtype = arrays[name].dtype
            arrays[name][start:stop] = np.asarray(payload[name], dtype=dtype)
        kernel += int(payload["kernel_sessions"])
        stepped += int(payload["stepped_sessions"])
        queries += int(payload["oracle_queries"])
        bundles.update(tuple(b) for b in payload["queried_bundles"])
        elapsed += float(payload["elapsed"])
    require(bool(covered.all()),
            f"merge needs every session covered; missing "
            f"{int((~covered).sum())} of {n}")
    result = PoolResult(
        **arrays,
        kernel_sessions=kernel,
        stepped_sessions=stepped,
        oracle_queries=queries,
        # One shared memoisation cache would have missed exactly once
        # per distinct bundle; everything else is a hit.
        oracle_hits=queries - len(bundles),
        elapsed=elapsed,
        queried_bundles=tuple(sorted(bundles)),
    )
    report = build_report(population, result, n_bins=spec.bins)
    return population, result, report


def merge_batch_chunks(spec: BatchSpec, results: dict[int, dict]) -> dict:
    """Assemble batch chunk payloads into the ordered outcome report."""
    outcomes: list[dict | None] = [None] * spec.runs
    elapsed = 0.0
    for payload in results.values():
        start = int(payload["start"])
        for offset, outcome in enumerate(payload["outcomes"]):
            require(outcomes[start + offset] is None,
                    "overlapping chunk results (corrupt job store?)")
            outcomes[start + offset] = outcome
        elapsed += float(payload["elapsed"])
    require(all(o is not None for o in outcomes),
            "merge needs every run covered")
    accepted = sum(1 for o in outcomes if o and o["status"] == "accepted")
    return {
        "runs": spec.runs,
        "accepted": accepted,
        "outcomes": outcomes,
        "elapsed": elapsed,
        "digest": content_digest(outcomes),
    }


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
#: Job kind -> worker-side chunk runner.  Shared by the process-pool
#: executor, the remote executor's worker servers (``POST /v1/chunks``
#: resolves the kind here), and job-kind validation.
CHUNK_RUNNERS = {
    "simulation": run_simulation_chunk,
    "batch": run_batch_chunk,
}

_CHUNK_RUNNERS = CHUNK_RUNNERS  # backward-compatible alias


class ShardedExecutor:
    """Runs a stored job's pending chunks across worker-process shards.

    Parameters
    ----------
    store:
        The durable :class:`JobStore` (progress is written through).
    shards:
        Worker processes (``0`` = all cores).
    stop_event:
        Optional ``threading.Event``; once set, no further chunks are
        dispatched (in-flight ones finish and are recorded) and the job
        is left ``interrupted`` — the graceful-drain hook ``repro
        serve`` trips on SIGTERM.
    max_chunks:
        Run at most this many chunks, then interrupt (deterministic
        mid-run stop for tests and the CI kill/resume drill).
    """

    def __init__(
        self,
        store: JobStore,
        *,
        shards: int = 2,
        stop_event: threading.Event | None = None,
        max_chunks: int | None = None,
    ) -> None:
        import os

        require(isinstance(shards, int) and shards >= 0,
                "shards must be an int >= 0")
        self.store = store
        self.shards = shards or (os.cpu_count() or 2)
        self.stop_event = stop_event
        self.max_chunks = max_chunks

    # ------------------------------------------------------------------
    def submit(self, spec: SimulationSpec | BatchSpec,
               *, chunks: int | None = None) -> JobRecord:
        """Record ``spec`` as a job (without running it)."""
        if isinstance(spec, SimulationSpec):
            return submit_simulation(self.store, spec, chunks=chunks)
        if isinstance(spec, BatchSpec):
            return submit_batch(self.store, spec, chunks=chunks)
        raise TypeError(f"cannot submit {type(spec).__name__} as a job")

    def run(self, job_id: str) -> JobRecord:
        """Execute the job's pending chunks; merge and finish when all
        are in.  Safe to call again after any interruption — finished
        chunks are never re-run."""
        record = self.store.get(job_id)
        require(record.kind in _CHUNK_RUNNERS,
                f"unknown job kind {record.kind!r}")
        if record.finished:
            return record
        pending = self.store.pending_chunks(job_id)
        self.store.set_status(job_id, "running")
        if pending:
            _CHUNK_EVENTS.inc(len(pending), kind=record.kind, event="queued")
        runner = _CHUNK_RUNNERS[record.kind]
        try:
            interrupted = self._run_pending(job_id, record, runner, pending)
            if interrupted:
                self.store.set_status(job_id, "interrupted")
                return self.store.get(job_id)
            return self._finish(job_id)
        except Exception as exc:
            # A job must never be stranded in "running": chunk *and*
            # merge failures both surface through the store.
            _CHUNK_EVENTS.inc(kind=record.kind, event="failed")
            self.store.set_status(job_id, "failed", error=repr(exc))
            raise

    def _run_pending(self, job_id, record, runner, pending) -> bool:
        """Dispatch pending chunks; True if stopped before all ran."""
        budget = len(pending) if self.max_chunks is None else self.max_chunks
        dispatched = 0
        with ProcessPoolExecutor(max_workers=self.shards) as pool:
            futures = {}
            queue = list(pending)
            while queue or futures:
                while (
                    queue
                    and dispatched < budget
                    and not self._stopped()
                    and len(futures) < self.shards
                ):
                    index, start, stop = queue.pop(0)
                    futures[pool.submit(runner, record.spec, start, stop)] = index
                    dispatched += 1
                    _CHUNK_EVENTS.inc(kind=record.kind, event="running")
                if not futures:
                    break
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures.pop(future)
                    payload = future.result()  # raises -> run() marks failed
                    elapsed = float(payload.get("elapsed", 0.0))
                    self.store.record_chunk(
                        job_id, index, payload, elapsed=elapsed,
                    )
                    _CHUNK_EVENTS.inc(kind=record.kind, event="done")
                    _CHUNK_SECONDS.observe(elapsed, kind=record.kind)
                if (self._stopped() or dispatched >= budget) and queue:
                    # Stop dispatching; drain what's already in flight.
                    queue.clear()
        return self.store.pending_chunks(job_id) != []

    def _stopped(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    def _finish(self, job_id: str) -> JobRecord:
        """Merge all chunk results and persist the final report."""
        from dataclasses import asdict

        record = self.store.get(job_id)
        results = self.store.chunk_results(job_id)
        if record.kind == "simulation":
            spec = SimulationSpec.from_dict(record.spec)
            _, _, report = merge_simulation_chunks(spec, results)
            self.store.finish(job_id, asdict(report), report.digest())
        else:
            spec = BatchSpec.from_dict(record.spec)
            report = merge_batch_chunks(spec, results)
            self.store.finish(job_id, report, report["digest"])
        return self.store.get(job_id)
