"""Multi-host job execution: chunks shipped to worker servers over /v1.

:class:`RemoteShardExecutor` is the cross-host twin of
:class:`~repro.jobs.executor.ShardedExecutor`: the same durable
:class:`~repro.jobs.store.JobStore`, the same content-addressed chunk
layout, the same deterministic merge — but instead of a local
``ProcessPoolExecutor``, each pending chunk is POSTed to a worker's
``/v1/chunks`` route and the reply recorded as if a local shard had
produced it.  A worker is nothing special: any ``python -m repro
serve`` process answers the protocol, rebuilding the job's world from
its canonical spec exactly as a pool worker would.

Fault model (the kill/resume drill CI runs):

* a worker that dies mid-chunk (``kill -9``, network partition)
  surfaces as a :class:`~repro.client.errors.TransportError`; the
  executor marks that worker lost, re-queues the chunk, and carries on
  with the survivors;
* a worker that *hangs* while its connection stays open never errors —
  so every in-flight chunk also carries a client-side wall deadline
  (``chunk_timeout``, measured with :func:`repro.obs.wall_now`); past
  it the chunk is re-queued for the survivors, the worker is dropped,
  and a late result from it is never recorded;
* when no workers are left the run stops ``interrupted`` — finished
  chunks are already durable, so a later :meth:`run` (same or
  different worker fleet) executes only the pending ones;
* either way, the merged report is **bit-identical** to the
  single-process :class:`~repro.simulate.pool.SessionPool` path,
  because chunk payloads are pure functions of ``(spec, start, stop)``
  and JSON round-trips floats exactly.

A worker *crash* is retried; a worker *error reply* (the chunk itself
raised — a bad spec raises everywhere) is not, and fails the job just
as a local shard exception would.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from typing import Callable

from repro import obs
from repro.jobs.executor import ShardedExecutor
from repro.jobs.store import JobRecord, JobStore
from repro.utils.validation import require

__all__ = ["RemoteShardExecutor"]

#: Per-worker chunk accounting: ``done`` chunks were recorded durably,
#: ``lost`` chunks rode a worker that died mid-chunk, ``timeout`` chunks
#: rode a worker that hung past the wall deadline; both are re-queued.
_REMOTE_CHUNKS = obs.REGISTRY.counter(
    "repro_remote_chunks_total",
    "Chunk POSTs per worker URL, by result.",
    ("worker", "result"),
)


def _attached(
    ctx: "obs.SpanContext | None",
    fn: Callable[..., dict[str, object]],
    *args: object,
) -> dict[str, object]:
    """Run ``fn`` with the sweep's span context attached.

    Pool threads do not inherit the coordinator's contextvars, so the
    root trace id must be re-attached inside the submitted callable for
    each chunk's client span (and the worker's server-side spans, via
    the traceparent header) to stitch into one trace.
    """
    token = obs.attach(ctx) if ctx is not None else None
    try:
        return fn(*args)
    finally:
        if token is not None:
            obs.detach(token)


class RemoteShardExecutor(ShardedExecutor):
    """Runs a stored job's pending chunks across remote worker servers.

    Parameters
    ----------
    store:
        The durable :class:`JobStore` — **local to the coordinator**;
        workers are stateless chunk evaluators.
    workers:
        Base URLs of ``repro serve`` processes (``["http://a:8765",
        "http://b:8765"]``).  Each worker executes one chunk at a time;
        parallelism is ``len(workers)``.
    stop_event / max_chunks:
        As on :class:`ShardedExecutor` — graceful drain and the
        deterministic mid-run stop used by tests and CI drills.
    chunk_timeout:
        Client-side wall deadline per in-flight chunk, in seconds
        (default :data:`CHUNK_TIMEOUT`).  A worker that exceeds it is
        treated exactly like a dead one — chunk re-queued, worker
        dropped — even though its socket is still connected; this is
        the only defence against a hung-but-reachable worker.
    client_options:
        Extra keyword arguments for each worker's
        :class:`~repro.client.http.HttpTransport` (``timeout``,
        ``retries``, ``backoff``).
    """

    def __init__(
        self,
        store: JobStore,
        workers: list[str],
        *,
        stop_event: threading.Event | None = None,
        max_chunks: int | None = None,
        chunk_timeout: float | None = None,
        client_options: dict[str, object] | None = None,
    ) -> None:
        workers = [str(w).rstrip("/") for w in workers]
        require(len(workers) >= 1, "need at least one worker URL")
        require(len(set(workers)) == len(workers),
                f"duplicate worker URLs in {workers}")
        super().__init__(store, shards=len(workers), stop_event=stop_event,
                         max_chunks=max_chunks)
        self.workers = workers
        self.chunk_timeout = float(
            chunk_timeout if chunk_timeout is not None else self.CHUNK_TIMEOUT
        )
        require(self.chunk_timeout > 0, "chunk_timeout must be > 0")
        self.client_options = dict(client_options or {})

    # ------------------------------------------------------------------
    #: Default per-chunk wall deadline, doubling as the socket timeout
    #: for chunk POSTs.  A chunk is a synchronous remote computation,
    #: not an RPC — the transport's 60s default would misread any long
    #: chunk as a dead worker and strand the job in a
    #: drop/re-queue/interrupt loop.
    CHUNK_TIMEOUT = 3600.0

    def _clients(self) -> dict[str, object]:
        from repro.client import MarketplaceClient

        options: dict[str, object] = {
            "timeout": self.chunk_timeout, **self.client_options
        }
        return {
            url: MarketplaceClient.connect(url, **options)
            for url in self.workers
        }

    def _run_pending(
        self,
        job_id: str,
        record: JobRecord,
        runner: object,
        pending: list[tuple[int, int, int]],
    ) -> bool:
        """Ship pending chunks to workers; True if stopped before all ran.

        ``runner`` (the local chunk function) is unused — workers
        resolve ``record.kind`` against the same
        :data:`~repro.jobs.executor.CHUNK_RUNNERS` table server-side.
        """
        from repro.client.client import MarketplaceClient
        from repro.client.errors import TransportError

        budget = len(pending) if self.max_chunks is None else self.max_chunks
        clients = self._clients()
        idle = list(self.workers)
        queue = list(pending)
        dispatched = 0
        try:
            with obs.span("job:remote-sweep", job=job_id, kind=record.kind,
                          workers=len(self.workers)), \
                    ThreadPoolExecutor(max_workers=len(self.workers)) as pool:
                root = obs.current()  # every chunk's span joins this trace
                # future -> (url, chunk, wall deadline).  Deadlines use
                # the sanctioned wall clock so the hung-worker guard
                # composes with the determinism lint (DET002).
                futures: dict[
                    Future[dict[str, object]],
                    tuple[str, tuple[int, int, int], float],
                ] = {}
                while queue or futures:
                    while (
                        queue
                        and idle
                        and dispatched < budget
                        and not self._stopped()
                    ):
                        url = idle.pop(0)
                        chunk = queue.pop(0)
                        index, start, stop = chunk
                        client = clients[url]
                        assert isinstance(client, MarketplaceClient)
                        future = pool.submit(
                            _attached, root, client.run_chunk,
                            record.kind, record.spec, start, stop,
                        )
                        futures[future] = (
                            url, chunk, obs.wall_now() + self.chunk_timeout
                        )
                        dispatched += 1
                    if not futures:
                        break
                    # Wake at the earliest in-flight deadline even if
                    # nothing completes — a hung worker produces no
                    # event of its own.
                    horizon = max(
                        0.0,
                        min(d for _, _, d in futures.values())
                        - obs.wall_now(),
                    )
                    done, _ = wait(futures, timeout=horizon,
                                   return_when=FIRST_COMPLETED)
                    for future in done:
                        url, chunk, _deadline = futures.pop(future)
                        try:
                            payload = future.result()
                        except TransportError:
                            # The worker died mid-chunk.  Its work is
                            # lost but nothing is corrupted: re-queue
                            # the chunk for the survivors and drop the
                            # worker for the rest of this run.
                            _REMOTE_CHUNKS.inc(worker=url, result="lost")
                            self._close(clients, url)
                            queue.insert(0, chunk)
                            dispatched -= 1
                            continue
                        # Anything else (an error *reply*) propagates:
                        # run() marks the job failed, as a local shard
                        # exception would.
                        self.store.record_chunk(
                            job_id, chunk[0], payload,
                            elapsed=float(str(payload.get("elapsed", 0.0))),
                        )
                        _REMOTE_CHUNKS.inc(worker=url, result="done")
                        idle.append(url)
                    now = obs.wall_now()
                    for future in [f for f, (_, _, d) in futures.items()
                                   if d <= now]:
                        # Past the wall deadline with the connection
                        # still open: a hung worker.  Re-queue the chunk
                        # and drop the worker; closing its client tears
                        # the socket down so the blocked pool thread
                        # errors out instead of leaking, and the future
                        # is already forgotten — a late result can
                        # never be recorded.
                        url, chunk, _deadline = futures.pop(future)
                        _REMOTE_CHUNKS.inc(worker=url, result="timeout")
                        self._close(clients, url)
                        queue.insert(0, chunk)
                        dispatched -= 1
                    if (self._stopped() or dispatched >= budget) and queue:
                        # Stop dispatching; drain what's in flight.
                        queue.clear()
                    if queue and not idle and not futures:
                        # Every worker is lost with chunks still
                        # pending: leave the job interrupted/resumable.
                        queue.clear()
        finally:
            for url in list(clients):
                self._close(clients, url)
        return self.store.pending_chunks(job_id) != []

    @staticmethod
    def _close(clients: dict[str, object], url: str) -> None:
        from repro.client.client import MarketplaceClient

        client = clients.get(url)
        if isinstance(client, MarketplaceClient):
            client.close()

    # ------------------------------------------------------------------
    def probe(self, timeout: float = 30.0,
              poll: float = 0.2) -> dict[str, dict[str, object]]:
        """Wait until every worker answers ``/v1/health``; raises on
        timeout.  Returns ``url -> healthz payload``."""
        from repro.client import MarketplaceClient, TransportError

        deadline = time.monotonic() + timeout
        status: dict[str, dict[str, object]] = {}
        remaining = list(self.workers)
        while remaining:
            url = remaining[0]
            with MarketplaceClient.connect(url, retries=0) as client:
                try:
                    status[url] = client.healthz()
                    remaining.pop(0)
                    continue
                except TransportError as exc:
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"worker {url} not healthy after {timeout}s: "
                            f"{exc}"
                        ) from exc
            time.sleep(poll)
        return status
