"""Tabular data substrate for the VFL market.

The paper's market operates on vertically-partitioned tabular datasets:
the *task party* holds labels plus some features, the *data party* holds
the remaining features over the same aligned users.  This package
provides the column-store :class:`~repro.data.table.Table`, dataset
schemas, the preprocessing pipeline described in the paper (multi-class
categoricals expanded into indicator features), the vertical
partitioner, and schema-faithful synthetic generators for the three
evaluation datasets (Titanic, Credit, Adult).
"""

from repro.data.partition import PartitionedDataset, VerticalPartitioner
from repro.data.preprocess import (
    EncodedDataset,
    Standardizer,
    encode_indicators,
    train_test_split,
)
from repro.data.schema import Column, ColumnKind, Schema
from repro.data.synthetic import load_adult, load_credit, load_dataset, load_titanic
from repro.data.table import Table

__all__ = [
    "Column",
    "ColumnKind",
    "EncodedDataset",
    "PartitionedDataset",
    "Schema",
    "Standardizer",
    "Table",
    "VerticalPartitioner",
    "encode_indicators",
    "load_adult",
    "load_credit",
    "load_dataset",
    "load_titanic",
    "train_test_split",
]
