"""Vertical partitioning of an encoded dataset between the two parties.

The paper's market has exactly two participants:

* the **task party**, holding the labels and ``d_t`` features, and
* the **data party**, holding ``d_d`` features over the same samples.

The partitioner assigns *original* columns to parties and materialises
party-local matrices, preserving the invariant that all indicator
features of an original column live on the same party (§4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.preprocess import EncodedDataset, train_test_split
from repro.utils.validation import require

__all__ = ["PartitionedDataset", "VerticalPartitioner"]


@dataclass(frozen=True)
class PartitionedDataset:
    """A vertically-partitioned, train/test-split dataset.

    ``X_task``/``X_data`` are full-length matrices; ``train_idx`` and
    ``test_idx`` index rows.  Helper properties expose the four blocks
    used throughout training (``task_train`` etc.).
    """

    name: str
    X_task: np.ndarray
    X_data: np.ndarray
    y: np.ndarray
    task_feature_names: tuple[str, ...]
    data_feature_names: tuple[str, ...]
    task_columns: tuple[str, ...]
    data_columns: tuple[str, ...]
    train_idx: np.ndarray
    test_idx: np.ndarray
    n_raw_features: int

    def __post_init__(self) -> None:
        n = self.y.shape[0]
        require(self.X_task.shape[0] == n, "X_task row mismatch")
        require(self.X_data.shape[0] == n, "X_data row mismatch")
        require(
            self.X_task.shape[1] == len(self.task_feature_names),
            "task feature name count mismatch",
        )
        require(
            self.X_data.shape[1] == len(self.data_feature_names),
            "data feature name count mismatch",
        )
        overlap = set(self.train_idx) & set(self.test_idx)
        require(not overlap, "train/test indices overlap")

    # -- dimensions ----------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Aligned sample count ``n``."""
        return int(self.y.shape[0])

    @property
    def d_task(self) -> int:
        """Encoded feature count on the task party."""
        return int(self.X_task.shape[1])

    @property
    def d_data(self) -> int:
        """Encoded feature count on the data party."""
        return int(self.X_data.shape[1])

    # -- train/test views ----------------------------------------------
    @property
    def task_train(self) -> np.ndarray:
        """Task-party features, training rows."""
        return self.X_task[self.train_idx]

    @property
    def task_test(self) -> np.ndarray:
        """Task-party features, test rows."""
        return self.X_task[self.test_idx]

    @property
    def data_train(self) -> np.ndarray:
        """Data-party features, training rows."""
        return self.X_data[self.train_idx]

    @property
    def data_test(self) -> np.ndarray:
        """Data-party features, test rows."""
        return self.X_data[self.test_idx]

    @property
    def y_train(self) -> np.ndarray:
        """Labels, training rows."""
        return self.y[self.train_idx]

    @property
    def y_test(self) -> np.ndarray:
        """Labels, test rows."""
        return self.y[self.test_idx]

    def data_view(self, feature_indices: object) -> np.ndarray:
        """Data-party columns selected by a bundle's feature indices."""
        idx = np.asarray(list(feature_indices), dtype=np.int64)
        return self.X_data[:, idx]

    def summary(self) -> dict[str, int]:
        """Dataset statistics in the shape of the paper's Table 2."""
        return {
            "n_samples": self.n_samples,
            "original_features_total": self.n_raw_features,
            "task_party_features": self.d_task,
            "data_party_features": self.d_data,
        }


class VerticalPartitioner:
    """Splits an :class:`EncodedDataset` into task/data party views.

    Parameters
    ----------
    task_columns:
        Original column names owned by the task party.
    data_columns:
        Original column names owned by the data party.  Together the two
        lists must cover the schema exactly and be disjoint.
    """

    def __init__(self, task_columns: object, data_columns: object):
        self.task_columns = tuple(task_columns)
        self.data_columns = tuple(data_columns)
        overlap = set(self.task_columns) & set(self.data_columns)
        require(not overlap, f"columns on both parties: {sorted(overlap)}")

    def split(
        self,
        encoded: EncodedDataset,
        *,
        test_size: float = 0.25,
        rng: object = None,
        name: str = "",
    ) -> PartitionedDataset:
        """Materialise party-local matrices plus a train/test row split."""
        schema_cols = set(encoded.schema.feature_names)
        assigned = set(self.task_columns) | set(self.data_columns)
        require(
            assigned == schema_cols,
            "partition must cover schema exactly; "
            f"missing={sorted(schema_cols - assigned)}, "
            f"unknown={sorted(assigned - schema_cols)}",
        )
        task_idx = [i for c in self.task_columns for i in encoded.group_of(c)]
        data_idx = [i for c in self.data_columns for i in encoded.group_of(c)]
        train_idx, test_idx = train_test_split(
            encoded.n_samples, test_size=test_size, rng=rng
        )
        names = encoded.feature_names
        return PartitionedDataset(
            name=name or encoded.schema.name,
            X_task=encoded.X[:, task_idx],
            X_data=encoded.X[:, data_idx],
            y=encoded.y,
            task_feature_names=tuple(names[i] for i in task_idx),
            data_feature_names=tuple(names[i] for i in data_idx),
            task_columns=self.task_columns,
            data_columns=self.data_columns,
            train_idx=train_idx,
            test_idx=test_idx,
            n_raw_features=encoded.schema.n_raw_features,
        )
