"""Preprocessing pipeline: imputation, indicator encoding, standardisation.

Mirrors the paper's §4.1.1: *"We convert the multi-class categorical
features in the original datasets into indicator features and then split
the features into task-party-owned and data-party-owned. Note that
indicator features of the same original feature are on the same party."*

The key artefact here is :class:`EncodedDataset`, which carries the
encoded feature matrix **together with the grouping of encoded features
by original column**, so the partitioner can honour the same-party
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import ColumnKind, Schema
from repro.data.table import Table
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability, require

__all__ = [
    "EncodedDataset",
    "Standardizer",
    "encode_indicators",
    "impute_missing",
    "train_test_split",
]


def impute_missing(table: Table, schema: Schema) -> Table:
    """Fill missing values: numeric -> median, categorical/binary -> mode.

    Raw tables may carry NaN in numeric columns (e.g. Titanic ``age``).
    Categorical code columns use ``-1`` as the missing marker.
    """
    out = table
    for col in schema:
        values = np.asarray(table.column(col.name), dtype=np.float64)
        if col.kind is ColumnKind.NUMERIC:
            mask = ~np.isfinite(values)
            if mask.any():
                fill = float(np.nanmedian(values))
                filled = values.copy()
                filled[mask] = fill
                out = out.with_column(col.name, filled)
        else:
            codes = np.asarray(table.column(col.name), dtype=np.int64)
            mask = codes < 0
            if mask.any():
                present = codes[~mask]
                mode = int(np.bincount(present).argmax()) if present.size else 0
                filled_codes = codes.copy()
                filled_codes[mask] = mode
                out = out.with_column(col.name, filled_codes)
    return out


@dataclass(frozen=True)
class EncodedDataset:
    """An indicator-encoded dataset ready for vertical partitioning.

    Attributes
    ----------
    X:
        ``(n, d)`` float matrix of encoded features.
    y:
        ``(n,)`` integer label vector.
    feature_names:
        Encoded feature names (length ``d``), e.g. ``"embarked=S"``.
    groups:
        Maps each *original* column name to the indices (into ``X``
        columns) of the encoded features it expanded to.  Partitioning
        assigns whole groups to parties.
    schema:
        The raw schema the encoding came from.
    """

    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]
    groups: dict[str, tuple[int, ...]]
    schema: Schema
    _name_to_index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        require(self.X.ndim == 2, "X must be 2-D")
        require(self.X.shape[0] == self.y.shape[0], "X and y row mismatch")
        require(
            self.X.shape[1] == len(self.feature_names),
            "feature_names length must match X columns",
        )
        covered = sorted(i for idx in self.groups.values() for i in idx)
        require(
            covered == list(range(self.X.shape[1])),
            "groups must partition the encoded columns exactly",
        )
        object.__setattr__(
            self,
            "_name_to_index",
            {name: i for i, name in enumerate(self.feature_names)},
        )

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Number of encoded features."""
        return int(self.X.shape[1])

    def index_of(self, feature_name: str) -> int:
        """Column index of an encoded feature name."""
        try:
            return self._name_to_index[feature_name]
        except KeyError:
            raise KeyError(f"unknown encoded feature {feature_name!r}") from None

    def group_of(self, original_column: str) -> tuple[int, ...]:
        """Encoded column indices of one original column."""
        try:
            return self.groups[original_column]
        except KeyError:
            raise KeyError(f"unknown original column {original_column!r}") from None


def encode_indicators(table: Table, schema: Schema, y: np.ndarray) -> EncodedDataset:
    """Indicator-encode a raw table per its schema.

    * numeric columns pass through (one feature each);
    * binary columns pass through as 0/1 (one feature each);
    * categorical columns expand into one 0/1 indicator per category.

    Missing values must already be imputed (see :func:`impute_missing`).
    """
    blocks: list[np.ndarray] = []
    names: list[str] = []
    groups: dict[str, tuple[int, ...]] = {}
    cursor = 0
    for col in schema:
        if col.kind is ColumnKind.CATEGORICAL:
            codes = np.asarray(table.column(col.name), dtype=np.int64)
            require(
                codes.min() >= 0 and codes.max() < len(col.categories),
                f"column {col.name!r} has codes outside its categories "
                f"(found range [{codes.min()}, {codes.max()}])",
            )
            block = np.zeros((codes.shape[0], len(col.categories)))
            block[np.arange(codes.shape[0]), codes] = 1.0
        else:
            values = np.asarray(table.column(col.name), dtype=np.float64)
            require(
                bool(np.all(np.isfinite(values))),
                f"column {col.name!r} still has missing values; impute first",
            )
            block = values.reshape(-1, 1)
        blocks.append(block)
        encoded = col.encoded_names()
        names.extend(encoded)
        groups[col.name] = tuple(range(cursor, cursor + len(encoded)))
        cursor += len(encoded)
    X = np.hstack(blocks)
    return EncodedDataset(
        X=X,
        y=np.asarray(y, dtype=np.int64),
        feature_names=tuple(names),
        groups=groups,
        schema=schema,
    )


class Standardizer:
    """Column-wise zero-mean/unit-variance scaling (fit on train only).

    Indicator columns are detected (values within {0, 1}) and left
    unscaled so tree models keep clean split semantics.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None
        self.is_indicator_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "Standardizer":
        """Learn per-column statistics from ``X``."""
        X = np.asarray(X, dtype=np.float64)
        is_ind = np.array(
            [bool(np.isin(np.unique(X[:, j]), (0.0, 1.0)).all()) for j in range(X.shape[1])]
        )
        mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        mean[is_ind] = 0.0
        scale[is_ind] = 1.0
        self.mean_, self.scale_, self.is_indicator_ = mean, scale, is_ind
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        require(self.mean_ is not None, "Standardizer must be fit before transform")
        assert self.mean_ is not None and self.scale_ is not None
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit, then transform, in one call."""
        return self.fit(X).transform(X)


def train_test_split(
    n_samples: int,
    *,
    test_size: float = 0.25,
    rng: object = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled train/test index split.

    Returns ``(train_idx, test_idx)``; deterministic given ``rng``.
    """
    check_probability(test_size, "test_size")
    require(n_samples >= 4, "need at least 4 samples to split")
    gen = as_generator(rng)
    order = gen.permutation(n_samples)
    n_test = max(1, int(round(n_samples * test_size)))
    require(n_test < n_samples, "test_size leaves no training data")
    return np.sort(order[n_test:]), np.sort(order[:n_test])
