"""An immutable, column-oriented table.

The library avoids a pandas dependency with a small column store:
named, equal-length numpy arrays.  Raw categorical columns hold integer
*codes* (indices into :attr:`repro.data.schema.Column.categories`);
numeric columns hold floats and may contain NaN for missing values.

Tables are immutable — every transformation returns a new ``Table``
sharing the underlying (read-only) arrays where possible.  This keeps
party-local views safe to hand across the simulated VFL boundary.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.utils.validation import require

__all__ = ["Table"]


def _freeze(array: np.ndarray) -> np.ndarray:
    """Return a read-only view (copying only if needed to own the data)."""
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValueError(f"table columns must be 1-D, got ndim={arr.ndim}")
    if arr.flags.writeable:
        arr = arr.copy()
        arr.flags.writeable = False
    return arr


class Table:
    """Immutable mapping of column name -> 1-D numpy array.

    >>> t = Table({"age": [31.0, 44.0], "sex": [0, 1]})
    >>> t.n_rows, t.column_names
    (2, ['age', 'sex'])
    >>> t.select(["sex"]).to_matrix()
    array([[0.],
           [1.]])
    """

    __slots__ = ("_columns", "_n_rows")

    def __init__(self, columns: Mapping[str, object]):
        frozen: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for name, values in columns.items():
            arr = _freeze(np.asarray(values))
            if n_rows is None:
                n_rows = arr.shape[0]
            elif arr.shape[0] != n_rows:
                raise ValueError(
                    f"column {name!r} has {arr.shape[0]} rows, expected {n_rows}"
                )
            frozen[name] = arr
        require(frozen != {}, "table must have at least one column")
        self._columns = frozen
        self._n_rows = int(n_rows or 0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def column_names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names:
            return False
        return all(
            np.array_equal(self._columns[n], other._columns[n], equal_nan=True)
            for n in self._columns
        )

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{a.dtype}" for n, a in self._columns.items())
        return f"Table({self._n_rows} rows; {cols})"

    def column(self, name: str) -> np.ndarray:
        """The (read-only) array stored under ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table has no column {name!r}; known: {self.column_names}"
            ) from None

    # ------------------------------------------------------------------
    # Transformations (all return new tables)
    # ------------------------------------------------------------------
    def select(self, names: Iterable[str]) -> "Table":
        """Table with only ``names``, in the given order."""
        return Table({n: self.column(n) for n in names})

    def drop(self, names: Iterable[str]) -> "Table":
        """Table without ``names``."""
        dropped = set(names)
        kept = {n: a for n, a in self._columns.items() if n not in dropped}
        return Table(kept)

    def with_column(self, name: str, values: object) -> "Table":
        """Table with ``name`` appended (or replaced, if already present)."""
        cols = dict(self._columns)
        cols[name] = np.asarray(values)
        return Table(cols)

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Table with columns renamed per ``mapping`` (others unchanged)."""
        return Table({mapping.get(n, n): a for n, a in self._columns.items()})

    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Row subset/reorder by integer indices."""
        idx = np.asarray(indices)
        return Table({n: a[idx] for n, a in self._columns.items()})

    def hstack(self, other: "Table") -> "Table":
        """Column-wise concatenation; names must not collide."""
        overlap = set(self._columns) & set(other._columns)
        require(not overlap, f"hstack column collision: {sorted(overlap)}")
        require(
            self._n_rows == other._n_rows,
            f"hstack row mismatch: {self._n_rows} vs {other._n_rows}",
        )
        cols = dict(self._columns)
        cols.update(other._columns)
        return Table(cols)

    def to_matrix(self, dtype: type = np.float64) -> np.ndarray:
        """Dense ``(n_rows, n_columns)`` matrix in column order."""
        return np.column_stack(
            [np.asarray(a, dtype=dtype) for a in self._columns.values()]
        )

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def describe(self) -> dict[str, dict[str, float]]:
        """Per-column summary statistics (NaN-aware for numerics)."""
        out: dict[str, dict[str, float]] = {}
        for name, arr in self._columns.items():
            values = np.asarray(arr, dtype=np.float64)
            finite = values[np.isfinite(values)]
            out[name] = {
                "mean": float(finite.mean()) if finite.size else float("nan"),
                "std": float(finite.std()) if finite.size else float("nan"),
                "min": float(finite.min()) if finite.size else float("nan"),
                "max": float(finite.max()) if finite.size else float("nan"),
                "missing": float(np.isnan(values).mean()),
            }
        return out
