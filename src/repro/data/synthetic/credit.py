"""Synthetic Credit: default of credit-card clients (Taiwan, 2005).

Schema-faithful stand-in for the UCI "default of credit card clients"
dataset (30 000 rows; the CSV's 25 variables include an ID and the
label).  After indicator encoding our split matches the paper's Table 2:
9 task-party features and 21 data-party features.

The task party (a bank running the scoring model) holds demographics
and the credit limit; the data party (a payment processor) holds the
six months of repayment statuses, bill amounts, payment amounts and
three engineered aggregates.  Default risk is driven mostly by the
repayment statuses — data-party signal — but the base rate is low, so
relative accuracy gains are small: Credit is the paper's small-ΔG
dataset (realised ΔG ≈ 0.005 with RF).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Column, ColumnKind, Schema
from repro.data.synthetic.base import (
    RawDataset,
    categorical_column,
    categorical_effect,
    labels_from_score,
    numeric_column,
)
from repro.data.table import Table
from repro.utils.rng import spawn

__all__ = ["CREDIT_SCHEMA", "load_credit"]

_PAY_COLUMNS = ("pay_0", "pay_2", "pay_3", "pay_4", "pay_5", "pay_6")
_BILL_COLUMNS = tuple(f"bill_amt{i}" for i in range(1, 7))
_PAY_AMT_COLUMNS = tuple(f"pay_amt{i}" for i in range(1, 7))

CREDIT_SCHEMA = Schema.of(
    [
        Column("limit_bal", ColumnKind.NUMERIC, description="credit limit (NT$)"),
        Column("sex", ColumnKind.BINARY, ("male", "female")),
        Column(
            "education",
            ColumnKind.CATEGORICAL,
            ("graduate", "university", "high_school", "other"),
        ),
        Column("marriage", ColumnKind.CATEGORICAL, ("married", "other")),
        Column("age", ColumnKind.NUMERIC, description="age in years"),
        *[
            Column(name, ColumnKind.NUMERIC, description="repayment status (months late)")
            for name in _PAY_COLUMNS
        ],
        *[
            Column(name, ColumnKind.NUMERIC, description="bill statement amount")
            for name in _BILL_COLUMNS
        ],
        *[
            Column(name, ColumnKind.NUMERIC, description="previous payment amount")
            for name in _PAY_AMT_COLUMNS
        ],
        Column("avg_bill", ColumnKind.NUMERIC, description="mean bill amount"),
        Column("avg_pay_amt", ColumnKind.NUMERIC, description="mean payment amount"),
        Column("utilization", ColumnKind.NUMERIC, description="avg bill / limit"),
    ],
    label="default",
    name="credit",
)

# Task party: demographics + limit -> 1+1+4+2+1 = 9 encoded.
_TASK_COLUMNS = ("limit_bal", "sex", "education", "marriage", "age")
# Data party: 6 pay + 6 bill + 6 pay_amt + 3 aggregates = 21 encoded.
_DATA_COLUMNS = _PAY_COLUMNS + _BILL_COLUMNS + _PAY_AMT_COLUMNS + (
    "avg_bill",
    "avg_pay_amt",
    "utilization",
)


def load_credit(n_samples: int = 30_000, *, seed: int = 0) -> RawDataset:
    """Generate the synthetic Credit dataset (default n matches UCI's 30k)."""
    rng = spawn(seed, "credit", "generate")

    # Financial-stress latent: high = struggling borrower.
    stress = rng.standard_normal(n_samples)

    limit_bal = numeric_column(
        rng, -stress, rho=0.5, loc=11.8, scale=0.8, dist="lognormal",
        clip=(10_000.0, 1_000_000.0), round_to=-3,
    )
    sex_female = (rng.random(n_samples) < 0.6).astype(np.float64)
    education = categorical_column(
        rng, -stress, base_logits=(0.2, 0.5, -0.4, -2.2), slopes=(0.5, 0.0, -0.5, -0.1)
    )
    marriage = categorical_column(rng, stress, base_logits=(0.1, -0.1), slopes=(0.1, -0.1))
    age = numeric_column(
        rng, -stress, rho=0.15, loc=35.5, scale=9.2, clip=(21.0, 79.0), round_to=0
    )

    # Six months of repayment status; autocorrelated via the latent.
    pay_status = {}
    for i, name in enumerate(_PAY_COLUMNS):
        raw = numeric_column(rng, stress, rho=0.75, loc=-0.4 + 0.04 * i, scale=1.1)
        pay_status[name] = np.clip(np.round(raw), -2.0, 8.0)

    bills = {}
    for i, name in enumerate(_BILL_COLUMNS):
        bills[name] = numeric_column(
            rng, stress, rho=0.45, loc=10.2 - 0.05 * i, scale=1.1, dist="lognormal",
            clip=(0.0, 900_000.0), round_to=0,
        )
    pay_amts = {}
    for i, name in enumerate(_PAY_AMT_COLUMNS):
        pay_amts[name] = numeric_column(
            rng, -stress, rho=0.4, loc=8.2 - 0.03 * i, scale=1.2, dist="lognormal",
            clip=(0.0, 500_000.0), round_to=0,
        )

    avg_bill = np.mean(np.column_stack(list(bills.values())), axis=1)
    avg_pay_amt = np.mean(np.column_stack(list(pay_amts.values())), axis=1)
    utilization = np.clip(avg_bill / np.maximum(limit_bal, 1.0), 0.0, 4.0)

    # Default risk: dominated by recent repayment statuses (data party),
    # utilisation (data party) and, weakly, limit/education (task party).
    recent_pay = (
        0.55 * pay_status["pay_0"]
        + 0.30 * pay_status["pay_2"]
        + 0.18 * pay_status["pay_3"]
        + 0.10 * pay_status["pay_4"]
        + 0.06 * pay_status["pay_5"]
        + 0.04 * pay_status["pay_6"]
    )
    # Calibration note: default risk is mostly explained by the shared
    # financial-stress latent, which the task party's limit/demographics
    # already proxy; the data party's behavioural features add a small
    # *incremental* accuracy edge — Credit is the paper's smallest-ΔG
    # dataset (realised ΔG in the 1e-3..1e-2 range).
    score = (
        0.38 * recent_pay
        + 0.25 * utilization
        - 0.18 * np.log1p(avg_pay_amt) / 10.0
        - 0.55 * (np.log(limit_bal) - 11.8)
        + categorical_effect(education, (-0.25, 0.0, 0.28, 0.10))
        + categorical_effect(marriage, (-0.08, 0.08))
        - 0.006 * (age - 35.5)
        + 0.50 * rng.standard_normal(n_samples)
    )
    y = labels_from_score(rng, score, positive_rate=0.221)

    columns: dict[str, np.ndarray] = {
        "limit_bal": limit_bal,
        "sex": sex_female,
        "education": education,
        "marriage": marriage,
        "age": age,
    }
    columns.update(pay_status)
    columns.update(bills)
    columns.update(pay_amts)
    columns["avg_bill"] = avg_bill
    columns["avg_pay_amt"] = avg_pay_amt
    columns["utilization"] = utilization

    return RawDataset(
        name="credit",
        table=Table(columns),
        schema=CREDIT_SCHEMA,
        y=y,
        task_columns=_TASK_COLUMNS,
        data_columns=_DATA_COLUMNS,
        n_original_features=25,
    )
