"""Schema-faithful synthetic generators for the paper's three datasets."""

from repro.data.synthetic.adult import ADULT_SCHEMA, load_adult
from repro.data.synthetic.base import RawDataset
from repro.data.synthetic.credit import CREDIT_SCHEMA, load_credit
from repro.data.synthetic.titanic import TITANIC_SCHEMA, load_titanic

__all__ = [
    "ADULT_SCHEMA",
    "CREDIT_SCHEMA",
    "TITANIC_SCHEMA",
    "RawDataset",
    "load_adult",
    "load_credit",
    "load_dataset",
    "load_titanic",
]

_LOADERS = {
    "titanic": load_titanic,
    "credit": load_credit,
    "adult": load_adult,
}


def load_dataset(name: str, n_samples: int | None = None, *, seed: int = 0) -> RawDataset:
    """Load one of the paper's datasets by name.

    ``n_samples=None`` uses each dataset's real-world row count
    (891 / 30 000 / 48 842).
    """
    try:
        loader = _LOADERS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(_LOADERS)}"
        ) from None
    if n_samples is None:
        return loader(seed=seed)
    return loader(n_samples, seed=seed)
