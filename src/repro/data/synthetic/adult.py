"""Synthetic Adult ("Census Income"): predict income > $50k/year.

Schema-faithful stand-in for the UCI Adult dataset (48 842 rows, 14
original variables).  After indicator encoding the split matches the
paper's Table 2: 52 task-party features and 36 data-party features.

The task party (e.g. an advertiser) holds the categorical occupation /
education / household variables; the data party (a census bureau or
credit agency) holds the numeric earnings-related attributes plus race
and native country.  Capital gains and weekly hours carry strong signal
the task party lacks, so VFL yields a moderate gain: Adult is the
paper's mid-ΔG dataset (realised ΔG ≈ 0.01–0.04).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Column, ColumnKind, Schema
from repro.data.synthetic.base import (
    RawDataset,
    categorical_column,
    categorical_effect,
    labels_from_score,
    numeric_column,
)
from repro.data.table import Table
from repro.utils.rng import spawn

__all__ = ["ADULT_SCHEMA", "load_adult"]

_WORKCLASSES = (
    "private", "self_emp_not_inc", "self_emp_inc", "federal_gov",
    "local_gov", "state_gov", "without_pay", "never_worked",
)
_EDUCATIONS = (
    "preschool", "1st_4th", "5th_6th", "7th_8th", "9th", "10th", "11th",
    "12th", "hs_grad", "some_college", "assoc_voc", "assoc_acdm",
    "bachelors", "masters", "prof_school", "doctorate",
)
_MARITAL = (
    "married_civ", "divorced", "never_married", "separated",
    "widowed", "married_spouse_absent", "married_af",
)
_OCCUPATIONS = (
    "tech_support", "craft_repair", "other_service", "sales",
    "exec_managerial", "prof_specialty", "handlers_cleaners",
    "machine_op_inspct", "adm_clerical", "farming_fishing",
    "transport_moving", "priv_house_serv", "protective_serv",
    "armed_forces",
)
_RELATIONSHIPS = ("wife", "own_child", "husband", "not_in_family", "other_relative", "unmarried")
_RACES = ("white", "asian_pac_islander", "amer_indian_eskimo", "other", "black")
_COUNTRIES = tuple(f"country_{i:02d}" for i in range(25))

ADULT_SCHEMA = Schema.of(
    [
        Column("age", ColumnKind.NUMERIC),
        Column("workclass", ColumnKind.CATEGORICAL, _WORKCLASSES),
        Column("fnlwgt", ColumnKind.NUMERIC, description="census sampling weight"),
        Column("education", ColumnKind.CATEGORICAL, _EDUCATIONS),
        Column("education_num", ColumnKind.NUMERIC, description="years of education"),
        Column("marital_status", ColumnKind.CATEGORICAL, _MARITAL),
        Column("occupation", ColumnKind.CATEGORICAL, _OCCUPATIONS),
        Column("relationship", ColumnKind.CATEGORICAL, _RELATIONSHIPS),
        Column("race", ColumnKind.CATEGORICAL, _RACES),
        Column("sex", ColumnKind.BINARY, ("female", "male")),
        Column("capital_gain", ColumnKind.NUMERIC),
        Column("capital_loss", ColumnKind.NUMERIC),
        Column("hours_per_week", ColumnKind.NUMERIC),
        Column("native_country", ColumnKind.CATEGORICAL, _COUNTRIES),
    ],
    label="income_gt_50k",
    name="adult",
)

# Task party: categorical socio-demographics -> 8+16+7+14+6+1 = 52 encoded.
_TASK_COLUMNS = (
    "workclass",
    "education",
    "marital_status",
    "occupation",
    "relationship",
    "sex",
)
# Data party: numeric earnings attributes + race + country -> 6+5+25 = 36.
_DATA_COLUMNS = (
    "age",
    "fnlwgt",
    "education_num",
    "capital_gain",
    "capital_loss",
    "hours_per_week",
    "race",
    "native_country",
)


def load_adult(n_samples: int = 48_842, *, seed: int = 0) -> RawDataset:
    """Generate the synthetic Adult dataset (default n matches UCI's 48 842)."""
    rng = spawn(seed, "adult", "generate")

    # Human-capital latent: high = educated, senior, high-earning.
    capital = rng.standard_normal(n_samples)

    age = numeric_column(
        rng, capital, rho=0.45, loc=38.6, scale=13.6, clip=(17.0, 90.0), round_to=0
    )
    workclass = categorical_column(
        rng, capital,
        base_logits=(2.2, -0.4, -1.2, -0.9, -0.5, -0.8, -4.0, -4.5),
        slopes=(-0.2, 0.3, 0.8, 0.3, 0.1, 0.1, -1.0, -1.2),
    )
    fnlwgt = numeric_column(
        rng, capital, rho=0.05, loc=12.0, scale=0.5, dist="lognormal",
        clip=(12_000.0, 1_500_000.0), round_to=0,
    )
    education = categorical_column(
        rng, capital,
        base_logits=(-4.5, -3.5, -3.0, -2.4, -2.2, -1.8, -1.5, -2.0,
                     1.4, 1.1, -0.7, -0.9, 0.6, -0.6, -1.6, -2.0),
        slopes=(-1.5, -1.3, -1.2, -1.0, -0.9, -0.8, -0.7, -0.6,
                -0.2, 0.1, 0.3, 0.35, 0.9, 1.1, 1.3, 1.4),
    )
    # Years of education consistent with the education level code.
    edu_years_by_code = np.array(
        (1.0, 3.0, 5.5, 7.5, 9.0, 10.0, 11.0, 12.0, 9.0, 10.0,
         11.0, 11.0, 13.0, 14.0, 15.0, 16.0)
    )
    education_num = edu_years_by_code[education] + np.round(
        rng.normal(0.0, 0.5, n_samples)
    )
    education_num = np.clip(education_num, 1.0, 16.0)
    marital_status = categorical_column(
        rng, capital + 0.02 * (age - 38.6),
        base_logits=(1.2, -0.4, 0.6, -1.6, -1.8, -2.2, -4.5),
        slopes=(0.5, -0.1, -0.6, -0.4, -0.2, -0.2, 0.0),
    )
    occupation = categorical_column(
        rng, capital,
        base_logits=(-1.4, 0.4, 0.2, 0.3, 0.2, 0.2, -0.8, -0.7,
                     0.1, -1.3, -0.7, -2.8, -1.5, -4.5),
        slopes=(0.4, -0.4, -0.7, 0.2, 1.0, 1.1, -0.8, -0.6,
                -0.2, -0.6, -0.3, -1.0, 0.1, 0.0),
    )
    relationship = categorical_column(
        rng, capital,
        base_logits=(-1.2, -0.5, 0.6, 0.3, -1.6, -0.4),
        slopes=(0.4, -0.9, 0.7, -0.1, -0.5, -0.4),
    )
    race = categorical_column(
        rng, capital,
        base_logits=(2.2, -1.1, -2.6, -2.5, -0.6),
        slopes=(0.1, 0.2, -0.2, -0.1, -0.2),
    )
    sex_male = (rng.random(n_samples) < 0.67).astype(np.float64)
    # Capital gains: mostly zero, heavy tail for investors.
    has_gain = rng.random(n_samples) < (0.06 + 0.05 * (capital > 1.0))
    capital_gain = np.where(
        has_gain,
        np.round(np.exp(rng.normal(8.4, 1.0, n_samples) + 0.5 * capital)),
        0.0,
    )
    capital_gain = np.clip(capital_gain, 0.0, 99_999.0)
    has_loss = rng.random(n_samples) < 0.047
    capital_loss = np.where(
        has_loss, np.round(rng.normal(1_880.0, 280.0, n_samples)), 0.0
    )
    capital_loss = np.clip(capital_loss, 0.0, 4_356.0)
    hours_per_week = numeric_column(
        rng, capital, rho=0.4, loc=40.4, scale=12.3, clip=(1.0, 99.0), round_to=0
    )
    native_country = categorical_column(
        rng, capital,
        base_logits=np.concatenate(([3.2], np.linspace(-0.5, -2.4, 24))),
        slopes=np.concatenate(([0.05], np.linspace(-0.3, 0.3, 24))),
    )

    # Income score: education/occupation (task party) matter, but the
    # *numeric* attributes the data party holds (age, hours, capital
    # gains/losses, education years) add signal the task party lacks.
    score = (
        0.28 * (education_num - 10.0)
        + categorical_effect(
            occupation,
            (0.3, -0.1, -0.7, 0.2, 0.9, 0.8, -0.8, -0.4, -0.2, -0.9, -0.2, -1.2, 0.3, 0.0),
        )
        + categorical_effect(marital_status, (0.9, -0.4, -0.9, -0.6, -0.4, -0.3, 0.6))
        + 0.30 * sex_male
        + 0.035 * (age - 38.6)
        - 0.0006 * np.square(age - 50.0)
        + 0.030 * (hours_per_week - 40.4)
        + 1.1 * np.log1p(capital_gain) / 9.0
        + 0.45 * np.log1p(capital_loss) / 8.0
        + categorical_effect(race, (0.05, 0.05, -0.15, -0.1, -0.15))
        + 0.40 * rng.standard_normal(n_samples)
    )
    y = labels_from_score(rng, score, positive_rate=0.239)

    table = Table(
        {
            "age": age,
            "workclass": workclass,
            "fnlwgt": fnlwgt,
            "education": education,
            "education_num": education_num,
            "marital_status": marital_status,
            "occupation": occupation,
            "relationship": relationship,
            "race": race,
            "sex": sex_male,
            "capital_gain": capital_gain,
            "capital_loss": capital_loss,
            "hours_per_week": hours_per_week,
            "native_country": native_country,
        }
    )
    return RawDataset(
        name="adult",
        table=table,
        schema=ADULT_SCHEMA,
        y=y,
        task_columns=_TASK_COLUMNS,
        data_columns=_DATA_COLUMNS,
        n_original_features=14,
    )
