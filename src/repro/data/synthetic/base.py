"""Synthetic tabular data generation framework.

The evaluation datasets (Kaggle Titanic, UCI Credit, UCI Adult) cannot
be downloaded in this offline environment, so each is replaced by a
schema-faithful synthetic generator (see DESIGN.md §5).  The generators
share one causal template:

1. every row draws a few **latent factors** (e.g. socio-economic status);
2. each raw column is sampled conditioned on a latent with a per-column
   correlation strength, giving realistic inter-feature correlation;
3. the label is Bernoulli in a **score** that sums per-column *direct
   effects* of varying strength, so different columns (and hence
   different traded feature bundles) carry genuinely different amounts
   of label signal — exactly the structure the bargaining market prices.

What the market consumes from a dataset is only the *performance-gain
landscape over bundles*: monotone-ish in bundle informativeness, with
diminishing returns and noise.  The latent-plus-direct-effects template
reproduces that structure by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.partition import PartitionedDataset, VerticalPartitioner
from repro.data.preprocess import Standardizer, encode_indicators, impute_missing
from repro.data.schema import Schema
from repro.data.table import Table
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_probability, require

__all__ = [
    "RawDataset",
    "categorical_column",
    "categorical_effect",
    "fit_intercept_for_rate",
    "labels_from_score",
    "numeric_column",
    "sigmoid",
]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def fit_intercept_for_rate(score: np.ndarray, rate: float) -> float:
    """Find ``b`` such that ``mean(sigmoid(score + b)) ~= rate`` by bisection."""
    check_probability(rate, "rate")
    lo, hi = -30.0, 30.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if float(sigmoid(score + mid).mean()) < rate:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def labels_from_score(
    rng: np.random.Generator, score: np.ndarray, positive_rate: float
) -> np.ndarray:
    """Draw Bernoulli labels whose marginal rate matches ``positive_rate``."""
    intercept = fit_intercept_for_rate(score, positive_rate)
    probs = sigmoid(score + intercept)
    return (rng.random(score.shape[0]) < probs).astype(np.int64)


def numeric_column(
    rng: np.random.Generator,
    latent: np.ndarray,
    *,
    rho: float,
    loc: float = 0.0,
    scale: float = 1.0,
    dist: str = "normal",
    clip: tuple[float, float] | None = None,
    round_to: int | None = None,
    missing_rate: float = 0.0,
) -> np.ndarray:
    """Sample a numeric column correlated with ``latent`` at strength ``rho``.

    ``dist="lognormal"`` exponentiates the correlated normal draw
    (useful for fares/balances); ``round_to`` quantises (counts);
    ``missing_rate`` injects NaN at random (imputation exercises).
    """
    require(-1.0 <= rho <= 1.0, f"rho must be in [-1, 1], got {rho}")
    n = latent.shape[0]
    base = rho * latent + np.sqrt(max(0.0, 1.0 - rho * rho)) * rng.standard_normal(n)
    if dist == "normal":
        values = loc + scale * base
    elif dist == "lognormal":
        values = np.exp(loc + scale * base)
    else:
        raise ValueError(f"unknown dist {dist!r}")
    if clip is not None:
        values = np.clip(values, clip[0], clip[1])
    if round_to is not None:
        values = np.round(values, round_to)
        if round_to == 0:
            values = values.astype(np.float64)
    if missing_rate > 0:
        mask = rng.random(n) < missing_rate
        values = values.astype(np.float64)
        values[mask] = np.nan
    return values


def categorical_column(
    rng: np.random.Generator,
    latent: np.ndarray,
    *,
    base_logits: object,
    slopes: object,
) -> np.ndarray:
    """Sample integer category codes with latent-dependent probabilities.

    ``P(code=k | h) = softmax(base_logits + h * slopes)[k]`` — categories
    with larger slope become more likely as the latent grows, which is
    how e.g. cabin deck correlates with wealth.
    """
    logits0 = np.asarray(base_logits, dtype=np.float64)
    slope = np.asarray(slopes, dtype=np.float64)
    require(logits0.shape == slope.shape, "base_logits and slopes shape mismatch")
    logits = logits0[None, :] + latent[:, None] * slope[None, :]
    logits -= logits.max(axis=1, keepdims=True)
    probs = np.exp(logits)
    probs /= probs.sum(axis=1, keepdims=True)
    cumulative = probs.cumsum(axis=1)
    draws = rng.random(latent.shape[0])[:, None]
    return (draws > cumulative).sum(axis=1).astype(np.int64)


def categorical_effect(codes: np.ndarray, effects: object) -> np.ndarray:
    """Per-row score contribution of a categorical column.

    ``effects[k]`` is the label-score effect of category ``k``; missing
    codes (``-1``) contribute zero.
    """
    table = np.asarray(effects, dtype=np.float64)
    out = np.zeros(codes.shape[0])
    valid = codes >= 0
    out[valid] = table[codes[valid]]
    return out


@dataclass(frozen=True)
class RawDataset:
    """A generated raw dataset plus its party assignment.

    Attributes
    ----------
    name:
        Dataset identifier (``"titanic"``, ``"credit"``, ``"adult"``).
    table / schema / y:
        Raw (pre-encoding) columns, their schema, and binary labels.
    task_columns / data_columns:
        Original-column ownership, matching the paper's split counts.
    n_original_features:
        The upstream CSV's variable count as the paper's Table 2 reports
        it (11 / 25 / 14); may differ from ``len(schema)`` when the
        generator materialises engineered aggregates as raw columns.
    """

    name: str
    table: Table
    schema: Schema
    y: np.ndarray
    task_columns: tuple[str, ...]
    data_columns: tuple[str, ...]
    n_original_features: int

    @property
    def n_samples(self) -> int:
        """Number of generated rows."""
        return int(self.y.shape[0])

    def prepare(
        self,
        *,
        test_size: float = 0.25,
        seed: object = 0,
        n_subsample: int | None = None,
        standardize: bool = True,
    ) -> PartitionedDataset:
        """Run the full preprocessing pipeline of §4.1.1.

        impute -> indicator-encode -> (optional) standardise numerics ->
        vertical partition -> train/test split.  ``n_subsample`` keeps a
        random row subset first (used by quick-mode experiments).
        """
        rng = as_generator(spawn(seed, self.name, "prepare"))
        table, y = self.table, self.y
        if n_subsample is not None and n_subsample < self.n_samples:
            keep = np.sort(rng.choice(self.n_samples, size=n_subsample, replace=False))
            table, y = table.take(keep), y[keep]
        table = impute_missing(table, self.schema)
        encoded = encode_indicators(table, self.schema, y)
        partitioner = VerticalPartitioner(self.task_columns, self.data_columns)
        dataset = partitioner.split(
            encoded, test_size=test_size, rng=rng, name=self.name
        )
        X_task, X_data = dataset.X_task, dataset.X_data
        if standardize:
            X_task = Standardizer().fit(dataset.task_train).transform(X_task)
            X_data = Standardizer().fit(dataset.data_train).transform(X_data)
        return PartitionedDataset(
            name=dataset.name,
            X_task=X_task,
            X_data=X_data,
            y=dataset.y,
            task_feature_names=dataset.task_feature_names,
            data_feature_names=dataset.data_feature_names,
            task_columns=dataset.task_columns,
            data_columns=dataset.data_columns,
            train_idx=dataset.train_idx,
            test_idx=dataset.test_idx,
            n_raw_features=self.n_original_features,
        )
