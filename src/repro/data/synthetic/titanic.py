"""Synthetic Titanic: survival of RMS Titanic passengers.

Schema-faithful stand-in for the Kaggle Titanic dataset (891 rows, 11
original variables; after indicator encoding, 10 task-party and 19
data-party features — matching the paper's Table 2 exactly).

Causal story baked into the generator: a socio-economic latent drives
class, fare, cabin deck and title; survival is driven strongly by sex
and age (task party) *plus* cabin deck and title (data party), so VFL
with the data party's features yields a substantial performance gain —
Titanic is the paper's large-ΔG dataset (realised ΔG ≈ 0.1–0.2).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Column, ColumnKind, Schema
from repro.data.synthetic.base import (
    RawDataset,
    categorical_column,
    categorical_effect,
    labels_from_score,
    numeric_column,
)
from repro.data.table import Table
from repro.utils.rng import spawn

__all__ = ["TITANIC_SCHEMA", "load_titanic"]

_DECKS = ("A", "B", "C", "D", "E", "F", "G", "T", "U")
_TITLES = ("Mr", "Mrs", "Miss", "Master", "Dr", "Rev", "Other")

TITANIC_SCHEMA = Schema.of(
    [
        Column("pclass", ColumnKind.CATEGORICAL, ("1", "2", "3"), "ticket class"),
        Column("sex", ColumnKind.BINARY, ("male", "female"), "passenger sex"),
        Column("age", ColumnKind.NUMERIC, description="age in years (has missing)"),
        Column("sibsp", ColumnKind.NUMERIC, description="# siblings/spouses aboard"),
        Column("parch", ColumnKind.NUMERIC, description="# parents/children aboard"),
        Column("fare", ColumnKind.NUMERIC, description="ticket fare"),
        Column("family_size", ColumnKind.NUMERIC, description="sibsp + parch + 1"),
        Column("ticket_group", ColumnKind.NUMERIC, description="passengers sharing ticket"),
        Column("embarked", ColumnKind.CATEGORICAL, ("S", "C", "Q"), "port of embarkation"),
        Column("cabin_deck", ColumnKind.CATEGORICAL, _DECKS, "deck letter of cabin"),
        Column("title", ColumnKind.CATEGORICAL, _TITLES, "honorific from name"),
    ],
    label="survived",
    name="titanic",
)

# Task party: passenger manifest basics -> 3+1+1+1+1+1+1+1 = 10 encoded.
_TASK_COLUMNS = (
    "pclass",
    "sex",
    "age",
    "sibsp",
    "parch",
    "fare",
    "family_size",
    "ticket_group",
)
# Data party: enrichment attributes -> 3+9+7 = 19 encoded.
_DATA_COLUMNS = ("embarked", "cabin_deck", "title")


def load_titanic(n_samples: int = 891, *, seed: int = 0) -> RawDataset:
    """Generate the synthetic Titanic dataset.

    Parameters
    ----------
    n_samples:
        Row count; defaults to the real dataset's 891.
    seed:
        Root seed for the generation streams.
    """
    rng = spawn(seed, "titanic", "generate")

    # Socio-economic latent: high = wealthy (1st class, upper decks).
    wealth = rng.standard_normal(n_samples)

    pclass = categorical_column(
        rng, wealth, base_logits=(-0.8, -0.5, 0.6), slopes=(1.6, 0.4, -1.4)
    )
    sex_female = (rng.random(n_samples) < 0.35).astype(np.float64)
    age = numeric_column(
        rng, wealth, rho=0.35, loc=29.7, scale=13.0, clip=(0.4, 80.0),
        round_to=1, missing_rate=0.20,
    )
    sibsp = numeric_column(
        rng, -wealth, rho=0.2, loc=0.5, scale=1.0, clip=(0.0, 8.0), round_to=0
    )
    parch = numeric_column(
        rng, -wealth, rho=0.15, loc=0.4, scale=0.8, clip=(0.0, 6.0), round_to=0
    )
    fare = numeric_column(
        rng, wealth, rho=0.75, loc=2.7, scale=0.9, dist="lognormal", clip=(0.0, 512.0),
        round_to=2,
    )
    family_size = sibsp + parch + 1.0
    ticket_group = np.clip(
        np.round(family_size + rng.poisson(0.3, n_samples)), 1.0, 7.0
    )
    embarked = categorical_column(
        rng, wealth, base_logits=(1.3, 0.0, -1.1), slopes=(-0.3, 0.6, -0.5)
    )
    cabin_deck = categorical_column(
        rng,
        wealth,
        # Mostly unknown deck ("U"); upper decks lean wealthy, but deck
        # assignment keeps substantial independent variation (proximity
        # to lifeboats is not implied by class alone).
        base_logits=(-2.0, -1.4, -1.0, -1.2, -1.3, -1.7, -2.2, -3.6, 1.6),
        slopes=(0.8, 0.9, 0.7, 0.5, 0.2, -0.2, -0.5, 0.1, -0.7),
    )
    # Title correlates with sex and age (Master = boy).
    child = (np.nan_to_num(age, nan=29.7) < 14).astype(np.float64)
    title_latent = 1.8 * sex_female + 1.2 * child + 0.1 * wealth
    title = categorical_column(
        rng,
        title_latent,
        base_logits=(1.8, -1.2, -1.0, -1.6, -2.6, -3.0, -2.8),
        slopes=(-2.0, 1.6, 1.7, 1.1, 0.0, -0.4, 0.3),
    )

    # Survival score: "women and children first", wealth helps, plus
    # *data-party-only* signal through deck location and honorific.
    age_filled = np.nan_to_num(age, nan=29.7)
    score = (
        1.0 * sex_female
        + categorical_effect(pclass, (0.5, 0.05, -0.45))
        - 0.015 * (age_filled - 29.7)
        - 0.22 * np.maximum(family_size - 4.0, 0.0)
        + 0.06 * np.log1p(fare)
        + categorical_effect(
            cabin_deck, (1.2, 2.3, 1.6, 2.5, 2.9, 1.3, -0.9, -1.8, -1.1)
        )
        + categorical_effect(title, (-0.8, 1.1, 1.2, 2.6, 0.2, -2.2, 0.4))
        + categorical_effect(embarked, (-0.3, 0.8, -0.2))
        + 0.30 * rng.standard_normal(n_samples)
    )
    y = labels_from_score(rng, score, positive_rate=0.384)

    table = Table(
        {
            "pclass": pclass,
            "sex": sex_female,
            "age": age,
            "sibsp": sibsp,
            "parch": parch,
            "fare": fare,
            "family_size": family_size,
            "ticket_group": ticket_group,
            "embarked": embarked,
            "cabin_deck": cabin_deck,
            "title": title,
        }
    )
    return RawDataset(
        name="titanic",
        table=table,
        schema=TITANIC_SCHEMA,
        y=y,
        task_columns=_TASK_COLUMNS,
        data_columns=_DATA_COLUMNS,
        n_original_features=11,
    )
