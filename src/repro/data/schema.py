"""Dataset schemas: typed column descriptions.

A :class:`Schema` is an ordered collection of :class:`Column` entries
describing a raw (pre-encoding) dataset.  Categorical columns carry
their category labels so indicator encoding can name the expanded
features deterministically (``"embarked=S"`` etc.), which in turn lets
the vertical partitioner keep all indicators of one original feature on
the same party — the invariant the paper states in §4.1.1.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.utils.validation import require

__all__ = ["Column", "ColumnKind", "Schema"]


class ColumnKind(enum.Enum):
    """The storage/encoding class of a raw column."""

    NUMERIC = "numeric"
    """Real-valued; kept as a single standardised feature."""

    BINARY = "binary"
    """Two-valued; kept as a single 0/1 indicator."""

    CATEGORICAL = "categorical"
    """Multi-class; expanded into one indicator feature per category."""


@dataclass(frozen=True)
class Column:
    """Description of one raw dataset column.

    Parameters
    ----------
    name:
        Unique column identifier.
    kind:
        Storage class; drives how preprocessing encodes the column.
    categories:
        Category labels for :attr:`ColumnKind.CATEGORICAL` columns
        (order defines the code values stored in the table).  Binary
        columns may name their two states; numeric columns leave this
        empty.
    description:
        Optional human-readable note (used by dataset reports).
    """

    name: str
    kind: ColumnKind
    categories: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        require(bool(self.name), "column name must be non-empty")
        if self.kind is ColumnKind.CATEGORICAL:
            require(
                len(self.categories) >= 2,
                f"categorical column {self.name!r} needs >= 2 categories",
            )
            require(
                len(set(self.categories)) == len(self.categories),
                f"categorical column {self.name!r} has duplicate categories",
            )
        if self.kind is ColumnKind.BINARY and self.categories:
            require(
                len(self.categories) == 2,
                f"binary column {self.name!r} must name exactly 2 states",
            )

    @property
    def n_encoded(self) -> int:
        """Number of features this column expands to under indicator encoding."""
        if self.kind is ColumnKind.CATEGORICAL:
            return len(self.categories)
        return 1

    def encoded_names(self) -> list[str]:
        """Names of the features this column expands to."""
        if self.kind is ColumnKind.CATEGORICAL:
            return [f"{self.name}={cat}" for cat in self.categories]
        return [self.name]


@dataclass(frozen=True)
class Schema:
    """Ordered collection of feature columns plus the label column name.

    The label is always held by the task party and never encoded as a
    feature; it is tracked here only so loaders can validate tables.
    """

    columns: tuple[Column, ...]
    label: str = "label"
    name: str = ""
    _index: dict[str, Column] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        require(len(set(names)) == len(names), "schema has duplicate column names")
        require(self.label not in names, "label must not also be a feature column")
        object.__setattr__(self, "_index", {c.name: c for c in self.columns})

    @classmethod
    def of(cls, columns: Iterable[Column], *, label: str = "label", name: str = "") -> "Schema":
        """Build a schema from any iterable of columns."""
        return cls(columns=tuple(columns), label=label, name=name)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> Column:
        """Look up a column by name, raising ``KeyError`` with context."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"schema {self.name or '<anonymous>'} has no column {name!r}; "
                f"known: {sorted(self._index)}"
            ) from None

    @property
    def feature_names(self) -> list[str]:
        """Raw (pre-encoding) feature column names, in order."""
        return [c.name for c in self.columns]

    @property
    def n_raw_features(self) -> int:
        """Number of original feature columns (paper Table 2, row 2)."""
        return len(self.columns)

    @property
    def n_encoded_features(self) -> int:
        """Total features after indicator encoding."""
        return sum(c.n_encoded for c in self.columns)

    def select(self, names: Iterable[str]) -> "Schema":
        """Schema restricted to ``names`` (order taken from ``names``)."""
        return Schema.of(
            (self.column(n) for n in names), label=self.label, name=self.name
        )

    def encoded_names(self) -> list[str]:
        """All encoded feature names, in schema order."""
        out: list[str] = []
        for col in self.columns:
            out.extend(col.encoded_names())
        return out
