"""Market-level bargaining configuration.

One :class:`MarketConfig` fixes everything both parties agree on before
the game starts: the task party's economics (utility rate ``u``, budget
``B``), the opening quote components, the termination tolerances, and
the protocol constants (round cap, candidate-set size, exploration
length for imperfect information).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import require

__all__ = ["MarketConfig"]


@dataclass(frozen=True)
class MarketConfig:
    """Shared constants of one bargaining game.

    Attributes
    ----------
    utility_rate:
        ``u`` — task party's utility per unit of ΔG (must exceed any
        payment rate, Assumption of §3.4.2).
    budget:
        ``B`` — hard cap on the highest payment ``Ph``.
    initial_rate / initial_base:
        ``p^0`` and ``P0^0`` of the opening quote.
    target_gain:
        ΔG* the task party aims for; ``None`` lets strategies derive it
        (perfect info: top of the known gain distribution).
    target_quantile:
        Quantile of the known gains used when ``target_gain`` is None.
    eps_d / eps_t:
        Termination tolerances of Cases 2 and 5.
    eps_dc / eps_tc:
        Cost-tolerances of Eqs. 6-7 (cost-aware acceptance).
    max_rounds:
        Bargaining cap; exceeding it fails the transaction (§4.1.2
        uses 500).
    n_price_samples:
        Size of the candidate quote set sampled per re-quote
        (Algorithm 1, line 16).
    exploration_rounds:
        ``N`` — rounds with relaxed termination under imperfect
        information (§4.4 uses 100).
    """

    utility_rate: float
    budget: float
    initial_rate: float
    initial_base: float
    target_gain: float | None = None
    target_quantile: float = 1.0
    eps_d: float = 1e-3
    eps_t: float = 1e-3
    eps_dc: float = 1e-2
    eps_tc: float = 1e-2
    max_rounds: int = 500
    n_price_samples: int = 120
    exploration_rounds: int = 100

    def __post_init__(self) -> None:
        require(self.utility_rate > 0, "utility_rate must be > 0")
        require(self.initial_rate > 0, "initial_rate must be > 0")
        require(
            self.utility_rate > self.initial_rate,
            "individual rationality requires u > p0",
        )
        require(self.initial_base >= 0, "initial_base must be >= 0")
        require(self.budget > self.initial_base, "budget must exceed initial_base")
        require(0 < self.target_quantile <= 1.0, "target_quantile in (0, 1]")
        require(self.eps_d >= 0 and self.eps_t >= 0, "tolerances must be >= 0")
        require(self.max_rounds >= 1, "max_rounds must be >= 1")
        require(self.n_price_samples >= 1, "n_price_samples must be >= 1")
        require(self.exploration_rounds >= 0, "exploration_rounds must be >= 0")

    def with_overrides(self, **kwargs: object) -> "MarketConfig":
        """A modified copy (dataclass ``replace`` with validation)."""
        return replace(self, **kwargs)
