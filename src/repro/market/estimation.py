"""Online ΔG estimators for the imperfect-information setting (§3.5.1).

* :class:`TaskGainEstimator` — the task party's ``f(p, P0, Ph) → ΔG``
  (Eq. 9): a 3-layer MLP (64/32/16) over a normalised price feature
  vector.  The paper notes ``f`` is trained only on quotes conforming
  to the Eq. 5 constraint, focusing it on equilibrium-consistent
  prices.
* :class:`DataGainEstimator` — the data party's ``g(F) → ΔG`` (Eq. 8):
  per-feature embeddings averaged over the bundle, then the same MLP
  trunk (§4.4's ``nn.Embedding`` + mean construction).

Both train **while bargaining**: each VFL course appends one labelled
sample to a replay buffer and triggers a handful of gradient passes
over it.  ``mse_history`` records the post-update buffer MSE each
round — the series plotted in the paper's Figure 4.
"""

from __future__ import annotations

import numpy as np

from repro.market.bundle import FeatureBundle
from repro.market.pricing import QuotedPrice
from repro.ml.nn.regressor import MLPRegressor, SetEmbeddingRegressor
from repro.utils.rng import spawn
from repro.utils.validation import require

__all__ = ["DataGainEstimator", "TaskGainEstimator"]


class TaskGainEstimator:
    """Price-to-gain regressor with running input normalisation."""

    def __init__(
        self,
        *,
        hidden: tuple[int, ...] = (64, 32, 16),
        lr: float = 5e-3,
        train_passes: int = 8,
        rng: object = None,
    ):
        self.model = MLPRegressor(4, hidden, lr=lr, rng=spawn(rng, "task_estimator"))
        self.train_passes = int(train_passes)
        self._quotes: list[tuple[float, float, float, float]] = []
        self._gains: list[float] = []
        self.mse_history: list[float] = []

    @staticmethod
    def _raw_features(quote: QuotedPrice) -> tuple[float, float, float, float]:
        # The turning point is *the* decision quantity; giving it to the
        # network explicitly accelerates convergence markedly.
        return (*quote.as_tuple(), quote.turning_point)

    def _design(self, quotes: list[QuotedPrice]) -> np.ndarray:
        X = np.asarray([self._raw_features(q) for q in quotes], dtype=np.float64)
        if self._quotes:
            ref = np.asarray(self._quotes, dtype=np.float64)
            mean, std = ref.mean(axis=0), ref.std(axis=0)
        else:
            mean, std = np.zeros(4), np.ones(4)
        std = np.where(std < 1e-9, 1.0, std)
        return (X - mean) / std

    @property
    def n_observations(self) -> int:
        """Replay-buffer size."""
        return len(self._gains)

    def observe(self, quote: QuotedPrice, delta_g: float) -> None:
        """Append one (quote, realised ΔG) sample and update the network."""
        self._quotes.append(self._raw_features(quote))
        self._gains.append(float(delta_g))
        ref = np.asarray(self._quotes, dtype=np.float64)
        mean, std = ref.mean(axis=0), ref.std(axis=0)
        std = np.where(std < 1e-9, 1.0, std)
        X = (ref - mean) / std
        y = np.asarray(self._gains)
        self.model.partial_fit(X, y, steps=self.train_passes)
        self.mse_history.append(self.model.mse(X, y))

    def predict(self, quotes: list[QuotedPrice]) -> np.ndarray:
        """Predicted ΔG for candidate quotes (zeros before any data)."""
        require(bool(quotes), "need at least one quote")
        if not self._gains:
            return np.zeros(len(quotes))
        return self.model.predict(self._design(quotes))


class DataGainEstimator:
    """Bundle-to-gain regressor over mean feature embeddings."""

    def __init__(
        self,
        n_features: int,
        *,
        embed_dim: int = 16,
        hidden: tuple[int, ...] = (64, 32, 16),
        lr: float = 5e-3,
        train_passes: int = 8,
        rng: object = None,
    ):
        self.model = SetEmbeddingRegressor(
            n_features,
            embed_dim=embed_dim,
            hidden=hidden,
            lr=lr,
            rng=spawn(rng, "data_estimator"),
        )
        self.train_passes = int(train_passes)
        self._bundles: list[FeatureBundle] = []
        self._gains: list[float] = []
        self.mse_history: list[float] = []

    @property
    def n_observations(self) -> int:
        """Replay-buffer size."""
        return len(self._gains)

    def observe(self, bundle: FeatureBundle, delta_g: float) -> None:
        """Append one (bundle, realised ΔG) sample and update the network."""
        self._bundles.append(bundle)
        self._gains.append(float(delta_g))
        sets = [list(b) for b in self._bundles]
        y = np.asarray(self._gains)
        self.model.partial_fit(sets, y, steps=self.train_passes)
        self.mse_history.append(self.model.mse(sets, y))

    def predict(self, bundles: list[FeatureBundle]) -> np.ndarray:
        """Predicted ΔG for candidate bundles (zeros before any data)."""
        require(bool(bundles), "need at least one bundle")
        if not self._gains:
            return np.zeros(len(bundles))
        return self.model.predict([list(b) for b in bundles])
