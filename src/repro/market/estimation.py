"""Online ΔG estimators for the imperfect-information setting (§3.5.1).

* :class:`TaskGainEstimator` — the task party's ``f(p, P0, Ph) → ΔG``
  (Eq. 9): a 3-layer MLP (64/32/16) over a normalised price feature
  vector.  The paper notes ``f`` is trained only on quotes conforming
  to the Eq. 5 constraint, focusing it on equilibrium-consistent
  prices.
* :class:`DataGainEstimator` — the data party's ``g(F) → ΔG`` (Eq. 8):
  per-feature embeddings averaged over the bundle, then the same MLP
  trunk (§4.4's ``nn.Embedding`` + mean construction).

Both train **while bargaining**: each VFL course appends one labelled
sample to a replay buffer and triggers a handful of gradient passes
over it.  ``mse_history`` records the post-update buffer MSE each
round — the series plotted in the paper's Figure 4.

The replay buffers are maintained incrementally: raw samples live in
amortised-growth arrays, bundles are validated/converted exactly once
on arrival, and normalisation moments are taken straight off the
stored array — so each round costs one appended row plus the
(vectorised) gradient passes, not a from-scratch rebuild and
re-validation of the entire Python-object buffer, whose cost grew
quadratically with the number of rounds.  Training trajectories equal
the rebuild-everything reference bit for bit
(``tests/market/test_estimation.py``).
"""

from __future__ import annotations

import numpy as np

from repro.market.bundle import FeatureBundle
from repro.market.pricing import QuotedPrice
from repro.ml.nn.regressor import MLPRegressor, SetEmbeddingRegressor
from repro.utils.rng import spawn
from repro.utils.validation import require

__all__ = ["DataGainEstimator", "TaskGainEstimator"]

_INITIAL_CAPACITY = 64


class TaskGainEstimator:
    """Price-to-gain regressor with running input normalisation."""

    def __init__(
        self,
        *,
        hidden: tuple[int, ...] = (64, 32, 16),
        lr: float = 5e-3,
        train_passes: int = 8,
        rng: object = None,
    ):
        self.model = MLPRegressor(4, hidden, lr=lr, rng=spawn(rng, "task_estimator"))
        self.train_passes = int(train_passes)
        self._X_raw = np.empty((_INITIAL_CAPACITY, 4), dtype=np.float64)
        self._y = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._n = 0
        self._mean = np.zeros(4)
        self._std = np.ones(4)
        self.mse_history: list[float] = []

    @staticmethod
    def _raw_features(quote: QuotedPrice) -> tuple[float, float, float, float]:
        # The turning point is *the* decision quantity; giving it to the
        # network explicitly accelerates convergence markedly.
        return (*quote.as_tuple(), quote.turning_point)

    def _design(self, quotes: list[QuotedPrice]) -> np.ndarray:
        X = np.asarray([self._raw_features(q) for q in quotes], dtype=np.float64)
        return (X - self._mean) / self._std

    @property
    def n_observations(self) -> int:
        """Replay-buffer size."""
        return self._n

    def _append(self, row: np.ndarray, target: float) -> None:
        if self._n == self._X_raw.shape[0]:
            grow = 2 * self._X_raw.shape[0]
            self._X_raw = np.concatenate(
                [self._X_raw, np.empty_like(self._X_raw)]
            )[:grow]
            self._y = np.concatenate([self._y, np.empty_like(self._y)])[:grow]
        self._X_raw[self._n] = row
        self._y[self._n] = target
        self._n += 1
        # Two-pass moments over the stored buffer: O(n) vectorised (the
        # same order as the gradient passes that follow) and immune to
        # the catastrophic cancellation a running sum-of-squares shows
        # on large-offset/small-spread features.
        buf = self._X_raw[: self._n]
        std = buf.std(axis=0)
        self._mean = buf.mean(axis=0)
        self._std = np.where(std < 1e-9, 1.0, std)

    def observe(self, quote: QuotedPrice, delta_g: float) -> None:
        """Append one (quote, realised ΔG) sample and update the network."""
        self._append(
            np.asarray(self._raw_features(quote), dtype=np.float64), float(delta_g)
        )
        X = (self._X_raw[: self._n] - self._mean) / self._std
        y = self._y[: self._n]
        self.model.partial_fit(X, y, steps=self.train_passes)
        self.mse_history.append(self.model.mse(X, y))

    def predict(self, quotes: list[QuotedPrice]) -> np.ndarray:
        """Predicted ΔG for candidate quotes (zeros before any data)."""
        require(bool(quotes), "need at least one quote")
        if not self._n:
            return np.zeros(len(quotes))
        return self.model.predict(self._design(quotes))


class DataGainEstimator:
    """Bundle-to-gain regressor over mean feature embeddings."""

    def __init__(
        self,
        n_features: int,
        *,
        embed_dim: int = 16,
        hidden: tuple[int, ...] = (64, 32, 16),
        lr: float = 5e-3,
        train_passes: int = 8,
        rng: object = None,
    ):
        self.model = SetEmbeddingRegressor(
            n_features,
            embed_dim=embed_dim,
            hidden=hidden,
            lr=lr,
            rng=spawn(rng, "data_estimator"),
        )
        self.train_passes = int(train_passes)
        # Bundles are validated and converted to index arrays exactly
        # once, on arrival; later rounds reuse the converted batch.
        self._sets: list[np.ndarray] = []
        self._y = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self.mse_history: list[float] = []

    @property
    def n_observations(self) -> int:
        """Replay-buffer size."""
        return len(self._sets)

    def observe(self, bundle: FeatureBundle, delta_g: float) -> None:
        """Append one (bundle, realised ΔG) sample and update the network."""
        self._sets.append(self.model.validate_set(list(bundle)))
        n = len(self._sets)
        if n > self._y.shape[0]:
            self._y = np.concatenate([self._y, np.empty_like(self._y)])
        self._y[n - 1] = float(delta_g)
        y = self._y[:n]
        self.model.partial_fit(
            self._sets, y, steps=self.train_passes, validate=False
        )
        self.mse_history.append(self.model.mse(self._sets, y, validate=False))

    def predict(self, bundles: list[FeatureBundle]) -> np.ndarray:
        """Predicted ΔG for candidate bundles (zeros before any data)."""
        require(bool(bundles), "need at least one bundle")
        if not self._sets:
            return np.zeros(len(bundles))
        return self.model.predict([list(b) for b in bundles])
