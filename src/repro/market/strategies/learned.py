"""Learning-based offer generation: the paper's §6 limitation 2, implemented.

The paper notes that its *"sampling-evaluation based quoted pricing
choosing strategy is straightforward but not efficient and the task
party can employ automatic bargaining offer strategy, such as learning
based, to optimize the efficiency of offer generating."*

:class:`LearnedTaskParty` instantiates that suggestion with a simple
contextual bandit over **concession step sizes**: instead of sampling
candidate caps uniformly over the remaining budget and taking the
minimum (Algorithm 1's rule), it maintains arms = fractional concession
steps, scores each by observed *gain improvement per unit of cap
conceded*, and picks ε-greedily.  Quotes remain Eq.5-consistent, so all
equilibrium guarantees of the strategic variant carry over — only the
escalation schedule is learned.

The ablation bench (`bench_ablation_learned.py`) compares it against
the sampling strategy on rounds-to-agreement and final net profit.
"""

from __future__ import annotations

import numpy as np

from repro.market.config import MarketConfig
from repro.market.pricing import QuotedPrice
from repro.market.strategies.base import TaskDecision, TaskStrategy
from repro.market.termination import (
    Decision,
    task_accepts,
    task_fails_regression,
)
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["LearnedTaskParty"]

#: Concession arms: fraction of the remaining budget conceded per round.
_DEFAULT_ARMS = (0.02, 0.05, 0.10, 0.20, 0.40)


class LearnedTaskParty(TaskStrategy):
    """Bandit-paced equilibrium-targeting buyer.

    Parameters
    ----------
    config:
        Shared market constants (the target gain must be resolvable,
        as for the strategic buyer).
    known_gains:
        The platform-disclosed gain catalogue (values only).
    arms:
        Candidate concession fractions of the remaining budget.
    epsilon:
        Exploration probability of the ε-greedy arm choice.
    """

    def __init__(
        self,
        config: MarketConfig,
        known_gains: list[float],
        *,
        arms: tuple[float, ...] = _DEFAULT_ARMS,
        epsilon: float = 0.2,
        rng: object = None,
    ):
        require(bool(known_gains), "perfect information requires the gain catalogue")
        require(all(0 < a <= 1 for a in arms), "arms must be fractions in (0, 1]")
        require(0.0 <= epsilon <= 1.0, "epsilon must be in [0, 1]")
        self.config = config
        self.rng = as_generator(rng)
        self.arms = tuple(arms)
        self.epsilon = float(epsilon)
        if config.target_gain is not None:
            self.target = float(config.target_gain)
        else:
            self.target = float(np.quantile(known_gains, config.target_quantile))
        require(self.target > 0, "target gain must be positive")
        opening_cap = config.initial_base + config.initial_rate * self.target
        require(opening_cap <= config.budget, "opening cap exceeds budget")
        self._opening = QuotedPrice(
            rate=config.initial_rate, base=config.initial_base, cap=opening_cap
        )
        # Bandit state: average reward (ΔG gained per unit cap) per arm.
        self._arm_value = np.zeros(len(self.arms))
        self._arm_count = np.zeros(len(self.arms))
        self._last_arm: int | None = None
        self._last_gain: float | None = None
        self._last_cap: float | None = None
        self._offer_trail: list[tuple[float, float, float]] = []

    def initial_quote(self) -> QuotedPrice:
        """Same Eq.5-consistent opening as the strategic buyer."""
        return self._opening

    # ------------------------------------------------------------------
    def observe(self, quote: QuotedPrice, bundle: object, delta_g: float) -> None:
        """Credit the previous concession with its gain-per-cap reward."""
        self._offer_trail.append((quote.rate, quote.base, float(delta_g)))
        if (
            self._last_arm is not None
            and self._last_gain is not None
            and self._last_cap is not None
        ):
            conceded = max(quote.cap - self._last_cap, 1e-9)
            reward = (delta_g - self._last_gain) / conceded
            i = self._last_arm
            self._arm_count[i] += 1
            self._arm_value[i] += (reward - self._arm_value[i]) / self._arm_count[i]
        self._last_gain = float(delta_g)
        self._last_cap = quote.cap

    def _best_dominated_previous(self, quote: QuotedPrice) -> float:
        best = float("-inf")
        for rate, base, gain in self._offer_trail[:-1]:
            if quote.rate >= rate - 1e-12 and quote.base >= base - 1e-12:
                best = max(best, gain)
        return best

    def _pick_arm(self) -> int:
        unexplored = np.flatnonzero(self._arm_count == 0)
        if unexplored.size:
            return int(unexplored[0])
        if float(self.rng.random()) < self.epsilon:
            return int(self.rng.integers(0, len(self.arms)))
        return int(np.argmax(self._arm_value))

    def decide(
        self, quote: QuotedPrice, delta_g: float, round_number: int
    ) -> TaskDecision:
        """Cases 4-6 with bandit-paced escalation in Case 6."""
        cfg = self.config
        if task_fails_regression(
            self._opening, delta_g, self._best_dominated_previous(quote), cfg.utility_rate
        ):
            return TaskDecision(Decision.FAIL)
        if task_accepts(quote, delta_g, cfg.eps_t):
            return TaskDecision(Decision.ACCEPT)
        headroom = cfg.budget - quote.cap
        if headroom <= 1e-9:
            return TaskDecision(Decision.ACCEPT)
        arm = self._pick_arm()
        self._last_arm = arm
        cap = quote.cap + self.arms[arm] * headroom
        rate_high = min(cfg.utility_rate, (cap - cfg.initial_base) / self.target)
        if rate_high <= cfg.initial_rate:
            return TaskDecision(Decision.ACCEPT)
        rate = float(self.rng.uniform(cfg.initial_rate, rate_high))
        base = cap - rate * self.target
        return TaskDecision(
            Decision.CONTINUE, QuotedPrice(rate=rate, base=base, cap=cap)
        )
