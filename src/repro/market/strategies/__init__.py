"""Bargaining strategies: strategic, baselines, and estimation-based."""

from repro.market.strategies.base import (
    DataResponse,
    DataStrategy,
    TaskDecision,
    TaskStrategy,
)
from repro.market.strategies.baselines import (
    IncreasePriceTaskParty,
    RandomBundleDataParty,
)
from repro.market.strategies.data_party import StrategicDataParty, select_offer
from repro.market.strategies.imperfect import ImperfectDataParty, ImperfectTaskParty
from repro.market.strategies.learned import LearnedTaskParty
from repro.market.strategies.task_party import StrategicTaskParty

__all__ = [
    "DataResponse",
    "DataStrategy",
    "ImperfectDataParty",
    "ImperfectTaskParty",
    "IncreasePriceTaskParty",
    "LearnedTaskParty",
    "RandomBundleDataParty",
    "StrategicDataParty",
    "StrategicTaskParty",
    "TaskDecision",
    "TaskStrategy",
    "select_offer",
]
