"""The paper's non-strategic comparison variants (§4.2).

* **Increase Price** — the task party ignores the Eq. 5 equilibrium
  constraint and simply inflates all three price components by random
  multiplicative factors each round.  It still terminates through
  Cases 4-6, but nothing ties the turning point to a target gain, so it
  converges slower and routinely overpays relative to the reserved
  price (Figure 2's right-hand densities).
* **Random Bundle** — the data party filters by reserved price but then
  offers an arbitrary affordable bundle instead of tracking the turning
  point.  Weak random offers frequently violate the task party's
  break-even bound and fail the transaction early (Case 4), which is
  exactly the pathology the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.market.bundle import FeatureBundle
from repro.market.config import MarketConfig
from repro.market.pricing import QuotedPrice, ReservedPrice
from repro.market.strategies.base import (
    DataResponse,
    DataStrategy,
    TaskDecision,
    TaskStrategy,
)
from repro.market.termination import (
    Decision,
    data_accepts,
    no_affordable_bundle,
    task_accepts,
    task_fails_regression,
)
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["IncreasePriceTaskParty", "RandomBundleDataParty"]


class IncreasePriceTaskParty(TaskStrategy):
    """Arbitrary price escalation without the Eq. 5 structure.

    Each continuation multiplies ``p`` and ``P0`` by ``1 + U(0, rate_step)``
    and ``Ph`` by ``1 + U(0, cap_step)``, clipped to the utility rate
    and budget.  The rate grows relatively faster than the cap, so the
    turning point drifts downward and the game does terminate — just
    later and at a worse price than the strategic variant.
    """

    def __init__(
        self,
        config: MarketConfig,
        known_gains: list[float],
        *,
        rate_step: float = 0.020,
        cap_step: float = 0.007,
        base_step: float = 0.006,
        rng: object = None,
    ):
        require(bool(known_gains), "perfect information requires the gain catalogue")
        self.config = config
        self.rng = as_generator(rng)
        self.rate_step = float(rate_step)
        self.cap_step = float(cap_step)
        self.base_step = float(base_step)
        if config.target_gain is not None:
            self.target = float(config.target_gain)
        else:
            self.target = float(np.quantile(known_gains, config.target_quantile))
        self._offer_trail: list[tuple[float, float, float]] = []

    def observe(self, quote: QuotedPrice, bundle: object, delta_g: float) -> None:
        """Track the (quote, gain) trail for the Case-4 regression test."""
        self._offer_trail.append((quote.rate, quote.base, float(delta_g)))

    def _best_dominated_previous(self, quote: QuotedPrice) -> float:
        """Best gain among earlier rounds whose quote the current one dominates.

        If the standing quote is component-wise at least as generous as
        the quote that obtained some earlier gain, a rational seller's
        affordable set can only have grown — so offering less than that
        gain now is genuine regression, not an artefact of the buyer's
        own price path.
        """
        best = float("-inf")
        for rate, base, gain in self._offer_trail[:-1]:
            if quote.rate >= rate - 1e-12 and quote.base >= base - 1e-12:
                best = max(best, gain)
        return best

    def initial_quote(self) -> QuotedPrice:
        """Same opening quote as the strategic variant (same initial state)."""
        cfg = self.config
        return QuotedPrice(
            rate=cfg.initial_rate,
            base=cfg.initial_base,
            cap=cfg.initial_base + cfg.initial_rate * self.target,
        )

    def decide(
        self, quote: QuotedPrice, delta_g: float, round_number: int
    ) -> TaskDecision:
        """Cases 4-6, with arbitrary escalation in Case 6."""
        cfg = self.config
        # Case 4's regression reading, matching the strategic variant.
        if task_fails_regression(
            self.initial_quote(),
            delta_g,
            self._best_dominated_previous(quote),
            cfg.utility_rate,
        ):
            return TaskDecision(Decision.FAIL)
        if task_accepts(quote, delta_g, cfg.eps_t):
            return TaskDecision(Decision.ACCEPT)
        rate = min(
            quote.rate * (1.0 + float(self.rng.uniform(0.0, self.rate_step))),
            cfg.utility_rate * 0.5,
        )
        base = quote.base * (1.0 + float(self.rng.uniform(0.0, self.base_step)))
        cap = min(
            quote.cap * (1.0 + float(self.rng.uniform(0.0, self.cap_step))),
            cfg.budget,
        )
        base = min(base, cap)
        if rate <= quote.rate and base <= quote.base and cap <= quote.cap:
            # Fully saturated price box: nothing left to concede.
            return TaskDecision(Decision.ACCEPT)
        return TaskDecision(
            Decision.CONTINUE, QuotedPrice(rate=rate, base=base, cap=cap)
        )


class RandomBundleDataParty(DataStrategy):
    """Reserved-price filtering followed by an arbitrary offer."""

    def __init__(
        self,
        gains: dict[FeatureBundle, float],
        reserved_prices: dict[FeatureBundle, ReservedPrice],
        config: MarketConfig,
        *,
        rng: object = None,
    ):
        require(bool(gains), "data party needs a non-empty catalogue")
        self.gains = dict(gains)
        self.reserved_prices = dict(reserved_prices)
        self.config = config
        self.rng = as_generator(rng)

    def respond(self, quote: QuotedPrice, round_number: int) -> DataResponse:
        """Case 1 filter, then a uniformly random affordable bundle."""
        affordable = [
            b
            for b in self.gains
            if self.reserved_prices[b].satisfied_by(quote)
        ]
        if no_affordable_bundle(len(affordable)):
            return DataResponse(Decision.FAIL)
        bundle = affordable[int(self.rng.integers(0, len(affordable)))]
        if data_accepts(quote, self.gains[bundle], self.config.eps_d):
            return DataResponse(Decision.ACCEPT, bundle)
        return DataResponse(Decision.CONTINUE, bundle)
