"""Strategy interfaces shared by the bargaining engine.

The engine runs the paper's Step 1-3 loop (§3.3) and delegates all
decision making to two strategy objects:

* a :class:`TaskStrategy` opens with a quote and, after each VFL
  course, decides fail / accept / re-quote (Cases 4-6 or IV-VI);
* a :class:`DataStrategy` answers each quote with fail / a bundle offer
  / an accepting bundle offer (Cases 1-3 or I-III).

``observe`` hooks deliver each round's realised ΔG so learning
strategies (imperfect information) can update their estimators.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.market.bundle import FeatureBundle
from repro.market.pricing import QuotedPrice
from repro.market.termination import Decision

__all__ = ["DataResponse", "DataStrategy", "TaskDecision", "TaskStrategy"]


@dataclass(frozen=True)
class DataResponse:
    """The data party's reply to a quote.

    ``decision`` is FAIL (Case 1), ACCEPT (Case 2: terminate with the
    offered bundle), or CONTINUE (Case 3: offer and keep bargaining).
    ``bundle`` is None only for FAIL.
    """

    decision: Decision
    bundle: FeatureBundle | None = None


@dataclass(frozen=True)
class TaskDecision:
    """The task party's reaction to a realised gain.

    ``decision`` is FAIL (Case 4), ACCEPT (Case 5), or CONTINUE with a
    new ``quote`` (Case 6).  ``quote`` is None unless CONTINUE.
    """

    decision: Decision
    quote: QuotedPrice | None = None


class TaskStrategy:
    """Interface for the leading (buying) party."""

    def initial_quote(self) -> QuotedPrice:  # pragma: no cover - interface
        """The opening quote (Algorithm 1, line 2)."""
        raise NotImplementedError

    def decide(
        self, quote: QuotedPrice, delta_g: float, round_number: int
    ) -> TaskDecision:  # pragma: no cover - interface
        """React to the realised ΔG of the current round."""
        raise NotImplementedError

    def observe(
        self, quote: QuotedPrice, bundle: FeatureBundle, delta_g: float
    ) -> None:
        """Learning hook; default is stateless."""

    def exploring(self, round_number: int) -> bool:
        """True while termination rules are relaxed (Case VII)."""
        return False


class DataStrategy:
    """Interface for the responding (selling) party."""

    def respond(
        self, quote: QuotedPrice, round_number: int
    ) -> DataResponse:  # pragma: no cover - interface
        """Select a bundle for the quote (Algorithm 1, lines 19-25)."""
        raise NotImplementedError

    def observe(
        self, quote: QuotedPrice, bundle: FeatureBundle, delta_g: float
    ) -> None:
        """Learning hook; default is stateless."""

    def exploring(self, round_number: int) -> bool:
        """True while termination rules are relaxed (Case VII)."""
        return False
