"""The strategic task party under perfect performance information (§3.4.2).

Opening move: target a performance gain ΔG* and quote
``(p0, P0^0, Ph^0)`` satisfying the equilibrium criterion
``(Ph − P0)/p = ΔG*`` (Eq. 5).  On each Case-6 continuation it samples
a finite candidate set of *escalated* quotes that keep satisfying
Eq. 5 and picks the one with the lowest cap — the cheapest quote that
could still unlock the target bundle (Algorithm 1, lines 16-17).

The Eq. 5 constraint is what produces the paper's headline behaviour:
because every quote's turning point *is* the target, the rate can never
inflate past ``(Ph − P0^0)/ΔG*``, so final rates land just above the
data party's reserved rate instead of overshooting (Figure 2 d/i/n).
"""

from __future__ import annotations

import numpy as np

from repro.market.config import MarketConfig
from repro.market.costs import CostModel, NoCost
from repro.market.pricing import QuotedPrice
from repro.market.strategies.base import TaskDecision, TaskStrategy
from repro.market.termination import (
    Decision,
    task_accepts,
    task_accepts_with_cost,
    task_fails_regression,
)
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["StrategicTaskParty"]


class StrategicTaskParty(TaskStrategy):
    """Equilibrium-targeting buyer (perfect information).

    Parameters
    ----------
    config:
        Shared market constants.
    known_gains:
        The |F| performance-gain values the trusted platform disclosed
        (values only — bundle identities stay private, §3.4).
    cost_model:
        Bargaining cost ``C_t``; enables the Eq. 7 acceptance rule.
    """

    def __init__(
        self,
        config: MarketConfig,
        known_gains: list[float],
        *,
        cost_model: CostModel | None = None,
        rng: object = None,
    ):
        require(bool(known_gains), "perfect information requires the gain catalogue")
        self.config = config
        self.rng = as_generator(rng)
        self.cost_model = cost_model
        if config.target_gain is not None:
            self.target = float(config.target_gain)
        else:
            self.target = float(np.quantile(known_gains, config.target_quantile))
        require(self.target > 0, "target gain must be positive")
        opening_cap = config.initial_base + config.initial_rate * self.target
        require(
            opening_cap <= config.budget,
            f"opening cap {opening_cap:.3f} exceeds budget {config.budget:.3f}; "
            "raise the budget or lower the target",
        )
        self._current = QuotedPrice(
            rate=config.initial_rate, base=config.initial_base, cap=opening_cap
        )
        # Case 4 uses the *regression* reading (see
        # :func:`repro.market.termination.task_fails_regression`): the
        # opening quote anchors the break-even bar and offers only kill
        # the game when they fall below the best gain seen so far.
        self._opening = self._current
        self._offer_trail: list[tuple[float, float, float]] = []

    def initial_quote(self) -> QuotedPrice:
        """Opening quote satisfying Eq. 5 for the target gain."""
        return self._current

    # ------------------------------------------------------------------
    def _best_escalation(self, current: QuotedPrice) -> QuotedPrice | None:
        """Min-cap escalated Eq.5-consistent candidate (Algorithm 1,
        lines 16-17); ``None`` when the budget leaves no headroom.

        Following the algorithm's constraints, rates are sampled in
        ``(p0, u]`` and bases bounded below by ``P0^0`` — both relative
        to the *opening* quote, so the rate/base split along the Eq. 5
        line is re-explored every round.  Only the cap must exceed the
        current one (the "incremental adjustment"), which guarantees
        progress; min-cap selection (line 17) keeps each concession as
        small as the candidate set allows.

        Because every candidate keeps ``p >= p0`` and ``P0 >= P0^0``,
        bundles affordable under the opening quote stay affordable in
        every later round — the mid-game offer set can only grow.

        The sampling loop is the engine's per-round hot path (two RNG
        draws per candidate, ``n_price_samples`` candidates per round),
        so the draws are taken as one block.  The block is drawn from a
        saved bit-generator state which is then rewound and advanced by
        the *exact* number of doubles the equivalent scalar loop would
        have consumed — ``uniform(a, b)`` is ``a + (b - a) * random()``
        draw-for-draw, so the selected quote, and every draw any later
        round sees, are bit-identical to the scalar loop's.
        """
        cfg = self.config
        cap_low = current.cap
        if cap_low >= cfg.budget - 1e-12:
            return None
        n = cfg.n_price_samples
        bitgen = self.rng.bit_generator
        if not hasattr(bitgen, "advance"):  # e.g. MT19937
            return self._best_escalation_scalar(current)
        state = bitgen.state
        # One block instead of up to 2n scalar uniform() calls.  The
        # rate draw for candidate i happens (in stream order) right
        # after its cap draw and only when the cap is usable, so the
        # tape position of each draw is replayed below.
        tape = self.rng.random(2 * n)
        span = cfg.budget - cap_low
        rate_low = cfg.initial_rate
        base0 = cfg.initial_base
        rate_cap = cfg.utility_rate
        target = self.target
        idx = 0
        best_cap = float("inf")
        best_rate = 0.0
        for _ in range(n):
            cap = cap_low + span * tape[idx]
            idx += 1
            if cap <= cap_low + 1e-12:
                continue
            rate_high = min(rate_cap, (cap - base0) / target)
            if rate_high <= rate_low:
                continue
            rate = rate_low + (rate_high - rate_low) * tape[idx]
            idx += 1
            if cap < best_cap:
                best_cap = cap
                best_rate = rate
        # Leave the generator exactly where the scalar loop would have:
        # rewound to the pre-block state, advanced by the doubles
        # actually consumed.
        bitgen.state = state
        bitgen.advance(idx)
        if best_cap == float("inf"):
            return None
        best_cap = float(best_cap)
        best_rate = float(best_rate)
        return QuotedPrice(
            rate=best_rate, base=best_cap - best_rate * target, cap=best_cap
        )

    def _best_escalation_scalar(
        self, current: QuotedPrice
    ) -> QuotedPrice | None:
        """Draw-for-draw scalar fallback for bit generators that cannot
        ``advance`` (identical stream consumption to the block path)."""
        cfg = self.config
        cap_low = current.cap
        best: QuotedPrice | None = None
        for _ in range(cfg.n_price_samples):
            cap = float(self.rng.uniform(cap_low, cfg.budget))
            if cap <= cap_low + 1e-12:
                continue
            rate_high = min(cfg.utility_rate,
                            (cap - cfg.initial_base) / self.target)
            if rate_high <= cfg.initial_rate:
                continue
            rate = float(self.rng.uniform(cfg.initial_rate, rate_high))
            if best is None or cap < best.cap:
                best = QuotedPrice(
                    rate=rate, base=cap - rate * self.target, cap=cap
                )
        return best


    def observe(self, quote: QuotedPrice, bundle: object, delta_g: float) -> None:
        """Track the (quote, gain) trail for the Case-4 regression test."""
        self._offer_trail.append((quote.rate, quote.base, float(delta_g)))

    def _best_dominated_previous(self, quote: QuotedPrice) -> float:
        """Best gain among earlier rounds whose quote the current one dominates.

        If the standing quote is component-wise at least as generous as
        the quote that obtained some earlier gain, a rational seller's
        affordable set can only have grown — so offering less than that
        gain now is genuine regression, not an artefact of the buyer's
        own price path.
        """
        best = float("-inf")
        for rate, base, gain in self._offer_trail[:-1]:
            if quote.rate >= rate - 1e-12 and quote.base >= base - 1e-12:
                best = max(best, gain)
        return best

    def decide(
        self, quote: QuotedPrice, delta_g: float, round_number: int
    ) -> TaskDecision:
        """Cases 4-6 of §3.4.3 (plus Eq. 7 when costs are modelled)."""
        if task_fails_regression(
            self._opening,
            delta_g,
            self._best_dominated_previous(quote),
            self.config.utility_rate,
        ):
            return TaskDecision(Decision.FAIL)
        if task_accepts(quote, delta_g, self.config.eps_t):
            return TaskDecision(Decision.ACCEPT)
        if self.cost_model is not None and not isinstance(self.cost_model, NoCost):
            if task_accepts_with_cost(
                quote,
                delta_g,
                self.config.utility_rate,
                self.cost_model,
                round_number,
                self.config.eps_tc,
            ):
                return TaskDecision(Decision.ACCEPT)
        best = self._best_escalation(quote)
        if best is None:
            # Budget exhausted: accept the standing outcome rather than
            # walk away from a profitable (if sub-target) trade.
            return TaskDecision(Decision.ACCEPT)
        self._current = best
        return TaskDecision(Decision.CONTINUE, best)
