"""Estimation-based strategies for imperfect performance information (§3.5).

Neither party knows any bundle's ΔG up front.  Each round's VFL course
produces one labelled sample; both parties train online estimators and
act on predictions:

* the data party predicts every affordable bundle's gain with ``g`` and
  offers the predicted-closest-below-turning-point bundle (Cases I-III);
* the task party samples Eq.5-consistent candidate quotes, predicts
  each quote's achievable gain with ``f``, keeps candidates predicted
  to reach their turning point, and offers the predicted-net-profit
  maximiser (falling back to the overall maximiser when none qualify).

During the first ``N`` exploration rounds (Case VII) termination is
disabled and both parties explore: the task party quotes random
Eq.5-consistent prices across the whole price box, and the data party
offers random affordable bundles — giving the estimators diverse
training data (the paper leaves the exploration policy unspecified;
random exploration is the natural instantiation and is documented in
DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.market.bundle import FeatureBundle
from repro.market.config import MarketConfig
from repro.market.estimation import DataGainEstimator, TaskGainEstimator
from repro.market.pricing import QuotedPrice, ReservedPrice
from repro.market.strategies.base import (
    DataResponse,
    DataStrategy,
    TaskDecision,
    TaskStrategy,
)
from repro.market.termination import (
    Decision,
    data_accepts,
    no_affordable_bundle,
    task_accepts,
    task_fails_regression,
)
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import require

__all__ = ["ImperfectDataParty", "ImperfectTaskParty"]


class ImperfectTaskParty(TaskStrategy):
    """Buyer guided by the price-to-gain estimator ``f`` (§3.5.3)."""

    def __init__(
        self,
        config: MarketConfig,
        *,
        target_gain: float | None = None,
        estimator: TaskGainEstimator | None = None,
        rng: object = None,
    ):
        self.config = config
        self.rng = as_generator(rng)
        target = target_gain if target_gain is not None else config.target_gain
        require(
            target is not None and target > 0,
            "imperfect information needs an explicit positive target gain",
        )
        self.target = float(target)
        self.estimator = estimator or TaskGainEstimator(rng=spawn(self.rng, "f"))
        opening_cap = config.initial_base + config.initial_rate * self.target
        require(opening_cap <= config.budget, "opening cap exceeds budget")
        self._offer_trail: list[tuple[float, float, float]] = []

    def exploring(self, round_number: int) -> bool:
        """Case VII window: first N rounds never terminate."""
        return round_number <= self.config.exploration_rounds

    def initial_quote(self) -> QuotedPrice:
        """Same Eq.5-consistent opening as the perfect-info strategy."""
        cfg = self.config
        return QuotedPrice(
            rate=cfg.initial_rate,
            base=cfg.initial_base,
            cap=cfg.initial_base + cfg.initial_rate * self.target,
        )

    def observe(self, quote: QuotedPrice, bundle: FeatureBundle, delta_g: float) -> None:
        """Train ``f`` on the realised (quote, ΔG) pair."""
        self.estimator.observe(quote, delta_g)
        self._offer_trail.append((quote.rate, quote.base, float(delta_g)))

    def _best_dominated_previous(self, quote: QuotedPrice) -> float:
        """Best earlier gain under a quote the current one dominates."""
        best = float("-inf")
        for rate, base, gain in self._offer_trail[:-1]:
            if quote.rate >= rate - 1e-12 and quote.base >= base - 1e-12:
                best = max(best, gain)
        return best

    def _sample_box(self, n: int) -> list[QuotedPrice]:
        """Eq.5-consistent quotes across the admissible price box.

        Individual rationality bounds the box from above: a cap beyond
        ``u*dG*`` could never be profitable even when the target gain
        is delivered, so such quotes are never sampled (this matters on
        thin-margin markets like Adult, where the budget alone would
        admit loss-making quotes).
        """
        cfg = self.config
        cap_low = cfg.initial_base + cfg.initial_rate * self.target
        cap_high = min(cfg.budget, 0.95 * cfg.utility_rate * self.target)
        if cap_high <= cap_low:
            cap_high = min(cfg.budget, cap_low * 1.25)
        quotes: list[QuotedPrice] = []
        for _ in range(n):
            cap = float(self.rng.uniform(cap_low, cap_high))
            rate_high = min(cfg.utility_rate, (cap - cfg.initial_base) / self.target)
            if rate_high <= cfg.initial_rate:
                continue
            rate = float(self.rng.uniform(cfg.initial_rate, rate_high))
            base = cap - rate * self.target
            quotes.append(QuotedPrice(rate=rate, base=base, cap=cap))
        return quotes

    def _predicted_profit(self, quote: QuotedPrice, predicted_gain: float) -> float:
        gain = max(predicted_gain, 0.0)
        return self.config.utility_rate * gain - quote.payment(gain)

    def decide(
        self, quote: QuotedPrice, delta_g: float, round_number: int
    ) -> TaskDecision:
        """Cases IV-VI with estimation-guided re-quoting."""
        cfg = self.config
        if not self.exploring(round_number):
            # Case IV under the regression reading (see termination module).
            if task_fails_regression(
                self.initial_quote(),
                delta_g,
                self._best_dominated_previous(quote),
                cfg.utility_rate,
            ):
                return TaskDecision(Decision.FAIL)
            if task_accepts(quote, delta_g, cfg.eps_t):
                return TaskDecision(Decision.ACCEPT)
        candidates = self._sample_box(cfg.n_price_samples)
        if not candidates:
            return TaskDecision(Decision.ACCEPT)
        if self.exploring(round_number + 1):
            # Pure exploration: a random Eq.5-consistent quote.  (The
            # quote emitted in the final exploration round is already
            # estimation-guided, since it becomes the first real offer.)
            pick = candidates[int(self.rng.integers(0, len(candidates)))]
            return TaskDecision(Decision.CONTINUE, pick)
        predictions = self.estimator.predict(candidates)
        qualified = [
            (q, g)
            for q, g in zip(candidates, predictions)
            if g >= q.turning_point - cfg.eps_t
        ]
        pool = qualified if qualified else list(zip(candidates, predictions))
        best, _ = max(pool, key=lambda pair: self._predicted_profit(*pair))
        return TaskDecision(Decision.CONTINUE, best)


class ImperfectDataParty(DataStrategy):
    """Seller guided by the bundle-to-gain estimator ``g`` (§3.5.2)."""

    def __init__(
        self,
        bundles: list[FeatureBundle],
        reserved_prices: dict[FeatureBundle, ReservedPrice],
        config: MarketConfig,
        n_features: int,
        *,
        estimator: DataGainEstimator | None = None,
        rng: object = None,
    ):
        require(bool(bundles), "data party needs a non-empty catalogue")
        self.bundles = list(bundles)
        self.reserved_prices = dict(reserved_prices)
        self.config = config
        self.rng = as_generator(rng)
        self.estimator = estimator or DataGainEstimator(
            n_features, rng=spawn(self.rng, "g")
        )

    def exploring(self, round_number: int) -> bool:
        """Case VII window: first N rounds never terminate."""
        return round_number <= self.config.exploration_rounds

    def observe(self, quote: QuotedPrice, bundle: FeatureBundle, delta_g: float) -> None:
        """Train ``g`` on the realised (bundle, ΔG) pair."""
        self.estimator.observe(bundle, delta_g)

    def respond(self, quote: QuotedPrice, round_number: int) -> DataResponse:
        """Cases I-III on predicted gains (relaxed during exploration)."""
        affordable = [
            b for b in self.bundles if self.reserved_prices[b].satisfied_by(quote)
        ]
        if no_affordable_bundle(len(affordable)):
            if self.exploring(round_number):
                # Case VII: keep the game alive with the cheapest bundle.
                cheapest = min(
                    self.bundles, key=lambda b: self.reserved_prices[b].base
                )
                return DataResponse(Decision.CONTINUE, cheapest)
            return DataResponse(Decision.FAIL)
        if self.exploring(round_number):
            pick = affordable[int(self.rng.integers(0, len(affordable)))]
            return DataResponse(Decision.CONTINUE, pick)
        predicted = self.estimator.predict(affordable)
        catalogue_predicted = self.estimator.predict(self.bundles)
        tp = quote.turning_point
        if tp > float(catalogue_predicted.max()):
            # Case II-2: the quote asks for more than the party believes
            # *any* of its bundles can ever deliver — settle with the
            # predicted-best affordable bundle.  (Scoped to the full
            # catalogue: an unaffordable-but-promising bundle means the
            # right move is to keep bargaining for a better price,
            # Case III, not to settle.)
            f_max = affordable[int(predicted.argmax())]
            return DataResponse(Decision.ACCEPT, f_max)
        if tp < float(catalogue_predicted.min()):
            # Case II-3: every bundle it owns is predicted to overshoot;
            # the smallest affordable overshoot saturates the cap at the
            # least cost.
            f_min = affordable[int(predicted.argmin())]
            return DataResponse(Decision.ACCEPT, f_min)
        below = [(b, g) for b, g in zip(affordable, predicted) if g <= tp]
        if not below:
            # All affordable predictions overshoot (better bundles exist
            # in the catalogue): offering the smallest overshoot still
            # saturates the cap, but keep bargaining open (Case III).
            bundle = affordable[int(predicted.argmin())]
            return DataResponse(Decision.CONTINUE, bundle)
        bundle, gain_hat = min(below, key=lambda pair: tp - pair[1])
        if data_accepts(quote, gain_hat, self.config.eps_d):
            # Case II-1: predicted gain within eps_d of the turning point.
            return DataResponse(Decision.ACCEPT, bundle)
        return DataResponse(Decision.CONTINUE, bundle)
