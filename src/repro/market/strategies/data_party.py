"""The strategic data party under perfect performance information (§3.4.1).

Given a quote it (1) discards bundles whose reserved price the quote
does not meet, then (2) offers the affordable bundle whose ΔG lies
closest to — without exceeding — the quote's turning point, which
maximises its payment under the cap (Eq. 4).  Acceptance (Case 2)
fires when that gap is within ``ε_d``; with bargaining costs, Eq. 6's
look-ahead rule can accept earlier.
"""

from __future__ import annotations

from repro.market.bundle import FeatureBundle
from repro.market.config import MarketConfig
from repro.market.costs import CostModel, NoCost
from repro.market.pricing import QuotedPrice, ReservedPrice
from repro.market.strategies.base import DataResponse, DataStrategy
from repro.market.termination import (
    Decision,
    data_accepts,
    data_accepts_with_cost,
    no_affordable_bundle,
)
from repro.utils.validation import require

__all__ = ["StrategicDataParty", "select_offer"]


def select_offer(
    candidates: dict[FeatureBundle, float], turning_point: float
) -> tuple[FeatureBundle, float]:
    """The Eq. 4 offer rule.

    Among ``candidates`` (bundle -> ΔG), pick the gain closest to but
    not beyond the turning point; if every candidate overshoots, pick
    the smallest overshoot (payment saturates at the cap either way, so
    the cheapest sufficient bundle is offered).
    """
    require(bool(candidates), "need at least one candidate bundle")
    below = {b: g for b, g in candidates.items() if g <= turning_point}
    pool = below if below else candidates
    bundle = min(pool, key=lambda b: abs(turning_point - pool[b]))
    return bundle, candidates[bundle]


class StrategicDataParty(DataStrategy):
    """Turning-point-tracking seller (perfect information).

    Parameters
    ----------
    gains:
        The party's own catalogue: bundle -> ΔG (it knows what each of
        its bundles is worth to this buyer, §3.4).
    reserved_prices:
        Private floors per bundle (Def. 2.4).
    config:
        Shared market constants (``eps_d``; cost tolerances).
    cost_model:
        Bargaining cost ``C_d``; enables the Eq. 6 acceptance rule.
    """

    def __init__(
        self,
        gains: dict[FeatureBundle, float],
        reserved_prices: dict[FeatureBundle, ReservedPrice],
        config: MarketConfig,
        *,
        cost_model: CostModel | None = None,
    ):
        require(bool(gains), "data party needs a non-empty catalogue")
        missing = [b for b in gains if b not in reserved_prices]
        require(not missing, f"reserved price missing for {missing[:3]}")
        self.gains = dict(gains)
        self.reserved_prices = dict(reserved_prices)
        self.config = config
        self.cost_model = cost_model

    def affordable(self, quote: QuotedPrice) -> dict[FeatureBundle, float]:
        """Bundles whose reserved price the quote satisfies."""
        return {
            b: g
            for b, g in self.gains.items()
            if self.reserved_prices[b].satisfied_by(quote)
        }

    def _target_reserved(self, quote: QuotedPrice) -> ReservedPrice:
        """Reserved price of the bundle nearest the turning point (F_j in Eq. 6)."""
        target = min(
            self.gains, key=lambda b: abs(quote.turning_point - self.gains[b])
        )
        return self.reserved_prices[target]

    def respond(self, quote: QuotedPrice, round_number: int) -> DataResponse:
        """Cases 1-3 of §3.4.3 (plus Eq. 6 when costs are modelled)."""
        candidates = self.affordable(quote)
        if no_affordable_bundle(len(candidates)):
            return DataResponse(Decision.FAIL)
        bundle, gain = select_offer(candidates, quote.turning_point)
        if data_accepts(quote, gain, self.config.eps_d):
            return DataResponse(Decision.ACCEPT, bundle)
        if self.cost_model is not None and not isinstance(self.cost_model, NoCost):
            if data_accepts_with_cost(
                quote,
                gain,
                self._target_reserved(quote),
                self.cost_model,
                round_number,
                self.config.eps_dc,
            ):
                return DataResponse(Decision.ACCEPT, bundle)
        return DataResponse(Decision.CONTINUE, bundle)
