"""Participant objectives (Eqs. 3-4) and derived decision quantities.

* Task party (buyer): maximise **net profit** ``u·ΔG − payment`` —
  utility of the gained performance minus what it pays (Eq. 3).
* Data party (seller): offer the bundle whose ΔG lands closest to (but
  not beyond) the quote's turning point, maximising its payment under
  the cap (Eq. 4).
"""

from __future__ import annotations

from repro.market.pricing import QuotedPrice
from repro.utils.validation import require

__all__ = [
    "break_even_gain",
    "data_revenue_gap",
    "task_net_profit",
]


def task_net_profit(quote: QuotedPrice, delta_g: float, utility_rate: float) -> float:
    """Realised net profit of the task party (Eq. 3 for a fixed quote)."""
    return utility_rate * delta_g - quote.payment(delta_g)


def data_revenue_gap(quote: QuotedPrice, delta_g: float) -> float:
    """The data party's objective value ``|Ph − max{P0, P0 + p·ΔG}|`` (Eq. 4).

    Zero exactly when the bundle's gain reaches the turning point —
    i.e. when the payment saturates at ``Ph``.
    """
    return abs(quote.cap - max(quote.base, quote.base + quote.rate * delta_g))


def break_even_gain(quote: QuotedPrice, utility_rate: float) -> float:
    """Minimum ΔG for non-negative task-party profit: ``P0/(u − p)``.

    Below this gain the task party loses money (Case 4 / Case IV
    failure threshold).  Requires individual rationality ``u > p``
    (§3.4.2).
    """
    require(
        utility_rate > quote.rate,
        f"individual rationality requires u > p (u={utility_rate}, p={quote.rate})",
    )
    return quote.base / (utility_rate - quote.rate)
