"""Feature bundles: the goods traded on the VFL market (Def. 2.1).

A bundle is a subset of the data party's (encoded) features.  The set
of bundles on sale ``F`` is configurable: exhaustive enumeration for
small feature spaces, or a size-stratified random sample for realistic
ones (the data party curates its catalogue — enumerating all ``2^d``
subsets of e.g. 36 features is neither tractable nor commercially
sensible).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["FeatureBundle", "enumerate_bundles", "sample_bundles"]


@dataclass(frozen=True, order=True)
class FeatureBundle:
    """An immutable, sorted set of data-party feature indices."""

    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        require(len(self.indices) >= 1, "bundle must contain at least one feature")
        ordered = tuple(sorted(int(i) for i in self.indices))
        require(
            len(set(ordered)) == len(ordered), "bundle has duplicate feature indices"
        )
        require(ordered[0] >= 0, "feature indices must be non-negative")
        object.__setattr__(self, "indices", ordered)

    @classmethod
    def of(cls, indices: object) -> "FeatureBundle":
        """Build a bundle from any iterable of indices."""
        return cls(tuple(indices))

    @property
    def size(self) -> int:
        """Number of features in the bundle."""
        return len(self.indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __iter__(self):
        return iter(self.indices)

    def __contains__(self, index: int) -> bool:
        return index in self.indices

    def union(self, other: "FeatureBundle") -> "FeatureBundle":
        """Bundle containing both operands' features."""
        return FeatureBundle.of(set(self.indices) | set(other.indices))

    def label(self) -> str:
        """Compact display label, e.g. ``{0,3,7}``."""
        return "{" + ",".join(str(i) for i in self.indices) + "}"


def enumerate_bundles(
    n_features: int, *, max_size: int | None = None
) -> list[FeatureBundle]:
    """All non-empty subsets of ``range(n_features)`` up to ``max_size``.

    Guarded to small feature spaces — the count grows as ``2^d``.
    """
    require(n_features >= 1, "n_features must be >= 1")
    top = n_features if max_size is None else min(max_size, n_features)
    require(
        n_features <= 16 or top <= 3,
        "exhaustive enumeration is limited to <= 16 features (use sample_bundles)",
    )
    bundles = []
    for k in range(1, top + 1):
        for combo in itertools.combinations(range(n_features), k):
            bundles.append(FeatureBundle(combo))
    return bundles


def sample_bundles(
    n_features: int,
    n_bundles: int,
    *,
    rng: object = None,
    min_size: int = 1,
    max_size: int | None = None,
    include_full: bool = True,
) -> list[FeatureBundle]:
    """Size-stratified random catalogue of distinct bundles.

    Sizes are drawn uniformly from ``[min_size, max_size]`` so the
    catalogue spans cheap single-feature offers through rich bundles;
    ``include_full`` adds the all-features bundle (the party-level
    trade current practice would sell, §1).
    """
    require(n_features >= 1, "n_features must be >= 1")
    require(n_bundles >= 1, "n_bundles must be >= 1")
    max_size = n_features if max_size is None else min(max_size, n_features)
    require(1 <= min_size <= max_size, "need 1 <= min_size <= max_size")
    gen = as_generator(rng)
    seen: set[tuple[int, ...]] = set()
    bundles: list[FeatureBundle] = []
    if include_full:
        full = FeatureBundle.of(range(n_features))
        seen.add(full.indices)
        bundles.append(full)
    attempts = 0
    while len(bundles) < n_bundles and attempts < 200 * n_bundles:
        attempts += 1
        size = int(gen.integers(min_size, max_size + 1))
        combo = tuple(sorted(gen.choice(n_features, size=size, replace=False)))
        if combo in seen:
            continue
        seen.add(combo)
        bundles.append(FeatureBundle(combo))
    require(
        len(bundles) >= min(n_bundles, 2),
        "could not sample enough distinct bundles; shrink n_bundles",
    )
    return bundles
