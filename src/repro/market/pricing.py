"""Quoted and reserved prices, and the payment function (Defs. 2.2-2.4).

The quoted price ``p = (p, P0, Ph)`` is the task party's offer: a base
payment ``P0``, a per-unit-of-gain rate ``p``, and a cap ``Ph``.  The
payment realised by a VFL course with gain ΔG is

    ``min{ max{P0, P0 + p·ΔG}, Ph }``            (Def. 2.3)

which is flat at ``P0`` for ΔG ≤ 0, linear in between, and saturates at
``Ph`` past the *turning point* ``(Ph − P0)/p`` — the quantity the whole
bargaining analysis revolves around (Eq. 5 equilibrium).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.market.bundle import FeatureBundle
from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["QuotedPrice", "ReservedPrice", "cost_based_reserved_prices"]


@dataclass(frozen=True)
class QuotedPrice:
    """The task party's offer ``(p, P0, Ph)``.

    Attributes
    ----------
    rate:
        Payment rate ``p`` (> 0): marginal payment per unit of ΔG.
    base:
        Base payment ``P0`` (>= 0): unconditional floor.
    cap:
        Highest payment ``Ph`` = ``P0 + C`` with ``C >= 0``.
    """

    rate: float
    base: float
    cap: float

    def __post_init__(self) -> None:
        require(self.rate > 0, f"payment rate p must be > 0, got {self.rate}")
        require(self.base >= 0, f"base payment P0 must be >= 0, got {self.base}")
        require(
            self.cap >= self.base - 1e-12,
            f"highest payment Ph={self.cap} must be >= P0={self.base}",
        )

    @property
    def turning_point(self) -> float:
        """ΔG at which payment saturates: ``(Ph − P0)/p``."""
        return (self.cap - self.base) / self.rate

    def payment(self, delta_g: float) -> float:
        """Payment to the data party for a realised gain (Def. 2.3)."""
        return float(min(max(self.base, self.base + self.rate * delta_g), self.cap))

    def with_cap(self, cap: float) -> "QuotedPrice":
        """Same rate/base with a new cap."""
        return QuotedPrice(self.rate, self.base, cap)

    def as_tuple(self) -> tuple[float, float, float]:
        """``(p, P0, Ph)`` for feature vectors / reports."""
        return (self.rate, self.base, self.cap)

    def to_dict(self) -> dict:
        """Canonical plain-dict form (checkpoint wire format)."""
        return {
            "rate": float(self.rate),
            "base": float(self.base),
            "cap": float(self.cap),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuotedPrice":
        """Inverse of :meth:`to_dict`."""
        return cls(
            rate=float(payload["rate"]),
            base=float(payload["base"]),
            cap=float(payload["cap"]),
        )

    def __str__(self) -> str:
        return f"(p={self.rate:.3f}, P0={self.base:.3f}, Ph={self.cap:.3f})"


@dataclass(frozen=True)
class ReservedPrice:
    """The data party's private floor ``(p_l, P_l)`` for one bundle (Def. 2.4)."""

    rate: float
    base: float

    def __post_init__(self) -> None:
        require(self.rate > 0, "reserved rate p_l must be > 0")
        require(self.base >= 0, "reserved base P_l must be >= 0")

    def satisfied_by(self, quote: QuotedPrice) -> bool:
        """True when the quote meets both floors (``p >= p_l`` and ``P0 >= P_l``)."""
        return quote.rate >= self.rate - 1e-12 and quote.base >= self.base - 1e-12

    def to_dict(self) -> dict:
        """Canonical plain-dict form (checkpoint wire format)."""
        return {"rate": float(self.rate), "base": float(self.base)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ReservedPrice":
        """Inverse of :meth:`to_dict`."""
        return cls(rate=float(payload["rate"]), base=float(payload["base"]))


def cost_based_reserved_prices(
    bundles: list[FeatureBundle],
    *,
    rate_floor: float,
    rate_per_feature: float,
    base_floor: float,
    base_per_feature: float,
    rate_noise: float = 0.0,
    base_noise: float = 0.0,
    rate_value: float = 0.0,
    base_value: float = 0.0,
    gains: dict[FeatureBundle, float] | None = None,
    rng: object = None,
) -> dict[FeatureBundle, ReservedPrice]:
    """Cost- and value-related reserved prices.

    Def. 2.4's remark motivates the cost component: *"a feature bundle
    of a larger number of features may have higher reserved price as
    the collecting cost ... is higher"* — modelled affine in bundle
    size plus non-negative noise (idiosyncratic collection costs).

    Under perfect performance information the data party also *knows*
    each bundle's ΔG (§3.4), so a rational seller prices quality in:
    ``rate_value``/``base_value`` add a premium proportional to the
    bundle's gain relative to the best on sale.  Pass ``gains`` to
    enable the value component (both default to pure cost pricing).
    """
    require(rate_floor > 0, "rate_floor must be > 0")
    require(base_floor >= 0, "base_floor must be >= 0")
    if rate_value or base_value:
        require(gains is not None, "value-aware pricing needs the gains mapping")
    gen = as_generator(rng)
    top = 0.0
    if gains:
        top = max(max(g, 0.0) for g in gains.values())
    prices: dict[FeatureBundle, ReservedPrice] = {}
    for bundle in bundles:
        rate = rate_floor + rate_per_feature * bundle.size
        base = base_floor + base_per_feature * bundle.size
        if (rate_value or base_value) and top > 0:
            assert gains is not None
            quality = max(gains.get(bundle, 0.0), 0.0) / top
            rate += rate_value * quality
            base += base_value * quality
        if rate_noise:
            rate += float(np.abs(gen.normal(0.0, rate_noise)))
        if base_noise:
            base += float(np.abs(gen.normal(0.0, base_noise)))
        prices[bundle] = ReservedPrice(rate=rate, base=base)
    return prices
