"""Gain-report auditing: the paper's §6 limitation 1, implemented.

The bargaining model assumes benign clients (Assumption 3.3); the paper
notes the obvious manipulation — *"the task party may accept a feature
bundle with high performance gain but only report a lower value to
reduce its payment"* — and sketches the fix: *"involve a trustworthy
third party for evaluation."*

This module provides that third party:

* :class:`TrustedEvaluator` re-runs the VFL course for a transacted
  bundle under independent seeds and checks the reported ΔG against the
  measured distribution (training stochasticity is measured, not
  assumed: the tolerance band comes from repeated evaluations);
* :func:`under_report` simulates the attack for tests/benchmarks.

The evaluator is exactly the §3.4 platform wearing a second hat — it
already trains per-bundle models to publish the perfect-information
catalogue, so auditing adds no new trust assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.market.bundle import FeatureBundle
from repro.utils.validation import check_positive, require
from repro.vfl.runner import isolated_performance, run_vfl

__all__ = ["AuditResult", "TrustedEvaluator", "under_report"]


def under_report(true_gain: float, fraction: float) -> float:
    """The §6 manipulation: report only ``fraction`` of the realised gain."""
    require(0.0 <= fraction <= 1.0, "fraction must be in [0, 1]")
    return true_gain * fraction


@dataclass(frozen=True)
class AuditResult:
    """Verdict of one gain-report audit."""

    bundle: FeatureBundle
    reported_gain: float
    measured_mean: float
    measured_std: float
    z_score: float
    verified: bool

    @property
    def discrepancy(self) -> float:
        """Reported minus measured gain (negative = under-reporting)."""
        return self.reported_gain - self.measured_mean


class TrustedEvaluator:
    """Third-party re-evaluation of reported performance gains.

    Parameters
    ----------
    dataset:
        The aligned, partitioned dataset (the platform held it for the
        pre-bargaining training already).
    base_model / model_params:
        The VFL configuration under audit.
    n_repeats:
        Independent re-trainings per audit; their spread calibrates the
        tolerance.
    z_threshold:
        Reports more than this many (estimated) standard deviations
        *below* the measured mean are flagged.  One-sided: over-reports
        hurt the task party itself, so only under-reporting is policed.
    """

    def __init__(
        self,
        dataset: PartitionedDataset,
        *,
        base_model: str = "random_forest",
        model_params: dict | None = None,
        n_repeats: int = 3,
        z_threshold: float = 3.0,
        min_tolerance: float = 5e-3,
        seed: object = 1234,
    ):
        require(n_repeats >= 2, "auditing needs >= 2 repeats to estimate spread")
        self.dataset = dataset
        self.base_model = base_model
        self.model_params = model_params
        self.n_repeats = int(n_repeats)
        self.z_threshold = check_positive(z_threshold, "z_threshold")
        self.min_tolerance = check_positive(min_tolerance, "min_tolerance")
        self.seed = seed
        self._cache: dict[FeatureBundle, tuple[float, float]] = {}

    def measure(self, bundle: FeatureBundle) -> tuple[float, float]:
        """(mean, std) of ΔG over independent re-trainings (cached)."""
        if bundle not in self._cache:
            gains = []
            for r in range(self.n_repeats):
                seed = f"audit/{self.seed}/{r}"
                m0 = isolated_performance(
                    self.dataset,
                    base_model=self.base_model,
                    model_params=self.model_params,
                    seed=seed,
                )
                result = run_vfl(
                    self.dataset,
                    bundle.indices,
                    base_model=self.base_model,
                    model_params=self.model_params,
                    seed=seed,
                    m0=m0,
                )
                gains.append(result.delta_g)
            self._cache[bundle] = (
                float(np.mean(gains)),
                float(np.std(gains, ddof=1)),
            )
        return self._cache[bundle]

    def audit(self, bundle: FeatureBundle, reported_gain: float) -> AuditResult:
        """Check a reported ΔG against independent re-measurements."""
        mean, std = self.measure(bundle)
        scale = max(std, self.min_tolerance)
        z = (reported_gain - mean) / scale
        return AuditResult(
            bundle=bundle,
            reported_gain=float(reported_gain),
            measured_mean=mean,
            measured_std=std,
            z_score=float(z),
            verified=bool(z >= -self.z_threshold),
        )
