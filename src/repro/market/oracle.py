"""The performance-gain oracle: the trusted platform of §3.4.

Perfect performance information is *"facilitated through the
involvement of a trustworthy third party, such as a trading platform,
which can conduct pre-bargaining training for both parties"*.  The
oracle plays that platform: it runs one VFL course per catalogued
bundle up front and answers ΔG queries during bargaining (counting the
queries, which ground the platform-fee cost models).

For unit tests and synthetic markets, :meth:`PerformanceOracle.from_gains`
builds an oracle from a plain ``bundle -> ΔG`` mapping without any VFL.
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.market.bundle import FeatureBundle
from repro.utils.validation import require
from repro.vfl.runner import isolated_performance, run_vfl

__all__ = [
    "MemoisedOracle",
    "PerformanceOracle",
    "repeat_course_seeds",
    "synthetic_gains",
]


def synthetic_gains(
    sizes: np.ndarray, *, n_features: int, scale: float, rng: np.random.Generator
) -> np.ndarray:
    """The synthetic catalogue gain model: sizes drive gains.

    Bundle sizes yield diminishing returns with idiosyncratic quality
    noise at magnitude ``scale``, mirroring real oracles' landscapes.
    The single definition shared by catalogue-only markets
    (:meth:`repro.market.market.Market.from_spec`) and the population
    sampler (:func:`repro.simulate.population.sample_population`), so
    the two can never drift apart.
    """
    gains = (
        scale
        * (np.asarray(sizes, dtype=float) / n_features) ** 0.7
        * np.exp(rng.normal(0.0, 0.25, size=len(sizes)))
    )
    return np.maximum(gains, 0.02 * scale)


def repeat_course_seeds(seed: object, n_repeats: int) -> list[object]:
    """Per-repeat course seeds: repeat 0 keeps the root seed verbatim.

    The single source of the derivation — the serial reference path,
    the oracle factory's course grid, and its cache fingerprints all
    key off these values, so they must never drift apart.
    """
    return [seed if r == 0 else f"{seed}/{r}" for r in range(n_repeats)]


class PerformanceOracle:
    """Pre-computed ΔG for every bundle in a market's catalogue."""

    def __init__(
        self,
        bundles: list[FeatureBundle],
        gains: dict[FeatureBundle, float],
        *,
        isolated: float = float("nan"),
        base_model: str = "synthetic",
    ):
        require(bool(bundles), "oracle needs at least one bundle")
        missing = [b for b in bundles if b not in gains]
        require(not missing, f"gains missing for bundles: {missing[:3]}")
        self.bundles = list(bundles)
        self._gains = dict(gains)
        self.isolated = float(isolated)
        self.base_model = base_model
        self.query_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_gains(cls, gains: dict[FeatureBundle, float]) -> "PerformanceOracle":
        """Synthetic oracle from a plain mapping (no VFL executed)."""
        return cls(list(gains), dict(gains))

    @classmethod
    def build(
        cls,
        dataset: PartitionedDataset,
        bundles: list[FeatureBundle],
        *,
        base_model: str = "random_forest",
        model_params: dict | None = None,
        seed: object = 0,
        n_repeats: int = 1,
        jobs: int = 1,
        cache: object = None,
    ) -> "PerformanceOracle":
        """Run VFL courses per bundle (the platform's pre-training).

        ``n_repeats > 1`` averages each bundle's ΔG over independently
        seeded training runs — the platform reduces evaluation noise so
        the disclosed gains are not winner's-curse inflated across the
        catalogue.

        Delegates to :func:`repro.oracle_factory.factory.build_oracle`:
        shared incremental binning, optional process parallelism
        (``jobs``) and an optional persistent gain ``cache`` (a
        :class:`~repro.oracle_factory.cache.GainCache` or a directory
        path).  Gains are bit-identical to
        :meth:`build_serial_reference` for every ``jobs``/``cache``
        combination; the returned oracle carries a ``build_report``
        attribute with timings and cache statistics.
        """
        from repro.oracle_factory.factory import build_oracle

        oracle, _ = build_oracle(
            dataset,
            bundles,
            base_model=base_model,
            model_params=model_params,
            seed=seed,
            n_repeats=n_repeats,
            jobs=jobs,
            cache=cache,
        )
        return oracle

    @classmethod
    def build_serial_reference(
        cls,
        dataset: PartitionedDataset,
        bundles: list[FeatureBundle],
        *,
        base_model: str = "random_forest",
        model_params: dict | None = None,
        seed: object = 0,
        n_repeats: int = 1,
    ) -> "PerformanceOracle":
        """The seed serial build: one from-scratch VFL course per cell.

        Kept verbatim as the semantic reference for the oracle factory —
        equivalence tests and ``benchmarks/bench_oracle_build.py`` pin
        :meth:`build` against it, course for course.
        """
        require(bool(bundles), "oracle needs at least one bundle")
        require(n_repeats >= 1, "n_repeats must be >= 1")
        seeds = repeat_course_seeds(seed, n_repeats)
        m0s = [
            isolated_performance(
                dataset, base_model=base_model, model_params=model_params, seed=s
            )
            for s in seeds
        ]
        gains: dict[FeatureBundle, float] = {}
        for bundle in bundles:
            values = [
                run_vfl(
                    dataset,
                    bundle.indices,
                    base_model=base_model,
                    model_params=model_params,
                    seed=s,
                    m0=m0,
                ).delta_g
                for s, m0 in zip(seeds, m0s)
            ]
            gains[bundle] = float(np.mean(values))
        return cls(
            bundles, gains, isolated=float(np.mean(m0s)), base_model=base_model
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def delta_g(self, bundle: FeatureBundle) -> float:
        """ΔG of one catalogued bundle (counts as a platform query)."""
        require(bundle in self._gains, f"bundle {bundle.label()} not in catalogue")
        self.query_count += 1
        return self._gains[bundle]

    def gains(self) -> dict[FeatureBundle, float]:
        """A copy of the full catalogue (the |F| values of §3.4)."""
        self.query_count += len(self._gains)
        return dict(self._gains)

    @property
    def max_gain(self) -> float:
        """ΔG of the best bundle on sale."""
        return max(self._gains.values())

    @property
    def min_gain(self) -> float:
        """ΔG of the weakest bundle on sale."""
        return min(self._gains.values())

    def best_bundle(self) -> FeatureBundle:
        """The bundle achieving :attr:`max_gain`."""
        return max(self._gains, key=lambda b: self._gains[b])

    def quantile_gain(self, q: float) -> float:
        """A quantile of the gain distribution (used to pick targets)."""
        return float(np.quantile(list(self._gains.values()), q))

    def __len__(self) -> int:
        return len(self.bundles)


class MemoisedOracle:
    """Caches another oracle's ΔG answers across many concurrent games.

    A population of bargaining sessions trading the same catalogue asks
    the platform for the same bundles over and over — each of which, on
    a real deployment, is a pre-bargaining VFL course.  Wrapping the
    shared oracle memoises those answers: the first query per bundle
    hits the inner oracle, every later one is a dictionary lookup.

    ``query_count``/``hit_count`` expose how much platform work the
    cache saved (the :class:`repro.simulate.SessionPool` reports them).
    The wrapper satisfies the same query interface as
    :class:`PerformanceOracle` and proxies its catalogue attributes.
    """

    def __init__(self, inner: PerformanceOracle):
        self.inner = inner
        self._cache: dict[FeatureBundle, float] = {}
        self.query_count = 0
        self.hit_count = 0

    def delta_g(self, bundle: FeatureBundle) -> float:
        """ΔG of one bundle; answered from cache after the first query."""
        self.query_count += 1
        if bundle in self._cache:
            self.hit_count += 1
            return self._cache[bundle]
        value = self.inner.delta_g(bundle)
        self._cache[bundle] = value
        return value

    def gains(self) -> dict[FeatureBundle, float]:
        """Materialise (and fully cache) the inner catalogue."""
        full = self.inner.gains()
        self._cache.update(full)
        return full

    def queried_bundles(self) -> list[FeatureBundle]:
        """Every distinct bundle answered so far (cached keys)."""
        return list(self._cache)

    @property
    def bundles(self) -> list[FeatureBundle]:
        return self.inner.bundles

    @property
    def max_gain(self) -> float:
        return self.inner.max_gain

    @property
    def min_gain(self) -> float:
        return self.inner.min_gain

    def best_bundle(self) -> FeatureBundle:
        return self.inner.best_bundle()

    def quantile_gain(self, q: float) -> float:
        return self.inner.quantile_gain(q)

    def __len__(self) -> int:
        return len(self.inner)
