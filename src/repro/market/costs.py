"""Bargaining-cost models (§3.4.4).

Costs accumulate with the bargaining round ``T``: platform query fees,
VFL communication and training cost.  The paper analyses constant,
linear ``C(T) = aT`` and exponential ``C(T) = a^T`` schedules (Table 3),
applying them additively to each party's final revenue.
"""

from __future__ import annotations

from repro.utils.validation import check_positive, require

__all__ = [
    "ConstantCost",
    "CostModel",
    "ExponentialCost",
    "LinearCost",
    "NoCost",
    "ScaledCost",
    "make_cost",
]


class CostModel:
    """Interface: cumulative bargaining cost after round ``T`` (1-based)."""

    def cost(self, round_number: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, round_number: int) -> float:
        require(round_number >= 0, "round_number must be >= 0")
        return self.cost(round_number)


class NoCost(CostModel):
    """Frictionless bargaining (the paper's default §4.2 setting)."""

    def cost(self, round_number: int) -> float:
        return 0.0


class ConstantCost(CostModel):
    """Flat per-game cost, independent of duration (Props. 3.1-3.2)."""

    def __init__(self, value: float):
        require(value >= 0, "constant cost must be >= 0")
        self.value = float(value)

    def cost(self, round_number: int) -> float:
        return self.value


class LinearCost(CostModel):
    """``C(T) = a·T`` — per-round fees (platform queries, communication)."""

    def __init__(self, a: float):
        self.a = check_positive(a, "a")

    def cost(self, round_number: int) -> float:
        return self.a * round_number


class ExponentialCost(CostModel):
    """``C(T) = a^T`` — compounding impatience (discount-factor style)."""

    def __init__(self, a: float):
        require(a > 1.0, f"exponential cost needs a > 1, got {a}")
        self.a = float(a)

    def cost(self, round_number: int) -> float:
        return self.a**round_number


class ScaledCost(CostModel):
    """``s · C(T)`` — e.g. the paper's Table 3 uses ``C_t = C_d = C(T)/10``."""

    def __init__(self, inner: CostModel, scale: float):
        require(scale >= 0, "scale must be >= 0")
        self.inner = inner
        self.scale = float(scale)

    def cost(self, round_number: int) -> float:
        return self.scale * self.inner.cost(round_number)


def make_cost(kind: str, a: float | None = None, *, scale: float = 1.0) -> CostModel:
    """Factory used by experiment configs.

    ``kind`` is one of ``"none"``, ``"constant"``, ``"linear"``,
    ``"exponential"``; ``scale`` wraps the result in :class:`ScaledCost`
    when it differs from 1.
    """
    kind = kind.lower()
    if kind == "none":
        model: CostModel = NoCost()
    elif kind == "constant":
        require(a is not None, "constant cost needs a value")
        model = ConstantCost(float(a))
    elif kind == "linear":
        require(a is not None, "linear cost needs a")
        model = LinearCost(float(a))
    elif kind == "exponential":
        require(a is not None, "exponential cost needs a")
        model = ExponentialCost(float(a))
    else:
        raise ValueError(f"unknown cost kind {kind!r}")
    if scale != 1.0:
        model = ScaledCost(model, scale)
    return model
