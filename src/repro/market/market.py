"""The `Market` facade: one object per (dataset, base model) market.

Typical use::

    market = Market.for_dataset("titanic", base_model="random_forest")
    outcome = market.bargain(seed=0)                       # Strategic
    outcome = market.bargain(task="increase_price", seed=0)  # baseline
    outcome = market.bargain(information="imperfect", seed=0)

or, spec-first (what every service front door does)::

    from repro.service import MarketSpec
    market = Market.from_spec(MarketSpec(dataset="titanic"))

``from_spec`` assembles the whole stack: registered dataset ->
vertical partition -> bundle catalogue -> ΔG oracle (the trusted
platform's pre-bargaining VFL runs) -> cost-based reserved prices ->
calibrated :class:`~repro.market.config.MarketConfig`.  Datasets and
party strategies resolve through :mod:`repro.service.registry`, so
registered extensions plug into the facade with no changes here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.market.bundle import FeatureBundle, sample_bundles
from repro.market.config import MarketConfig
from repro.market.costs import CostModel
from repro.market.engine import BargainingEngine, BargainOutcome
from repro.market.oracle import PerformanceOracle, synthetic_gains
from repro.market.pricing import ReservedPrice, cost_based_reserved_prices
from repro.utils.rng import spawn
from repro.utils.validation import require

__all__ = ["Market"]

_DEFAULT_CACHE = object()  # sentinel: "derive the gain cache from the spec"

# Synthetic (catalogue-only) markets share the population sampler's
# geometry: bundle sizes drive gains with diminishing returns.
_SYNTHETIC_N_FEATURES = 12


@dataclass
class Market:
    """A standing VFL feature market for one dataset and base model."""

    oracle: PerformanceOracle
    reserved_prices: dict[FeatureBundle, ReservedPrice]
    config: MarketConfig
    name: str = "market"
    dataset: PartitionedDataset | None = field(default=None, repr=False)
    n_data_features: int = 0

    def __post_init__(self) -> None:
        missing = [b for b in self.oracle.bundles if b not in self.reserved_prices]
        require(not missing, f"reserved prices missing for {missing[:3]}")
        if self.n_data_features == 0:
            self.n_data_features = 1 + max(
                max(b.indices) for b in self.oracle.bundles
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec, *, cache: object = _DEFAULT_CACHE) -> "Market":
        """Build the full market stack described by a ``MarketSpec``.

        The dataset (and its preset calibration) resolves through the
        service registry, so registered custom datasets build exactly
        like the paper's three.  ``cache`` overrides the gain cache the
        spec implies (``for_dataset`` threads its legacy argument
        through); the resulting market is identical for every
        ``jobs``/``cache`` combination.
        """
        entry = spec.entry()
        preset = entry.preset
        seed = spec.seed
        n_bundles = spec.n_bundles or preset.n_bundles
        if entry.synthetic:
            oracle = cls._synthetic_oracle(spec.dataset, entry, n_bundles, seed)
            dataset = None
        else:
            from repro.service.registry import BASE_MODELS

            n_samples = (
                preset.quick_n_samples if spec.quick else preset.full_n_samples
            )
            raw = entry.loader(seed=seed)
            dataset = raw.prepare(seed=seed, n_subsample=n_samples)
            catalogue = sample_bundles(
                dataset.d_data,
                n_bundles,
                rng=spawn(seed, spec.dataset, "bundles"),
                min_size=1,
            )
            params = BASE_MODELS.get(spec.base_model).preset_params(preset)
            if spec.model_params:
                params.update(spec.model_params)
            oracle = PerformanceOracle.build(
                dataset,
                catalogue,
                base_model=spec.base_model,
                model_params=params,
                seed=seed,
                jobs=spec.jobs,
                cache=spec.cache() if cache is _DEFAULT_CACHE else cache,
            )
        reserved = cost_based_reserved_prices(
            oracle.bundles,
            rng=spawn(seed, spec.dataset, "reserved"),
            gains={b: g for b, g in oracle.gains().items()},
            **preset.reserved_price_params,
        )
        config = preset.config
        if config.target_gain is None:
            # Fix the target up front so every strategy variant (and the
            # imperfect-information setting) shares the same opening state.
            target = float(
                np.quantile(
                    [max(g, 0.0) for g in oracle.gains().values()],
                    config.target_quantile,
                )
            )
            require(target > 0, f"{spec.dataset}: no bundle yields a positive gain")
            # Keep escalation headroom above the opening cap: the min-cap
            # concession step scales with (budget - cap), so a budget too
            # close to the eventual settlement price makes the end-game
            # crawl (geometrically shrinking concessions).
            opening_cap = config.initial_base + config.initial_rate * target
            config = config.with_overrides(
                target_gain=target,
                budget=max(config.budget, 2.0 * opening_cap),
            )
        if spec.config_overrides:
            config = config.with_overrides(**spec.config_overrides)
        return cls(
            oracle=oracle,
            reserved_prices=reserved,
            config=config,
            name=f"{spec.dataset}/{spec.base_model}"
            if not entry.synthetic
            else spec.dataset,
            dataset=dataset,
            n_data_features=dataset.d_data if dataset is not None
            else _SYNTHETIC_N_FEATURES,
        )

    @classmethod
    def _synthetic_oracle(
        cls, name: str, entry, n_bundles: int, seed: int
    ) -> PerformanceOracle:
        """A catalogue-only oracle: no dataset, no VFL courses.

        Mirrors the population sampler's synthetic catalogue model —
        bundle sizes drive gains with diminishing returns and
        idiosyncratic quality noise at the entry's ``gain_scale``.
        """
        bundles = sample_bundles(
            _SYNTHETIC_N_FEATURES,
            n_bundles,
            rng=spawn(seed, name, "bundles"),
            min_size=1,
        )
        gains = synthetic_gains(
            np.array([b.size for b in bundles], dtype=float),
            n_features=_SYNTHETIC_N_FEATURES,
            scale=entry.gain_scale,
            rng=spawn(seed, name, "gains"),
        )
        return PerformanceOracle.from_gains(
            {b: float(g) for b, g in zip(bundles, gains)}
        )

    @classmethod
    def for_dataset(
        cls,
        dataset_name: str,
        *,
        base_model: str = "random_forest",
        quick: bool = True,
        seed: int = 0,
        n_bundles: int | None = None,
        config_overrides: dict | None = None,
        model_params: dict | None = None,
        jobs: int = 1,
        cache: object = None,
    ) -> "Market":
        """Build the full market stack for a registered dataset.

        Legacy keyword front door over :meth:`from_spec`.  ``quick=True``
        uses reduced sample counts so the platform's pre-bargaining VFL
        sweeps finish in seconds; ``quick=False`` restores paper-scale
        rows.  ``jobs`` and ``cache`` go to the oracle factory (worker
        processes / persistent gain cache); the resulting market is
        identical for every combination.
        """
        from repro.service.specs import MarketSpec

        spec = MarketSpec(
            dataset=dataset_name.lower(),
            base_model=base_model,
            seed=seed,
            quick=quick,
            n_bundles=n_bundles,
            model_params=model_params,
            config_overrides=config_overrides,
            jobs=jobs,
            no_cache=cache is None,
        )
        # `cache` may be an arbitrary GainCache object; thread it
        # through verbatim rather than round-tripping a directory path.
        return cls.from_spec(spec, cache=cache)

    # ------------------------------------------------------------------
    # Bargaining
    # ------------------------------------------------------------------
    def build_engine(
        self,
        *,
        task: str = "strategic",
        data: str = "strategic",
        information: str = "perfect",
        seed: object = 0,
        cost_task: CostModel | None = None,
        cost_data: CostModel | None = None,
        config_overrides: dict | None = None,
    ) -> BargainingEngine:
        """Stand up one session's engine (strategies are single-use).

        ``task``/``data`` name registered party strategies
        (:mod:`repro.service.registry`); ``information="imperfect"``
        selects the estimator-guided pair for both sides (§3.5).  This
        is the seam the :class:`~repro.service.manager.SessionManager`
        brokers sessions through.
        """
        require(
            information in ("perfect", "imperfect"),
            "information must be 'perfect' or 'imperfect'",
        )
        from repro.service.registry import (
            StrategyContext,
            build_data_strategy,
            build_task_strategy,
        )

        config = self.config
        if config_overrides:
            config = config.with_overrides(**config_overrides)
        if information == "imperfect":
            task, data = "imperfect", "imperfect"
        gains = {b: self.oracle._gains[b] for b in self.oracle.bundles}
        task_strategy = build_task_strategy(
            task,
            StrategyContext(
                config=config,
                gains=gains,
                reserved_prices=self.reserved_prices,
                n_features=self.n_data_features,
                cost_model=cost_task,
                rng=spawn(seed, "task", self.name),
            ),
        )
        data_strategy = build_data_strategy(
            data,
            StrategyContext(
                config=config,
                gains=gains,
                reserved_prices=self.reserved_prices,
                n_features=self.n_data_features,
                cost_model=cost_data,
                rng=spawn(seed, "data", self.name),
            ),
        )
        return BargainingEngine(
            task_strategy,
            data_strategy,
            self.oracle,
            utility_rate=config.utility_rate,
            cost_task=cost_task,
            cost_data=cost_data,
            reserved_prices=self.reserved_prices,
            max_rounds=config.max_rounds,
        )

    def bargain(
        self,
        *,
        task: str = "strategic",
        data: str = "strategic",
        information: str = "perfect",
        seed: object = 0,
        cost_task: CostModel | None = None,
        cost_data: CostModel | None = None,
        config_overrides: dict | None = None,
    ) -> BargainOutcome:
        """Play one bargaining game and return its outcome."""
        engine = self.build_engine(
            task=task,
            data=data,
            information=information,
            seed=seed,
            cost_task=cost_task,
            cost_data=cost_data,
            config_overrides=config_overrides,
        )
        return engine.run()

    def bargain_many(
        self,
        n_runs: int,
        *,
        base_seed: int = 0,
        **kwargs: object,
    ) -> list[BargainOutcome]:
        """Repeat :meth:`bargain` with per-run seeds (the paper uses 100)."""
        require(n_runs >= 1, "n_runs must be >= 1")
        return [
            self.bargain(seed=spawn(base_seed, "run", i), **kwargs)  # type: ignore[arg-type]
            for i in range(n_runs)
        ]
