"""The `Market` facade: one object per (dataset, base model) market.

Typical use::

    market = Market.for_dataset("titanic", base_model="random_forest")
    outcome = market.bargain(seed=0)                       # Strategic
    outcome = market.bargain(task="increase_price", seed=0)  # baseline
    outcome = market.bargain(information="imperfect", seed=0)

``for_dataset`` assembles the whole stack: synthetic dataset ->
vertical partition -> bundle catalogue -> ΔG oracle (the trusted
platform's pre-bargaining VFL runs) -> cost-based reserved prices ->
calibrated :class:`~repro.market.config.MarketConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.data.synthetic import load_dataset
from repro.market.bundle import FeatureBundle, sample_bundles
from repro.market.config import MarketConfig
from repro.market.costs import CostModel
from repro.market.engine import BargainingEngine, BargainOutcome
from repro.market.oracle import PerformanceOracle
from repro.market.presets import preset_for
from repro.market.pricing import ReservedPrice, cost_based_reserved_prices
from repro.market.strategies.baselines import (
    IncreasePriceTaskParty,
    RandomBundleDataParty,
)
from repro.market.strategies.data_party import StrategicDataParty
from repro.market.strategies.imperfect import ImperfectDataParty, ImperfectTaskParty
from repro.market.strategies.task_party import StrategicTaskParty
from repro.utils.rng import spawn
from repro.utils.validation import require

__all__ = ["Market"]

_TASK_STRATEGIES = ("strategic", "increase_price")
_DATA_STRATEGIES = ("strategic", "random_bundle")


@dataclass
class Market:
    """A standing VFL feature market for one dataset and base model."""

    oracle: PerformanceOracle
    reserved_prices: dict[FeatureBundle, ReservedPrice]
    config: MarketConfig
    name: str = "market"
    dataset: PartitionedDataset | None = field(default=None, repr=False)
    n_data_features: int = 0

    def __post_init__(self) -> None:
        missing = [b for b in self.oracle.bundles if b not in self.reserved_prices]
        require(not missing, f"reserved prices missing for {missing[:3]}")
        if self.n_data_features == 0:
            self.n_data_features = 1 + max(
                max(b.indices) for b in self.oracle.bundles
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        dataset_name: str,
        *,
        base_model: str = "random_forest",
        quick: bool = True,
        seed: int = 0,
        n_bundles: int | None = None,
        config_overrides: dict | None = None,
        model_params: dict | None = None,
        jobs: int = 1,
        cache: object = None,
    ) -> "Market":
        """Build the full market stack for one of the paper's datasets.

        ``quick=True`` uses reduced sample counts so the platform's
        pre-bargaining VFL sweeps finish in seconds; ``quick=False``
        restores paper-scale rows.  ``jobs`` and ``cache`` go to the
        oracle factory (worker processes / persistent gain cache); the
        resulting market is identical for every combination.
        """
        preset = preset_for(dataset_name)
        n_samples = preset.quick_n_samples if quick else preset.full_n_samples
        raw = load_dataset(dataset_name, seed=seed)
        dataset = raw.prepare(seed=seed, n_subsample=n_samples)
        catalogue = sample_bundles(
            dataset.d_data,
            n_bundles or preset.n_bundles,
            rng=spawn(seed, dataset_name, "bundles"),
            min_size=1,
        )
        params = dict(
            preset.rf_params if base_model == "random_forest" else preset.mlp_params
        )
        if model_params:
            params.update(model_params)
        oracle = PerformanceOracle.build(
            dataset,
            catalogue,
            base_model=base_model,
            model_params=params,
            seed=seed,
            jobs=jobs,
            cache=cache,
        )
        reserved = cost_based_reserved_prices(
            catalogue,
            rng=spawn(seed, dataset_name, "reserved"),
            gains={b: g for b, g in oracle.gains().items()},
            **preset.reserved_price_params,
        )
        config = preset.config
        if config.target_gain is None:
            # Fix the target up front so every strategy variant (and the
            # imperfect-information setting) shares the same opening state.
            target = float(
                np.quantile(
                    [max(g, 0.0) for g in oracle.gains().values()],
                    config.target_quantile,
                )
            )
            require(target > 0, f"{dataset_name}: no bundle yields a positive gain")
            # Keep escalation headroom above the opening cap: the min-cap
            # concession step scales with (budget - cap), so a budget too
            # close to the eventual settlement price makes the end-game
            # crawl (geometrically shrinking concessions).
            opening_cap = config.initial_base + config.initial_rate * target
            config = config.with_overrides(
                target_gain=target,
                budget=max(config.budget, 2.0 * opening_cap),
            )
        if config_overrides:
            config = config.with_overrides(**config_overrides)
        return cls(
            oracle=oracle,
            reserved_prices=reserved,
            config=config,
            name=f"{dataset_name}/{base_model}",
            dataset=dataset,
            n_data_features=dataset.d_data,
        )

    # ------------------------------------------------------------------
    # Bargaining
    # ------------------------------------------------------------------
    def _build_engine(
        self,
        task: str,
        data: str,
        information: str,
        seed: object,
        cost_task: CostModel | None,
        cost_data: CostModel | None,
        config: MarketConfig,
    ) -> BargainingEngine:
        gains = {b: self.oracle._gains[b] for b in self.oracle.bundles}
        if information == "imperfect":
            task_strategy = ImperfectTaskParty(
                config, rng=spawn(seed, "task", self.name)
            )
            data_strategy = ImperfectDataParty(
                list(gains),
                self.reserved_prices,
                config,
                self.n_data_features,
                rng=spawn(seed, "data", self.name),
            )
            return BargainingEngine(
                task_strategy,
                data_strategy,
                self.oracle,
                utility_rate=config.utility_rate,
                cost_task=cost_task,
                cost_data=cost_data,
                reserved_prices=self.reserved_prices,
                max_rounds=config.max_rounds,
            )
        require(task in _TASK_STRATEGIES, f"task must be one of {_TASK_STRATEGIES}")
        require(data in _DATA_STRATEGIES, f"data must be one of {_DATA_STRATEGIES}")
        known = list(gains.values())
        if task == "strategic":
            task_strategy: object = StrategicTaskParty(
                config, known, cost_model=cost_task, rng=spawn(seed, "task", self.name)
            )
        else:
            task_strategy = IncreasePriceTaskParty(
                config, known, rng=spawn(seed, "task", self.name)
            )
        if data == "strategic":
            data_strategy: object = StrategicDataParty(
                gains, self.reserved_prices, config, cost_model=cost_data
            )
        else:
            data_strategy = RandomBundleDataParty(
                gains, self.reserved_prices, config, rng=spawn(seed, "data", self.name)
            )
        return BargainingEngine(
            task_strategy,
            data_strategy,
            self.oracle,
            utility_rate=config.utility_rate,
            cost_task=cost_task,
            cost_data=cost_data,
            reserved_prices=self.reserved_prices,
            max_rounds=config.max_rounds,
        )

    def bargain(
        self,
        *,
        task: str = "strategic",
        data: str = "strategic",
        information: str = "perfect",
        seed: object = 0,
        cost_task: CostModel | None = None,
        cost_data: CostModel | None = None,
        config_overrides: dict | None = None,
    ) -> BargainOutcome:
        """Play one bargaining game and return its outcome."""
        require(
            information in ("perfect", "imperfect"),
            "information must be 'perfect' or 'imperfect'",
        )
        config = self.config
        if config_overrides:
            config = config.with_overrides(**config_overrides)
        engine = self._build_engine(
            task, data, information, seed, cost_task, cost_data, config
        )
        return engine.run()

    def bargain_many(
        self,
        n_runs: int,
        *,
        base_seed: int = 0,
        **kwargs: object,
    ) -> list[BargainOutcome]:
        """Repeat :meth:`bargain` with per-run seeds (the paper uses 100)."""
        require(n_runs >= 1, "n_runs must be >= 1")
        return [
            self.bargain(seed=spawn(base_seed, "run", i), **kwargs)  # type: ignore[arg-type]
            for i in range(n_runs)
        ]
