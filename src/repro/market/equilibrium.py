"""Equilibrium theory utilities: Theorem 3.1, Lemma 3.1, Props. 3.1-3.2.

These functions make the paper's analysis executable:

* :func:`equivalent_quote` constructs the outcome-preserving transformed
  quote of **Theorem 3.1** (cap tightened to ``P0 + p·ΔG``);
* :func:`select_dominant_quote` applies **Lemma 3.1**'s weak-dominance
  argument to a candidate set;
* :func:`is_equilibrium_price` tests the **Eq. 5** criterion
  ``(Ph − P0)/p = ΔG``;
* :func:`epsilon_t_from_cost_tolerance` / :func:`epsilon_d_from_cost_tolerance`
  are the closed-form threshold conversions of **Props. 3.1/3.2**
  (constant-cost bargaining reduces to the ε-termination rules).
"""

from __future__ import annotations

from repro.market.objectives import task_net_profit
from repro.market.pricing import QuotedPrice, ReservedPrice
from repro.utils.validation import require

__all__ = [
    "epsilon_d_from_cost_tolerance",
    "epsilon_t_from_cost_tolerance",
    "equivalent_quote",
    "is_equilibrium_price",
    "select_dominant_quote",
]


def equivalent_quote(quote: QuotedPrice, delta_g: float) -> QuotedPrice:
    """Theorem 3.1's transformed quote ``(p, P0, p·ΔG + P0)``.

    For the bundle realising ``delta_g`` under ``quote``, the returned
    quote yields the same offered bundle, payment, and net profit while
    satisfying the equilibrium criterion ``(Ph* − P0*)/p* = ΔG``.
    """
    require(delta_g >= 0, "Theorem 3.1 applies to non-negative gains")
    new_cap = quote.base + quote.rate * delta_g
    # The cap-slack tolerance must scale with the cap's magnitude:
    # ``base + rate * turning_point`` already loses ~``cap * eps`` to
    # rounding, which dwarfs any absolute slack once caps reach ~1e7
    # (real-currency markets quote in cents, not unit payments).
    slack = 1e-9 * max(1.0, abs(quote.cap))
    require(
        new_cap <= quote.cap + slack,
        "transformed cap exceeds the original quote's cap; "
        "delta_g must not exceed the original turning point",
    )
    return QuotedPrice(rate=quote.rate, base=quote.base, cap=min(new_cap, quote.cap))


def is_equilibrium_price(
    quote: QuotedPrice, delta_g: float, *, tolerance: float = 1e-9
) -> bool:
    """Eq. 5: does ``(Ph − P0)/p`` equal the realised gain (within tolerance)?"""
    return abs(quote.turning_point - delta_g) <= tolerance


def select_dominant_quote(
    candidates: list[QuotedPrice], delta_g: float, utility_rate: float
) -> QuotedPrice:
    """Lemma 3.1: the weakly-dominant quote for achieving ``delta_g``.

    Picks the net-profit-maximising candidate, then applies Theorem
    3.1's transform so the result satisfies Eq. 5 while yielding the
    same net profit.
    """
    require(bool(candidates), "need at least one candidate quote")
    best = max(candidates, key=lambda q: task_net_profit(q, delta_g, utility_rate))
    return equivalent_quote(best, min(delta_g, best.turning_point))


def epsilon_t_from_cost_tolerance(
    eps_tc: float, utility_rate: float, rate: float
) -> float:
    """Prop. 3.2: constant-cost acceptance (Eq. 7) equals Case-5 with
    ``ε_t = ε_tc / (u − p)``."""
    require(utility_rate > rate, "requires u > p")
    require(eps_tc >= 0, "eps_tc must be >= 0")
    return eps_tc / (utility_rate - rate)


def epsilon_d_from_cost_tolerance(
    eps_dc: float,
    quote: QuotedPrice,
    reserved: ReservedPrice,
) -> float:
    """Prop. 3.1: constant-cost acceptance (Eq. 6) equals Case-2 with

    ``ε_d = (ε_dc − (max{P_l, P0} + max{p_l, p}·TP − Ph)) / p``

    where ``TP`` is the quote's turning point.
    """
    require(eps_dc >= 0, "eps_dc must be >= 0")
    conservative_next = (
        max(reserved.base, quote.base)
        + max(reserved.rate, quote.rate) * quote.turning_point
    )
    return (eps_dc - (conservative_next - quote.cap)) / quote.rate
