"""The iterative bargaining engine (§3.3, Algorithm 1).

One round = Step 1 (task party quotes) -> Step 2 (data party offers a
bundle or fails) -> Step 3 (VFL course realises ΔG) -> termination
checks on both sides.  The engine is strategy-agnostic: perfect-info,
baseline and imperfect-info parties all plug into the same loop, and
the cost models/termination tolerances come from the strategies
themselves.

The engine records a full :class:`RoundRecord` trail; experiment
harnesses aggregate those into the paper's Figure 2/3 curves.

The round loop is exposed two ways:

* :meth:`BargainingEngine.run` plays one game to completion (the
  original API, unchanged);
* :meth:`BargainingEngine.start` / :meth:`BargainingEngine.step`
  advance the game one round at a time over an immutable
  :class:`EngineState`, which is what lets
  :class:`repro.simulate.SessionPool` interleave thousands of
  concurrent games round-by-round.  ``run()`` is a thin loop over
  ``step()``, so the two produce byte-identical record trails
  (pinned by ``tests/market/test_engine_golden.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.market.bundle import FeatureBundle
from repro.market.costs import CostModel, NoCost
from repro.market.oracle import PerformanceOracle
from repro.market.pricing import QuotedPrice, ReservedPrice
from repro.market.strategies.base import DataStrategy, TaskStrategy
from repro.market.termination import Decision
from repro.utils.validation import require

__all__ = ["BargainOutcome", "BargainingEngine", "EngineState", "RoundRecord"]

#: Checkpoint wire-format version; bump on incompatible layout changes.
STATE_FORMAT_VERSION = 1


def _encode_float(value: float) -> float | str:
    """JSON-safe float: non-finite values become their string names.

    The canonical serialiser (:mod:`repro.utils.canonical`) rejects
    NaN/Infinity (they are not valid JSON), but failed rounds carry
    ``delta_g = nan`` — so the wire format spells them out.
    """
    value = float(value)
    if value != value:
        return "nan"
    if value in (float("inf"), float("-inf")):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value: float | str) -> float:
    return float(value)


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one bargaining round."""

    round_number: int
    quote: QuotedPrice
    bundle: FeatureBundle | None
    delta_g: float
    payment: float
    net_profit: float
    cost_task: float
    cost_data: float
    data_decision: Decision
    task_decision: Decision | None

    def to_dict(self) -> dict:
        """Canonical plain-dict form (checkpoint wire format)."""
        return {
            "round_number": int(self.round_number),
            "quote": self.quote.to_dict(),
            "bundle": list(self.bundle.indices) if self.bundle else None,
            "delta_g": _encode_float(self.delta_g),
            "payment": _encode_float(self.payment),
            "net_profit": _encode_float(self.net_profit),
            "cost_task": _encode_float(self.cost_task),
            "cost_data": _encode_float(self.cost_data),
            "data_decision": self.data_decision.value,
            "task_decision": (
                self.task_decision.value if self.task_decision else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RoundRecord":
        """Inverse of :meth:`to_dict`."""
        bundle = payload["bundle"]
        task_decision = payload["task_decision"]
        return cls(
            round_number=int(payload["round_number"]),
            quote=QuotedPrice.from_dict(payload["quote"]),
            bundle=FeatureBundle.of(bundle) if bundle is not None else None,
            delta_g=_decode_float(payload["delta_g"]),
            payment=_decode_float(payload["payment"]),
            net_profit=_decode_float(payload["net_profit"]),
            cost_task=_decode_float(payload["cost_task"]),
            cost_data=_decode_float(payload["cost_data"]),
            data_decision=Decision(payload["data_decision"]),
            task_decision=(
                Decision(task_decision) if task_decision is not None else None
            ),
        )


@dataclass(frozen=True)
class BargainOutcome:
    """Terminal state of one bargaining game.

    ``status`` is ``"accepted"`` (transaction succeeded), ``"failed"``
    (a party walked away — Cases 1/4) or ``"max_rounds"`` (round cap,
    counted as failed per §4.1.2).  Monetary fields are the *final
    round's* realised quantities; the ``*_after_cost`` variants follow
    §3.4.4's additive cost treatment.
    """

    status: str
    terminated_by: str
    n_rounds: int
    quote: QuotedPrice | None
    bundle: FeatureBundle | None
    delta_g: float
    payment: float
    net_profit: float
    cost_task: float
    cost_data: float
    reserved_of_bundle: ReservedPrice | None
    history: list[RoundRecord] = field(repr=False, default_factory=list)

    @property
    def accepted(self) -> bool:
        """True when the transaction succeeded."""
        return self.status == "accepted"

    @property
    def net_profit_after_cost(self) -> float:
        """``u·ΔG − payment − C_t(T)`` (§3.4.4)."""
        return self.net_profit - self.cost_task

    @property
    def payment_after_cost(self) -> float:
        """``payment − C_d(T)`` (§3.4.4)."""
        return self.payment - self.cost_data

    def to_dict(self) -> dict:
        """Canonical plain-dict form, **excluding** ``history``.

        The record trail is serialised once at the
        :meth:`EngineState.to_dict` level (a terminal state's outcome
        shares the state's own history), so the outcome payload stays
        compact; :meth:`from_dict` re-attaches it.
        """
        return {
            "status": self.status,
            "terminated_by": self.terminated_by,
            "n_rounds": int(self.n_rounds),
            "quote": self.quote.to_dict() if self.quote else None,
            "bundle": list(self.bundle.indices) if self.bundle else None,
            "delta_g": _encode_float(self.delta_g),
            "payment": _encode_float(self.payment),
            "net_profit": _encode_float(self.net_profit),
            "cost_task": _encode_float(self.cost_task),
            "cost_data": _encode_float(self.cost_data),
            "reserved_of_bundle": (
                self.reserved_of_bundle.to_dict()
                if self.reserved_of_bundle
                else None
            ),
        }

    @classmethod
    def from_dict(
        cls, payload: dict, *, history: list["RoundRecord"] | None = None
    ) -> "BargainOutcome":
        """Inverse of :meth:`to_dict`; ``history`` re-attaches the trail."""
        quote = payload["quote"]
        bundle = payload["bundle"]
        reserved = payload["reserved_of_bundle"]
        return cls(
            status=str(payload["status"]),
            terminated_by=str(payload["terminated_by"]),
            n_rounds=int(payload["n_rounds"]),
            quote=QuotedPrice.from_dict(quote) if quote is not None else None,
            bundle=FeatureBundle.of(bundle) if bundle is not None else None,
            delta_g=_decode_float(payload["delta_g"]),
            payment=_decode_float(payload["payment"]),
            net_profit=_decode_float(payload["net_profit"]),
            cost_task=_decode_float(payload["cost_task"]),
            cost_data=_decode_float(payload["cost_data"]),
            reserved_of_bundle=(
                ReservedPrice.from_dict(reserved) if reserved is not None else None
            ),
            history=list(history) if history is not None else [],
        )


@dataclass(frozen=True)
class EngineState:
    """Loop state of one bargaining game between two rounds.

    ``round_number`` counts fully played rounds; ``quote`` is the quote
    standing for the *next* round; ``history`` is the record trail so
    far.  A terminal state carries the :class:`BargainOutcome` in
    ``outcome``; stepping a terminal state is an error.

    The state is immutable and cheap to retain, which makes games
    resumable and schedulable: a pool can hold thousands of states and
    advance each one round at a time.  Note that *strategies* keep
    their own learning state (estimators, offer trails) — an
    ``EngineState`` is only resumable together with the engine that
    produced it.

    Rebuilding ``history`` per step is quadratic in rounds, but the
    protocol caps games at ``max_rounds`` (the paper uses 500, where
    the whole trail costs ~0.2 ms per game); revisit if round caps
    ever grow by orders of magnitude.
    """

    round_number: int
    quote: QuotedPrice
    history: tuple[RoundRecord, ...] = ()
    outcome: BargainOutcome | None = None

    @property
    def done(self) -> bool:
        """True once the game has terminated."""
        return self.outcome is not None

    # ------------------------------------------------------------------
    # Checkpoint wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical plain-dict form: the checkpoint wire format.

        Everything the state holds — the standing quote, the full record
        trail, and (for terminal states) the outcome — as JSON-native
        values, canonically serialisable by :mod:`repro.utils.canonical`
        (non-finite floats are spelled ``"nan"``/``"inf"``/``"-inf"``).
        Note that *strategies* keep their own learning state: restoring
        a serialised state into a fresh engine requires replaying it
        (see :meth:`repro.service.manager.SessionManager.restore`),
        which :meth:`digest` lets the restorer verify bit-for-bit.
        """
        return {
            "version": STATE_FORMAT_VERSION,
            "round_number": int(self.round_number),
            "quote": self.quote.to_dict(),
            "history": [record.to_dict() for record in self.history],
            "outcome": self.outcome.to_dict() if self.outcome else None,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineState":
        """Inverse of :meth:`to_dict`; rejects unknown format versions."""
        version = payload.get("version")
        require(
            version == STATE_FORMAT_VERSION,
            f"unsupported engine-state format version {version!r} "
            f"(this build reads version {STATE_FORMAT_VERSION})",
        )
        history = tuple(
            RoundRecord.from_dict(record) for record in payload["history"]
        )
        outcome = payload["outcome"]
        return cls(
            round_number=int(payload["round_number"]),
            quote=QuotedPrice.from_dict(payload["quote"]),
            history=history,
            outcome=(
                BargainOutcome.from_dict(outcome, history=list(history))
                if outcome is not None
                else None
            ),
        )

    def digest(self) -> str:
        """Content digest of the canonical form (checkpoint integrity key)."""
        from repro.utils.canonical import content_digest

        return content_digest(self.to_dict())


class BargainingEngine:
    """Runs one bargaining game between two strategies over an oracle.

    Parameters
    ----------
    task_strategy / data_strategy:
        The two parties.
    oracle:
        The performance-gain ground truth; ``oracle.delta_g(bundle)``
        *is* the VFL course of Step 3 (pre-computed by the platform).
    utility_rate:
        ``u`` for net-profit accounting.
    cost_task / cost_data:
        Additive bargaining-cost models (default frictionless).
    reserved_prices:
        Optional reporting aid: lets outcomes carry the reserved price
        of the transacted bundle (Table 4's Δp / ΔP0 columns).
    max_rounds:
        Hard cap; exceeding it fails the transaction.
    """

    def __init__(
        self,
        task_strategy: TaskStrategy,
        data_strategy: DataStrategy,
        oracle: PerformanceOracle,
        *,
        utility_rate: float,
        cost_task: CostModel | None = None,
        cost_data: CostModel | None = None,
        reserved_prices: dict[FeatureBundle, ReservedPrice] | None = None,
        max_rounds: int = 500,
    ):
        require(utility_rate > 0, "utility_rate must be > 0")
        require(max_rounds >= 1, "max_rounds must be >= 1")
        self.task = task_strategy
        self.data = data_strategy
        self.oracle = oracle
        self.utility_rate = float(utility_rate)
        self.cost_task = cost_task or NoCost()
        self.cost_data = cost_data or NoCost()
        self.reserved_prices = reserved_prices or {}
        self.max_rounds = int(max_rounds)

    # ------------------------------------------------------------------
    def _outcome(
        self,
        status: str,
        terminated_by: str,
        round_number: int,
        record: RoundRecord | None,
        history: list[RoundRecord],
    ) -> BargainOutcome:
        if record is None or record.bundle is None:
            return BargainOutcome(
                status=status,
                terminated_by=terminated_by,
                n_rounds=round_number,
                quote=record.quote if record else None,
                bundle=None,
                delta_g=float("nan"),
                payment=0.0,
                net_profit=0.0,
                cost_task=self.cost_task(round_number),
                cost_data=self.cost_data(round_number),
                reserved_of_bundle=None,
                history=history,
            )
        return BargainOutcome(
            status=status,
            terminated_by=terminated_by,
            n_rounds=round_number,
            quote=record.quote,
            bundle=record.bundle,
            delta_g=record.delta_g,
            payment=record.payment,
            net_profit=record.net_profit,
            cost_task=record.cost_task,
            cost_data=record.cost_data,
            reserved_of_bundle=self.reserved_prices.get(record.bundle),
            history=history,
        )

    def start(self) -> EngineState:
        """The pre-game state: the opening quote, no rounds played."""
        return EngineState(round_number=0, quote=self.task.initial_quote())

    def _terminal(
        self,
        status: str,
        terminated_by: str,
        round_number: int,
        quote: QuotedPrice,
        record: RoundRecord | None,
        history: tuple[RoundRecord, ...],
    ) -> EngineState:
        """A terminal state carrying the game's outcome."""
        return EngineState(
            round_number, quote, history,
            self._outcome(status, terminated_by, round_number, record,
                          list(history)),
        )

    def step(self, state: EngineState) -> EngineState:
        """Play exactly one round (Steps 1-3 of §3.3) and return the
        successor state.

        The returned state is terminal (``.done``) when either party
        walked away or accepted, or when the round cap was reached;
        otherwise it carries the escalated quote for the next round.
        """
        require(not state.done, "cannot step a terminated game")
        round_number = state.round_number + 1
        quote = state.quote
        # Step 2: the data party reacts to the standing quote.
        response = self.data.respond(quote, round_number)
        if response.decision is Decision.FAIL:
            fail_record = RoundRecord(
                round_number, quote, None, float("nan"), 0.0, 0.0,
                self.cost_task(round_number), self.cost_data(round_number),
                Decision.FAIL, None,
            )
            return self._terminal("failed", "data_party", round_number, quote,
                                  fail_record, state.history + (fail_record,))
        bundle = response.bundle
        assert bundle is not None
        # Step 3: the VFL course realises the gain.
        delta_g = self.oracle.delta_g(bundle)
        payment = quote.payment(delta_g)
        net_profit = self.utility_rate * delta_g - payment
        record = RoundRecord(
            round_number=round_number,
            quote=quote,
            bundle=bundle,
            delta_g=delta_g,
            payment=payment,
            net_profit=net_profit,
            cost_task=self.cost_task(round_number),
            cost_data=self.cost_data(round_number),
            data_decision=response.decision,
            task_decision=None,
        )
        # Both parties observe the realised gain (estimator updates).
        self.task.observe(quote, bundle, delta_g)
        self.data.observe(quote, bundle, delta_g)
        if response.decision is Decision.ACCEPT:
            return self._terminal("accepted", "data_party", round_number, quote,
                                  record, state.history + (record,))
        # Step 1 of the next round: the task party reacts.
        decision = self.task.decide(quote, delta_g, round_number)
        record = replace(record, task_decision=decision.decision)
        history = state.history + (record,)
        if decision.decision is Decision.FAIL:
            return self._terminal("failed", "task_party", round_number, quote,
                                  record, history)
        if decision.decision is Decision.ACCEPT:
            return self._terminal("accepted", "task_party", round_number, quote,
                                  record, history)
        assert decision.quote is not None
        if round_number >= self.max_rounds:
            return self._terminal("max_rounds", "engine", self.max_rounds,
                                  decision.quote, record, history)
        return EngineState(round_number, decision.quote, history)

    def run(self) -> BargainOutcome:
        """Play the game to termination and return the outcome.

        Thin wrapper over :meth:`start`/:meth:`step`; the record trail
        is identical to stepping manually.
        """
        state = self.start()
        while not state.done:
            state = self.step(state)
        assert state.outcome is not None
        return state.outcome
