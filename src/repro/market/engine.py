"""The iterative bargaining engine (§3.3, Algorithm 1).

One round = Step 1 (task party quotes) -> Step 2 (data party offers a
bundle or fails) -> Step 3 (VFL course realises ΔG) -> termination
checks on both sides.  The engine is strategy-agnostic: perfect-info,
baseline and imperfect-info parties all plug into the same loop, and
the cost models/termination tolerances come from the strategies
themselves.

The engine records a full :class:`RoundRecord` trail; experiment
harnesses aggregate those into the paper's Figure 2/3 curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.market.bundle import FeatureBundle
from repro.market.costs import CostModel, NoCost
from repro.market.oracle import PerformanceOracle
from repro.market.pricing import QuotedPrice, ReservedPrice
from repro.market.strategies.base import DataStrategy, TaskStrategy
from repro.market.termination import Decision
from repro.utils.validation import require

__all__ = ["BargainOutcome", "BargainingEngine", "RoundRecord"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one bargaining round."""

    round_number: int
    quote: QuotedPrice
    bundle: FeatureBundle | None
    delta_g: float
    payment: float
    net_profit: float
    cost_task: float
    cost_data: float
    data_decision: Decision
    task_decision: Decision | None


@dataclass(frozen=True)
class BargainOutcome:
    """Terminal state of one bargaining game.

    ``status`` is ``"accepted"`` (transaction succeeded), ``"failed"``
    (a party walked away — Cases 1/4) or ``"max_rounds"`` (round cap,
    counted as failed per §4.1.2).  Monetary fields are the *final
    round's* realised quantities; the ``*_after_cost`` variants follow
    §3.4.4's additive cost treatment.
    """

    status: str
    terminated_by: str
    n_rounds: int
    quote: QuotedPrice | None
    bundle: FeatureBundle | None
    delta_g: float
    payment: float
    net_profit: float
    cost_task: float
    cost_data: float
    reserved_of_bundle: ReservedPrice | None
    history: list[RoundRecord] = field(repr=False, default_factory=list)

    @property
    def accepted(self) -> bool:
        """True when the transaction succeeded."""
        return self.status == "accepted"

    @property
    def net_profit_after_cost(self) -> float:
        """``u·ΔG − payment − C_t(T)`` (§3.4.4)."""
        return self.net_profit - self.cost_task

    @property
    def payment_after_cost(self) -> float:
        """``payment − C_d(T)`` (§3.4.4)."""
        return self.payment - self.cost_data


class BargainingEngine:
    """Runs one bargaining game between two strategies over an oracle.

    Parameters
    ----------
    task_strategy / data_strategy:
        The two parties.
    oracle:
        The performance-gain ground truth; ``oracle.delta_g(bundle)``
        *is* the VFL course of Step 3 (pre-computed by the platform).
    utility_rate:
        ``u`` for net-profit accounting.
    cost_task / cost_data:
        Additive bargaining-cost models (default frictionless).
    reserved_prices:
        Optional reporting aid: lets outcomes carry the reserved price
        of the transacted bundle (Table 4's Δp / ΔP0 columns).
    max_rounds:
        Hard cap; exceeding it fails the transaction.
    """

    def __init__(
        self,
        task_strategy: TaskStrategy,
        data_strategy: DataStrategy,
        oracle: PerformanceOracle,
        *,
        utility_rate: float,
        cost_task: CostModel | None = None,
        cost_data: CostModel | None = None,
        reserved_prices: dict[FeatureBundle, ReservedPrice] | None = None,
        max_rounds: int = 500,
    ):
        require(utility_rate > 0, "utility_rate must be > 0")
        require(max_rounds >= 1, "max_rounds must be >= 1")
        self.task = task_strategy
        self.data = data_strategy
        self.oracle = oracle
        self.utility_rate = float(utility_rate)
        self.cost_task = cost_task or NoCost()
        self.cost_data = cost_data or NoCost()
        self.reserved_prices = reserved_prices or {}
        self.max_rounds = int(max_rounds)

    # ------------------------------------------------------------------
    def _outcome(
        self,
        status: str,
        terminated_by: str,
        round_number: int,
        record: RoundRecord | None,
        history: list[RoundRecord],
    ) -> BargainOutcome:
        if record is None or record.bundle is None:
            return BargainOutcome(
                status=status,
                terminated_by=terminated_by,
                n_rounds=round_number,
                quote=record.quote if record else None,
                bundle=None,
                delta_g=float("nan"),
                payment=0.0,
                net_profit=0.0,
                cost_task=self.cost_task(round_number),
                cost_data=self.cost_data(round_number),
                reserved_of_bundle=None,
                history=history,
            )
        return BargainOutcome(
            status=status,
            terminated_by=terminated_by,
            n_rounds=round_number,
            quote=record.quote,
            bundle=record.bundle,
            delta_g=record.delta_g,
            payment=record.payment,
            net_profit=record.net_profit,
            cost_task=record.cost_task,
            cost_data=record.cost_data,
            reserved_of_bundle=self.reserved_prices.get(record.bundle),
            history=history,
        )

    def run(self) -> BargainOutcome:
        """Play the game to termination and return the outcome."""
        history: list[RoundRecord] = []
        quote = self.task.initial_quote()
        record: RoundRecord | None = None
        for round_number in range(1, self.max_rounds + 1):
            # Step 2: the data party reacts to the standing quote.
            response = self.data.respond(quote, round_number)
            if response.decision is Decision.FAIL:
                fail_record = RoundRecord(
                    round_number, quote, None, float("nan"), 0.0, 0.0,
                    self.cost_task(round_number), self.cost_data(round_number),
                    Decision.FAIL, None,
                )
                history.append(fail_record)
                return self._outcome("failed", "data_party", round_number, fail_record, history)
            bundle = response.bundle
            assert bundle is not None
            # Step 3: the VFL course realises the gain.
            delta_g = self.oracle.delta_g(bundle)
            payment = quote.payment(delta_g)
            net_profit = self.utility_rate * delta_g - payment
            record = RoundRecord(
                round_number=round_number,
                quote=quote,
                bundle=bundle,
                delta_g=delta_g,
                payment=payment,
                net_profit=net_profit,
                cost_task=self.cost_task(round_number),
                cost_data=self.cost_data(round_number),
                data_decision=response.decision,
                task_decision=None,
            )
            history.append(record)
            # Both parties observe the realised gain (estimator updates).
            self.task.observe(quote, bundle, delta_g)
            self.data.observe(quote, bundle, delta_g)
            if response.decision is Decision.ACCEPT:
                return self._outcome("accepted", "data_party", round_number, record, history)
            # Step 1 of the next round: the task party reacts.
            decision = self.task.decide(quote, delta_g, round_number)
            history[-1] = record = replace(record, task_decision=decision.decision)
            if decision.decision is Decision.FAIL:
                return self._outcome("failed", "task_party", round_number, record, history)
            if decision.decision is Decision.ACCEPT:
                return self._outcome("accepted", "task_party", round_number, record, history)
            assert decision.quote is not None
            quote = decision.quote
        return self._outcome(
            "max_rounds", "engine", self.max_rounds, record, history
        )
