"""Termination predicates: Cases 1-6 (§3.4.3) and their cost-aware forms.

The bargaining engine consults these pure functions; keeping them free
of strategy state makes the paper's case analysis directly unit- and
property-testable.  Imperfect-information Cases I-VII (§3.5.4) reuse
the same predicates on *estimated* gains plus the exploration-round
relaxation, which lives in the engine.
"""

from __future__ import annotations

import enum

from repro.market.costs import CostModel
from repro.market.objectives import break_even_gain
from repro.market.pricing import QuotedPrice, ReservedPrice

__all__ = [
    "Decision",
    "data_accepts",
    "data_accepts_with_cost",
    "no_affordable_bundle",
    "task_accepts",
    "task_accepts_with_cost",
    "task_fails",
    "task_fails_regression",
]


class Decision(enum.Enum):
    """Outcome of a party's termination check for the current round."""

    CONTINUE = "continue"
    ACCEPT = "accept"
    FAIL = "fail"


def no_affordable_bundle(affordable_count: int) -> bool:
    """Case 1 / Case I: every bundle's reserved price exceeds the quote."""
    return affordable_count == 0


def data_accepts(quote: QuotedPrice, gain_of_selected: float, eps_d: float) -> bool:
    """Case 2 / Case II-1: the selected bundle sits within ``ε_d`` of the
    turning point, so the data party's payment is (near-)maximal."""
    return quote.turning_point - gain_of_selected <= eps_d


def task_fails(quote: QuotedPrice, delta_g: float, utility_rate: float) -> bool:
    """Case 4 / Case IV: realised gain below break-even ``P0/(u − p)``."""
    return delta_g < break_even_gain(quote, utility_rate)


def task_fails_regression(
    opening_quote: QuotedPrice,
    delta_g: float,
    best_previous: float,
    utility_rate: float,
) -> bool:
    """Case 4 as the walk-away rule the paper's experiments exhibit.

    Two refinements over the literal predicate, both forced by the
    paper's own evidence (see DESIGN.md):

    * the break-even threshold anchors to the **opening** quote — the
      buyer's outside option is fixed at game start, otherwise its own
      concessions would raise its walk-away bar mid-game;
    * an offer below break-even only kills the game when it **regresses
      below the best gain already offered** — the paper's Figure 2(k)
      shows strategic bargaining surviving early below-break-even
      rounds, while Random Bundle's junk re-offers (the regression
      case) are reported as Case-4 failures.
    """
    below_break_even = delta_g < break_even_gain(opening_quote, utility_rate)
    return below_break_even and delta_g < best_previous


def task_accepts(quote: QuotedPrice, delta_g: float, eps_t: float) -> bool:
    """Case 5 / Case V: realised gain within ``ε_t`` of the turning point."""
    return delta_g >= quote.turning_point - eps_t


def data_accepts_with_cost(
    quote: QuotedPrice,
    gain_of_selected: float,
    reserved_of_target: ReservedPrice,
    cost_model: CostModel,
    round_number: int,
    eps_dc: float,
) -> bool:
    """Eq. 6: accept when this round's revenue beats a conservative
    estimate of next round's, net of the growing bargaining cost.

    LHS — revenue now:   ``P0 + p·ΔG_i − C_d(T)``.
    RHS — next round's *lowest* revenue if the target bundle ``F_j``
    (the one at the turning point) transacts: the quote can only rise,
    so it is bounded below by ``max{P_l, P0} + max{p_l, p}·ΔG_j``,
    minus ``C_d(T+1)`` and the tolerance ``ε_dc``.
    """
    lhs = quote.base + quote.rate * gain_of_selected - cost_model(round_number)
    next_payment = (
        max(reserved_of_target.base, quote.base)
        + max(reserved_of_target.rate, quote.rate) * quote.turning_point
    )
    rhs = next_payment - cost_model(round_number + 1) - eps_dc
    return lhs >= rhs


def task_accepts_with_cost(
    quote: QuotedPrice,
    delta_g: float,
    utility_rate: float,
    cost_model: CostModel,
    round_number: int,
    eps_tc: float,
) -> bool:
    """Eq. 7: accept when this round's net profit beats the *upper bound*
    of next round's.

    LHS — profit now: ``u·ΔG − (P0 + p·ΔG) − C_t(T)``.
    RHS — best possible next round: gain at the current turning point,
    paid at today's cap (next round's cap only rises), minus
    ``C_t(T+1)`` and the tolerance ``ε_tc``.
    """
    lhs = (
        utility_rate * delta_g
        - (quote.base + quote.rate * delta_g)
        - cost_model(round_number)
    )
    rhs = (
        utility_rate * quote.turning_point
        - quote.cap
        - cost_model(round_number + 1)
        - eps_tc
    )
    return lhs >= rhs
