"""The bargaining-based VFL feature market — the paper's contribution.

Layered as: goods (:mod:`~repro.market.bundle`), prices and the payment
function (:mod:`~repro.market.pricing`), participant objectives
(:mod:`~repro.market.objectives`), bargaining costs
(:mod:`~repro.market.costs`), the trusted-platform ΔG oracle
(:mod:`~repro.market.oracle`), equilibrium theory
(:mod:`~repro.market.equilibrium`), termination rules
(:mod:`~repro.market.termination`), strategies
(:mod:`~repro.market.strategies`), the round-loop engine
(:mod:`~repro.market.engine`), and the :class:`~repro.market.market.Market`
facade tying a dataset's market together.
"""

from repro.market.bundle import FeatureBundle, enumerate_bundles, sample_bundles
from repro.market.config import MarketConfig
from repro.market.costs import (
    ConstantCost,
    CostModel,
    ExponentialCost,
    LinearCost,
    NoCost,
    ScaledCost,
    make_cost,
)
from repro.market.engine import (
    BargainingEngine,
    BargainOutcome,
    EngineState,
    RoundRecord,
)
from repro.market.equilibrium import (
    epsilon_d_from_cost_tolerance,
    epsilon_t_from_cost_tolerance,
    equivalent_quote,
    is_equilibrium_price,
    select_dominant_quote,
)
from repro.market.estimation import DataGainEstimator, TaskGainEstimator
from repro.market.market import Market
from repro.market.objectives import break_even_gain, data_revenue_gap, task_net_profit
from repro.market.oracle import MemoisedOracle, PerformanceOracle
from repro.market.presets import MARKET_PRESETS, MarketPreset, preset_for
from repro.market.pricing import (
    QuotedPrice,
    ReservedPrice,
    cost_based_reserved_prices,
)
from repro.market.strategies import (
    ImperfectDataParty,
    ImperfectTaskParty,
    IncreasePriceTaskParty,
    LearnedTaskParty,
    RandomBundleDataParty,
    StrategicDataParty,
    StrategicTaskParty,
)
from repro.market.termination import Decision
from repro.market.verification import AuditResult, TrustedEvaluator, under_report

__all__ = [
    "AuditResult",
    "BargainOutcome",
    "BargainingEngine",
    "ConstantCost",
    "CostModel",
    "DataGainEstimator",
    "Decision",
    "EngineState",
    "ExponentialCost",
    "FeatureBundle",
    "ImperfectDataParty",
    "ImperfectTaskParty",
    "IncreasePriceTaskParty",
    "LearnedTaskParty",
    "LinearCost",
    "MARKET_PRESETS",
    "Market",
    "MarketConfig",
    "MarketPreset",
    "MemoisedOracle",
    "NoCost",
    "PerformanceOracle",
    "QuotedPrice",
    "RandomBundleDataParty",
    "ReservedPrice",
    "RoundRecord",
    "ScaledCost",
    "StrategicDataParty",
    "StrategicTaskParty",
    "TaskGainEstimator",
    "TrustedEvaluator",
    "break_even_gain",
    "cost_based_reserved_prices",
    "data_revenue_gap",
    "enumerate_bundles",
    "epsilon_d_from_cost_tolerance",
    "epsilon_t_from_cost_tolerance",
    "equivalent_quote",
    "is_equilibrium_price",
    "make_cost",
    "preset_for",
    "sample_bundles",
    "select_dominant_quote",
    "task_net_profit",
    "under_report",
]
