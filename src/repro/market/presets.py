"""Per-dataset market calibrations.

The paper reports absolute monetary magnitudes per dataset (Figures
2-3, Tables 3-4); these presets encode utility rates, budgets, opening
prices and cost-related reserved-price scales that land the reproduced
magnitudes in the same ranges (see DESIGN.md §6 for the calibration
arithmetic).  All values are overridable through
:meth:`repro.market.market.Market.for_dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.market.config import MarketConfig

__all__ = ["MARKET_PRESETS", "MarketPreset", "preset_for"]


@dataclass(frozen=True)
class MarketPreset:
    """Everything needed to stand up a dataset's market.

    Attributes
    ----------
    config:
        The bargaining constants (``u``, budget, opening quote, ε's).
    reserved_price_params:
        Keyword arguments for
        :func:`repro.market.pricing.cost_based_reserved_prices`.
    n_bundles:
        Catalogue size placed on sale by the data party.
    quick_n_samples / full_n_samples:
        Dataset rows used in quick mode vs paper scale.
    rf_params / mlp_params:
        Base-model overrides applied when building the ΔG oracle.
    """

    config: MarketConfig
    reserved_price_params: dict = field(default_factory=dict)
    n_bundles: int = 24
    quick_n_samples: int | None = None
    full_n_samples: int | None = None
    rf_params: dict = field(default_factory=dict)
    mlp_params: dict = field(default_factory=dict)


MARKET_PRESETS: dict[str, MarketPreset] = {
    # Titanic: large relative gains (ΔG ~ 0.1-0.2), u ~ 1000 implied by
    # the paper's net profit ~ 170 at ΔG ~ 0.17 with payment ~ 3.
    "titanic": MarketPreset(
        config=MarketConfig(
            utility_rate=1000.0,
            budget=4.5,
            initial_rate=7.0,
            initial_base=1.05,
            eps_d=1e-3,
            eps_t=1e-3,
            max_rounds=500,
        ),
        reserved_price_params={
            "rate_floor": 5.5,
            "rate_per_feature": 0.10,
            "base_floor": 0.85,
            "base_per_feature": 0.012,
            "rate_value": 2.2,
            "base_value": 0.35,
            "rate_noise": 0.30,
            "base_noise": 0.02,
        },
        n_bundles=24,
        quick_n_samples=891,
        full_n_samples=891,
        rf_params={"n_estimators": 15, "max_depth": 8},
        mlp_params={"epochs": 60, "batch_size": 128},
    ),
    # Credit: tiny relative gains (ΔG ~ 0.005); u ~ 550 implied by
    # Table 4's net profit ~ 4 at ΔG ~ 0.01 with payment ~ 1.4.
    "credit": MarketPreset(
        config=MarketConfig(
            utility_rate=550.0,
            budget=3.0,
            initial_rate=6.5,
            initial_base=1.0,
            eps_d=1e-4,
            eps_t=1e-4,
            max_rounds=500,
        ),
        reserved_price_params={
            "rate_floor": 5.5,
            "rate_per_feature": 0.08,
            "base_floor": 0.85,
            "base_per_feature": 0.012,
            "rate_value": 3.0,
            "base_value": 0.40,
            "rate_noise": 0.30,
            "base_noise": 0.02,
        },
        n_bundles=24,
        quick_n_samples=2500,
        full_n_samples=30_000,
        rf_params={"n_estimators": 12, "max_depth": 8},
        mlp_params={
            "epochs": 25, "batch_size": 512, "lr": 5e-3,
            "embed_dim": 32, "top_hidden": 16,
        },
    ),
    # Adult: moderate gains (ΔG ~ 0.01-0.04); u ~ 80 implied by Table
    # 4's net profit ~ 0.6 at ΔG ~ 0.03 with payment ~ 1.8.
    "adult": MarketPreset(
        config=MarketConfig(
            utility_rate=80.0,
            budget=3.0,
            initial_rate=6.9,
            initial_base=0.72,
            eps_d=5e-4,
            eps_t=5e-4,
            max_rounds=500,
        ),
        reserved_price_params={
            "rate_floor": 5.2,
            "rate_per_feature": 0.05,
            "base_floor": 0.40,
            "base_per_feature": 0.012,
            "rate_value": 3.5,
            "base_value": 0.85,
            "rate_noise": 0.20,
            "base_noise": 0.015,
        },
        n_bundles=24,
        quick_n_samples=2500,
        full_n_samples=48_842,
        rf_params={"n_estimators": 12, "max_depth": 8},
        mlp_params={
            "epochs": 60, "batch_size": 256, "lr": 5e-3,
            "embed_dim": 32, "top_hidden": 16,
        },
    ),
}


def preset_for(dataset: str) -> MarketPreset:
    """Look up a dataset's preset, with a helpful error."""
    try:
        return MARKET_PRESETS[dataset.lower()]
    except KeyError:
        raise ValueError(
            f"no market preset for {dataset!r}; known: {sorted(MARKET_PRESETS)}"
        ) from None
