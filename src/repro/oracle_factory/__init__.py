"""Fast construction of pre-bargaining performance oracles (§3.4).

The trading platform must run one VFL course per catalogued bundle
before bargaining starts.  Done naively that is a serial loop of
from-scratch courses — re-binning the same columns, re-training the
same isolated baseline, and re-paying protocol overhead per bundle.
This package is the platform's *course factory*; it produces gains that
are **bit-identical** to the serial reference path
(:meth:`repro.market.oracle.PerformanceOracle.build_serial_reference`)
while being several times faster on one core and embarrassingly
parallel across cores:

* :mod:`~repro.oracle_factory.designs` — bin the parties' full feature
  matrices **once**; every bundle's design is a column slice
  (quantile edges are per-column, so slicing is exact);
* :mod:`~repro.oracle_factory.course` — a fused histogram-CART course
  kernel that exploits the test-pinned losslessness of the federated
  forest protocol to replay courses centrally, bit-for-bit;
* :mod:`~repro.oracle_factory.factory` — the scheduler: serial or
  process-parallel course execution (``jobs``), per-bundle timings,
  and a :class:`BuildReport`;
* :mod:`~repro.oracle_factory.cache` — a persistent content-addressed
  gain cache so finished courses are never recomputed across runs.
"""

from repro.oracle_factory.cache import CacheStats, GainCache, default_cache_dir
from repro.oracle_factory.course import FastForestCourse
from repro.oracle_factory.designs import SharedDesigns, slice_design
from repro.oracle_factory.factory import BuildReport, CourseRunner, build_oracle

__all__ = [
    "BuildReport",
    "CacheStats",
    "CourseRunner",
    "FastForestCourse",
    "GainCache",
    "SharedDesigns",
    "build_oracle",
    "default_cache_dir",
    "slice_design",
]
