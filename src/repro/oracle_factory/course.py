"""Bit-identical fast replay of a random-forest VFL course.

The federated forest protocol is **lossless**: with shared seeds it
produces exactly the predictions of the centralised
:class:`~repro.ml.forest.RandomForestClassifier` on the concatenated
party features (pinned by ``tests/vfl/test_fedforest.py``).  The
platform therefore does not need to simulate channel traffic to learn a
course's ΔG — it can replay the course centrally, provided the replay
consumes randomness and breaks ties *exactly* like the seed path.

:class:`FastForestCourse` is that replay, rebuilt around the per-node
cost profile of oracle workloads (many small histogram/score arrays):

* histograms are computed **only over the node's sampled feature
  subset** (``max_features``), not all features — the subset is sorted
  so the flattened argmax keeps the seed path's row-major tie-breaking;
* one label-offset ``bincount`` yields count and positive histograms
  together, and one stacked ``cumsum`` yields all four child statistics
  (the label-0 half *is* ``cnt_l - pos_l``, exact in integers);
* node sizes and positive counts are propagated from the parent's
  split statistics, so terminal nodes cost no array work at all;
* the fitted ensemble is flattened and traversed once over pre-binned
  test codes (prediction semantics, see
  :mod:`~repro.oracle_factory.designs`).

Every floating-point expression keeps the operation order of
:func:`repro.ml.tree.best_split` on exactly-integer inputs, and every
generator method call (`integers`, `choice`) matches the seed path call
for call — which is what makes the results bit-identical rather than
merely statistically equivalent (pinned by
``tests/oracle_factory/test_course_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import BinnedDesign, resolve_max_features
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import require

__all__ = ["FastForestCourse"]

_LEAF = -1
_NEG_INF = -np.inf


class FastForestCourse:
    """Grow and score one forest course on a pre-binned design.

    Parameters mirror :class:`~repro.ml.forest.RandomForestClassifier`;
    ``rng`` must be the same generator the seed path would construct for
    this course (bit-identity is a property of the *pair* (kernel,
    stream)).
    """

    def __init__(
        self,
        design: BinnedDesign,
        y: np.ndarray,
        *,
        n_estimators: int = 15,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        rng: object = None,
    ):
        require(n_estimators >= 1, "n_estimators must be >= 1")
        require(design.n_samples == np.asarray(y).shape[0], "design/y row mismatch")
        self.design = design
        self.y_bool = np.asarray(y) != 0.0
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.rng = as_generator(rng)
        self.trees_: list[tuple[np.ndarray, ...]] = []

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self) -> "FastForestCourse":
        """Grow ``n_estimators`` trees, consuming rng like the seed path."""
        design = self.design
        d, n_bins = design.n_features, design.n_bins
        n = self.y_bool.shape[0]
        max_feat = resolve_max_features(self.max_features, d)
        subset = max_feat < d
        k = max_feat if subset else d
        n_cuts = np.array([e.shape[0] for e in design.edges], dtype=np.int64)
        offs = np.arange(k, dtype=np.int64) * n_bins
        valid_full = (
            np.arange(n_bins - 1, dtype=np.int64)[None, :] < n_cuts[:, None]
            if n_bins > 1
            else np.zeros((d, 0), dtype=bool)
        )
        block = k * n_bins
        two_block = 2 * block
        msl = self.min_samples_leaf
        max_depth = self.max_depth
        nb1 = n_bins - 1
        all_features = np.arange(d, dtype=np.int64)
        # Labels folded into the codes: one bincount per node counts the
        # (feature, bin, label) cells of both histograms at once.
        codes64 = design.codes.astype(np.int64)
        labeled = codes64 + (self.y_bool.astype(np.int64) * block)[:, None]
        base_rows = np.arange(n, dtype=np.int64)
        trees = []
        with np.errstate(divide="ignore", invalid="ignore"):
            for t in range(self.n_estimators):
                tree_rng = spawn(self.rng, "tree", t)
                if self.bootstrap:
                    rows0 = tree_rng.integers(0, n, size=n)
                else:
                    rows0 = base_rows
                pos_root = int(self.y_bool[rows0].sum())
                feature_: list[int] = []
                bin_: list[int] = []
                left_: list[int] = []
                right_: list[int] = []
                value_: list[float] = []

                def new_node(value: float) -> int:
                    feature_.append(_LEAF)
                    bin_.append(0)
                    left_.append(_LEAF)
                    right_.append(_LEAF)
                    value_.append(value)
                    return len(feature_) - 1

                root = new_node(pos_root / n)
                stack = []
                if not (
                    max_depth <= 0
                    or n < 2
                    or pos_root == 0
                    or pos_root == n
                    or n_bins <= 1
                ):
                    stack.append((root, rows0, 0, n, pos_root))
                while stack:
                    node, rows, depth, n_node, pos = stack.pop()
                    if subset:
                        chosen = tree_rng.choice(d, size=max_feat, replace=False)
                        chosen.sort()
                        valid = valid_full[chosen]
                        sub = labeled[rows[:, None], chosen[None, :]]
                    else:
                        chosen = all_features
                        valid = valid_full
                        sub = labeled[rows]
                    sub += offs
                    h = np.bincount(sub.ravel(), minlength=two_block)
                    S = h.reshape(2 * k, n_bins)[:, :-1].cumsum(axis=1)
                    neg_l = S[:k]
                    pos_l = S[k:]
                    cnt_l = neg_l + pos_l
                    cnt_r = n_node - cnt_l
                    pos_r = pos - pos_l
                    neg_r = (n_node - pos) - neg_l
                    ok = (np.minimum(cnt_l, cnt_r) >= msl) & valid
                    # Same expression (and op order) as ml.tree.best_split
                    # on exactly-integer histograms.
                    score = np.where(
                        ok,
                        (pos_l * pos_l + neg_l * neg_l) / cnt_l
                        + (pos_r * pos_r + neg_r * neg_r) / cnt_r,
                        _NEG_INF,
                    )
                    flat_best = int(score.argmax())
                    f_sub, b = divmod(flat_best, nb1)
                    parent = (pos * pos + (n_node - pos) ** 2) / n_node
                    if score[f_sub, b] <= parent + 1e-12:
                        continue
                    f = int(chosen[f_sub])
                    go_left = codes64[rows, f] <= b
                    rows_l = rows[go_left]
                    rows_r = rows[~go_left]
                    n_left = int(cnt_l[f_sub, b])
                    pos_left = int(pos_l[f_sub, b])
                    n_right = n_node - n_left
                    pos_right = pos - pos_left
                    left_id = new_node(pos_left / n_left)
                    right_id = new_node(pos_right / n_right)
                    feature_[node] = f
                    bin_[node] = b
                    left_[node] = left_id
                    right_[node] = right_id
                    child_depth = depth + 1
                    if not (
                        child_depth >= max_depth
                        or n_left < 2
                        or pos_left == 0
                        or pos_left == n_left
                    ):
                        stack.append((left_id, rows_l, child_depth, n_left, pos_left))
                    if not (
                        child_depth >= max_depth
                        or n_right < 2
                        or pos_right == 0
                        or pos_right == n_right
                    ):
                        stack.append(
                            (right_id, rows_r, child_depth, n_right, pos_right)
                        )
                trees.append(
                    (
                        np.asarray(feature_, dtype=np.int64),
                        np.asarray(bin_, dtype=np.int64),
                        np.asarray(left_, dtype=np.int64),
                        np.asarray(right_, dtype=np.int64),
                        np.asarray(value_),
                    )
                )
        self.trees_ = trees
        self._flatten()
        return self

    def _flatten(self) -> None:
        """Concatenate the ensemble for one-pass vectorised traversal."""
        trees = self.trees_
        sizes = [tr[0].shape[0] for tr in trees]
        starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)
        self._flat_feature = np.concatenate([tr[0] for tr in trees])
        self._flat_bin = np.concatenate([tr[1] for tr in trees])
        self._flat_left = np.concatenate(
            [np.where(tr[2] != _LEAF, tr[2] + s, _LEAF) for tr, s in zip(trees, starts)]
        )
        self._flat_right = np.concatenate(
            [np.where(tr[3] != _LEAF, tr[3] + s, _LEAF) for tr, s in zip(trees, starts)]
        )
        self._flat_value = np.concatenate([tr[4] for tr in trees])
        self._roots = starts

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def predict_proba_binned(self, test_codes: np.ndarray) -> np.ndarray:
        """Mean tree probability over rows pre-binned with side="left"."""
        require(bool(self.trees_), "course must be fit before predicting")
        m = test_codes.shape[0]
        n_trees = len(self.trees_)
        node = np.repeat(self._roots, m)
        rows = np.tile(np.arange(m), n_trees)
        active = self._flat_left[node] != _LEAF
        while active.any():
            idx = np.flatnonzero(active)
            cur = node[idx]
            go_left = (
                test_codes[rows[idx], self._flat_feature[cur]] <= self._flat_bin[cur]
            )
            node[idx] = np.where(go_left, self._flat_left[cur], self._flat_right[cur])
            active[idx] = self._flat_left[node[idx]] != _LEAF
        probs = self._flat_value[node].reshape(n_trees, m)
        # Sequential accumulation in tree order — the same float addition
        # order as the seed forest's `acc += tree.predict_proba(X)` loop.
        acc = np.zeros(m)
        for t in range(n_trees):
            acc += probs[t]
        return acc / n_trees

    def score_binned(self, test_codes: np.ndarray, y: np.ndarray) -> float:
        """Accuracy over pre-binned test rows (0.5 threshold)."""
        pred = (self.predict_proba_binned(test_codes) >= 0.5).astype(np.int64)
        return float((pred == np.asarray(y, dtype=np.int64)).mean())
