"""Persistent, content-addressed cache of pre-bargaining course results.

The platform's courses are pure functions of ``(data, base model,
resolved params, seed, repeat, bundle)``.  The cache keys a JSON file
per *configuration* — a SHA-256 fingerprint of the dataset name + data
digest, base model, resolved model params, root seed and library cache
version — and stores raw per-repeat performances inside it:

* ``isolated``: repeat index -> M0 (the task party's solo accuracy);
* ``bundles``: bundle label -> repeat index -> joint accuracy M.

Storing raw ``M`` values (not ΔG) keys repeats individually, so a
re-run with a larger ``n_repeats`` reuses every finished repeat and
only trains the new ones.  Floats survive the JSON round-trip exactly
(shortest-repr), so warm-cache oracles are bit-identical to cold ones.

Any change to a key component changes the fingerprint and lands in a
different file — that *is* the invalidation story.  Corrupted or
incompatible files are treated as empty and rewritten.  Writes are
atomic (temp file + ``os.replace``).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.utils.canonical import content_digest

try:  # POSIX-only; on other platforms stores fall back to unlocked merges
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None


@contextlib.contextmanager
def _entry_lock(path: str):
    """Advisory exclusive lock serialising writers of one cache entry."""
    if fcntl is None:
        yield
        return
    lock_path = path + ".lock"
    with open(lock_path, "w") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)

__all__ = ["CacheStats", "GainCache", "dataset_digest", "default_cache_dir"]

# v2: fingerprints hash the library-wide canonical JSON form
# (repro.utils.canonical — compact separators), replacing the ad-hoc
# json.dumps serialisation of v1.  The bump makes the invalidation of
# v1 entries deliberate rather than a silent byproduct.
_CACHE_VERSION = 2


def _well_typed(repeats: object) -> bool:
    """``{repeat_index: numeric course result}`` — nothing else."""
    return isinstance(repeats, dict) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in repeats.values()
    )


def default_cache_dir() -> str:
    """``$REPRO_ORACLE_CACHE`` or ``~/.cache/repro/oracle``."""
    env = os.environ.get("REPRO_ORACLE_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "oracle")


def dataset_digest(dataset: PartitionedDataset) -> str:
    """SHA-256 over the arrays a course actually consumes.

    Covers the party matrices, labels and the train/test row split —
    regenerating a dataset with different rows, preprocessing or
    partitioning changes the digest and therefore the cache key.
    """
    h = hashlib.sha256()
    for arr in (
        dataset.X_task,
        dataset.X_data,
        dataset.y,
        dataset.train_idx,
        dataset.test_idx,
    ):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one build."""

    hits: int = 0
    misses: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for reports and JSON artifacts."""
        return {"hits": self.hits, "misses": self.misses}


@dataclass
class GainCache:
    """On-disk course-result cache rooted at ``directory``."""

    directory: str = field(default_factory=default_cache_dir)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(
        dataset: PartitionedDataset,
        *,
        base_model: str,
        model_params: dict,
        seed: object,
    ) -> str:
        """Configuration fingerprint (bundle and repeat live inside the file).

        Hashed through the same :func:`repro.utils.canonical.content_digest`
        canonical form as the service layer's spec digests, so every
        content-addressed key in the stack shares one serialisation rule.
        """
        key = {
            "version": _CACHE_VERSION,
            "dataset": dataset.name,
            "digest": dataset_digest(dataset),
            "base_model": base_model,
            "model_params": {k: model_params[k] for k in sorted(model_params)},
            "seed": repr(seed),
        }
        return content_digest(key, length=64)

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, fingerprint[:2], f"{fingerprint}.json")

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> dict:
        """The stored entry for ``fingerprint`` (empty skeleton if absent).

        Unreadable, corrupted, version-mismatched, or wrongly-typed
        files are treated as empty — the next :meth:`store` rewrites
        them wholesale.  Validation goes down to the course values, so
        a half-rotted-but-valid-JSON file cannot crash later builds.
        """
        empty = {"version": _CACHE_VERSION, "isolated": {}, "bundles": {}}
        path = self._path(fingerprint)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return empty
        if (
            not isinstance(entry, dict)
            or entry.get("version") != _CACHE_VERSION
            or not _well_typed(entry.get("isolated"))
            or not isinstance(entry.get("bundles"), dict)
            or not all(_well_typed(v) for v in entry["bundles"].values())
        ):
            return empty
        return entry

    def store(self, fingerprint: str, entry: dict) -> None:
        """Atomically persist ``entry``, merging with what is on disk.

        Concurrent builds under the same fingerprint each write only
        courses they ran; merging the current file's results first
        (ours win on overlap — course results are deterministic, so
        overlapping values are equal anyway) keeps last-writer-wins
        from discarding another process's finished courses.  An
        advisory file lock (where the platform provides one) closes the
        load-merge-replace window between concurrent writers.
        """
        path = self._path(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with _entry_lock(path):
            self._merge_and_replace(fingerprint, entry)

    def _merge_and_replace(self, fingerprint: str, entry: dict) -> None:
        current = self.load(fingerprint)
        merged_isolated = {**current["isolated"], **entry["isolated"]}
        merged_bundles = {
            label: {**current["bundles"].get(label, {}), **repeats}
            for label, repeats in entry["bundles"].items()
        }
        for label, repeats in current["bundles"].items():
            merged_bundles.setdefault(label, repeats)
        entry = {
            "version": _CACHE_VERSION,
            "isolated": merged_isolated,
            "bundles": merged_bundles,
        }
        path = self._path(fingerprint)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
