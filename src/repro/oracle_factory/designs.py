"""Shared incremental binning across a whole oracle catalogue.

``quantile_bin`` computes edges **per column**, so binning the joint
``[X_task | X_data]`` training matrix once and slicing the columns a
bundle needs produces exactly the design that per-course re-binning
would (pinned by ``tests/oracle_factory/test_designs.py``).  The same
idea — FATE's HeteroSecureBoost bins features once and reuses the
quantile sketch across trees and jobs — applied across *courses*.

:class:`SharedDesigns` additionally pre-bins the **test** rows with
``side="left"`` semantics: prediction compares raw values against edge
thresholds (``x <= edges[b]``), which is equivalent to
``searchsorted(edges, x, side="left") <= b`` — *not* the ``side="right"``
codes used while training.
"""

from __future__ import annotations

import numpy as np

from repro.data.partition import PartitionedDataset
from repro.ml.tree import BinnedDesign, quantile_bin
from repro.utils.validation import require

__all__ = ["SharedDesigns", "slice_design"]


def slice_design(design: BinnedDesign, columns: object) -> BinnedDesign:
    """A :class:`BinnedDesign` restricted to ``columns`` of ``design``.

    Exactly equal (codes, edges and padded ``n_bins``) to re-running
    :func:`~repro.ml.tree.quantile_bin` on the corresponding column
    subset of the raw matrix, because edges are per-column and
    ``BinnedDesign`` re-derives ``n_bins`` from the sliced codes.
    """
    cols = np.asarray(list(columns), dtype=np.int64)
    require(cols.size >= 1, "design slice needs at least one column")
    require(
        int(cols.min()) >= 0 and int(cols.max()) < design.n_features,
        f"slice columns must be in [0, {design.n_features})",
    )
    codes = np.ascontiguousarray(design.codes[:, cols])
    edges = [design.edges[c] for c in cols]
    return BinnedDesign(codes, edges)


class SharedDesigns:
    """One binning pass serving every course of an oracle build.

    Parameters
    ----------
    dataset:
        The vertically-partitioned dataset the platform trains on.
    max_bins:
        Histogram resolution (must match the course model params).
    """

    def __init__(self, dataset: PartitionedDataset, *, max_bins: int = 32):
        self.dataset = dataset
        self.max_bins = int(max_bins)
        self.d_task = dataset.d_task
        self.d_data = dataset.d_data
        X_train = np.hstack([dataset.task_train, dataset.data_train])
        self.joint_design = quantile_bin(X_train, max_bins=self.max_bins)
        self.y_train = dataset.y_train.astype(np.float64)
        self.y_test = np.asarray(dataset.y_test, dtype=np.int64)
        require(
            set(np.unique(self.y_train)) <= {0.0, 1.0},
            "labels must be binary 0/1",
        )
        # Test rows pre-binned under *prediction* semantics (side="left";
        # see module docstring) — one searchsorted per column, reused by
        # every course in the catalogue.
        X_test = np.hstack([dataset.task_test, dataset.data_test])
        self.test_codes = np.empty(X_test.shape, dtype=np.int64)
        for j in range(X_test.shape[1]):
            self.test_codes[:, j] = np.searchsorted(
                self.joint_design.edges[j], X_test[:, j], side="left"
            )

    # ------------------------------------------------------------------
    def _columns(self, bundle: object | None) -> np.ndarray:
        """Joint-matrix column indices for a course on ``bundle``.

        ``bundle=None`` selects the isolated course (task features only).
        """
        task_cols = np.arange(self.d_task, dtype=np.int64)
        if bundle is None:
            return task_cols
        idx = np.asarray(list(bundle), dtype=np.int64)
        require(idx.size >= 1, "bundle must contain at least one feature")
        require(
            int(idx.min()) >= 0 and int(idx.max()) < self.d_data,
            f"bundle indices must be in [0, {self.d_data})",
        )
        return np.concatenate([task_cols, self.d_task + idx])

    def course_design(self, bundle: object | None) -> BinnedDesign:
        """Training design of the course on ``bundle`` (slice, no re-bin)."""
        return slice_design(self.joint_design, self._columns(bundle))

    def course_test_codes(self, bundle: object | None) -> np.ndarray:
        """Pre-binned test rows (prediction semantics) for the course."""
        return np.ascontiguousarray(self.test_codes[:, self._columns(bundle)])

    def data_design(self, bundle: object) -> BinnedDesign:
        """The data party's bundle design (for the federated protocol path)."""
        idx = np.asarray(list(bundle), dtype=np.int64)
        require(idx.size >= 1, "bundle must contain at least one feature")
        return slice_design(self.joint_design, self.d_task + idx)

    def task_design(self) -> BinnedDesign:
        """The task party's own design (shared across every course)."""
        return slice_design(self.joint_design, np.arange(self.d_task))
