"""The oracle build scheduler: shared binning, workers, cache, report.

:func:`build_oracle` is the fast engine behind
:meth:`repro.market.oracle.PerformanceOracle.build`.  It plans the
``(bundle, repeat)`` course grid, answers what it can from the
persistent :class:`~repro.oracle_factory.cache.GainCache`, executes the
rest — serially in-process, or fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor` at **per-bundle
granularity** (each task carries its bundle's missing repeats, so one
worker amortises the course design over them; the few isolated
baselines run in the parent) — and assembles the oracle plus a
:class:`BuildReport` with per-bundle timings and cache accounting.

Course seeds are derived per ``(seed, repeat)`` exactly as the serial
reference path derives them, and each course's RNG stream is keyed by
its bundle, so results are independent of execution order and worker
count: ``jobs=8`` produces the same oracle as ``jobs=1``, which
produces the same oracle as the seed serial loop.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.data.partition import PartitionedDataset
from repro.market.bundle import FeatureBundle
from repro.market.oracle import PerformanceOracle, repeat_course_seeds
from repro.oracle_factory.cache import CacheStats, GainCache
from repro.oracle_factory.course import FastForestCourse
from repro.oracle_factory.designs import SharedDesigns
from repro.utils.rng import spawn
from repro.utils.validation import require
from repro.vfl.runner import resolve_model_params, run_vfl

__all__ = ["BuildReport", "CourseRunner", "build_oracle", "resolve_jobs"]

#: Build telemetry: course-level cache effectiveness and end-to-end
#: build latency.  Mirrors the per-build :class:`CacheStats`/
#: :class:`BuildReport` accounting as process-lifetime aggregates a
#: scrape can watch.
_CACHE_COURSES = obs.REGISTRY.counter(
    "repro_oracle_cache_courses_total",
    "Course lookups against the persistent gain cache, by result.",
    ("result",),
)
_BUILD_SECONDS = obs.REGISTRY.histogram(
    "repro_oracle_build_seconds",
    "End-to-end build_oracle latency (monotonic, seconds).",
)


def resolve_jobs(jobs: int | None) -> int:
    """``None``/``0`` -> all cores; otherwise at least 1 worker.

    Deliberately not clamped to the core count: oversubscription is
    harmless (results are identical for every ``jobs``), and the pool
    path stays exercisable on single-core machines.
    """
    if not jobs:
        return os.cpu_count() or 1
    return max(1, int(jobs))


@dataclass
class BuildReport:
    """What one oracle build did and how long each part took."""

    base_model: str
    n_bundles: int
    n_repeats: int
    jobs: int
    elapsed: float = 0.0
    courses_run: int = 0
    courses_cached: int = 0
    cache_stats: CacheStats | None = None
    bundle_seconds: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form (CI uploads this as a perf artifact)."""
        payload = {
            "base_model": self.base_model,
            "n_bundles": self.n_bundles,
            "n_repeats": self.n_repeats,
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed,
            "courses_run": self.courses_run,
            "courses_cached": self.courses_cached,
            "bundle_seconds": dict(self.bundle_seconds),
        }
        if self.cache_stats is not None:
            payload["cache"] = self.cache_stats.as_dict()
        return payload

    def summary(self) -> str:
        """One-line human-readable digest."""
        parts = [
            f"oracle build: {self.n_bundles} bundles x {self.n_repeats} repeats",
            f"{self.courses_run} courses run",
            f"{self.courses_cached} cached",
            f"jobs={self.jobs}",
            f"{self.elapsed:.2f}s",
        ]
        if self.cache_stats is not None:
            parts.append(
                f"cache {self.cache_stats.hits} hits / "
                f"{self.cache_stats.misses} misses"
            )
        return " | ".join(parts)


class CourseRunner:
    """Executes individual courses for one build configuration.

    Shared by the in-process serial path and by each pool worker (one
    instance per process, built once, amortising the shared binning over
    every course the process runs).
    """

    def __init__(
        self,
        dataset: PartitionedDataset,
        base_model: str,
        params: dict,
        repeat_seeds: list[object],
    ):
        self.dataset = dataset
        self.base_model = base_model
        self.params = dict(params)
        self.repeat_seeds = list(repeat_seeds)
        self.shared: SharedDesigns | None = None
        if base_model == "random_forest":
            self.shared = SharedDesigns(dataset, max_bins=params["max_bins"])

    # ------------------------------------------------------------------
    def _fast_course(self, bundle: tuple[int, ...] | None, seed: object) -> float:
        """Run one forest course on the shared designs; returns accuracy."""
        assert self.shared is not None
        role = "isolated" if bundle is None else "joint"
        keys = (seed, self.dataset.name, self.base_model, role)
        if bundle is not None:
            keys = (*keys, bundle)
        course = FastForestCourse(
            self.shared.course_design(bundle),
            self.shared.y_train,
            n_estimators=self.params["n_estimators"],
            max_depth=self.params["max_depth"],
            min_samples_leaf=self.params["min_samples_leaf"],
            max_features=self.params["max_features"],
            rng=spawn(*keys),
        )
        course.fit()
        return course.score_binned(
            self.shared.course_test_codes(bundle), self.shared.y_test
        )

    def isolated(self, repeat: int) -> float:
        """M0 of one repeat (the task party training alone)."""
        seed = self.repeat_seeds[repeat]
        if self.shared is not None:
            return self._fast_course(None, seed)
        from repro.vfl.runner import isolated_performance

        return isolated_performance(
            self.dataset,
            base_model=self.base_model,
            model_params=self.params,
            seed=seed,
        )

    def joint(self, bundle: tuple[int, ...], repeat: int) -> float:
        """Joint accuracy M of one ``(bundle, repeat)`` course."""
        seed = self.repeat_seeds[repeat]
        if self.shared is not None:
            return self._fast_course(tuple(bundle), seed)
        result = run_vfl(
            self.dataset,
            bundle,
            base_model=self.base_model,
            model_params=self.params,
            seed=seed,
            m0=1.0,  # ΔG is recomputed by the factory; only M is used
        )
        return result.performance_joint


# ----------------------------------------------------------------------
# Process-pool plumbing: one CourseRunner per worker process.
# ----------------------------------------------------------------------
_WORKER_RUNNER: CourseRunner | None = None


def _worker_init(
    dataset: PartitionedDataset,
    base_model: str,
    params: dict,
    repeat_seeds: list[object],
) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = CourseRunner(dataset, base_model, params, repeat_seeds)


def _worker_courses(job: tuple[tuple[int, ...], list[int]]):
    bundle, repeats = job
    assert _WORKER_RUNNER is not None
    start = time.perf_counter()
    values = {r: _WORKER_RUNNER.joint(bundle, r) for r in repeats}
    return bundle, values, time.perf_counter() - start


def build_oracle(
    dataset: PartitionedDataset,
    bundles: list[FeatureBundle],
    *,
    base_model: str = "random_forest",
    model_params: dict | None = None,
    seed: object = 0,
    n_repeats: int = 1,
    jobs: int = 1,
    cache: GainCache | str | None = None,
) -> tuple[PerformanceOracle, BuildReport]:
    """Build a :class:`PerformanceOracle`, fast.

    Parameters beyond the reference path:

    jobs:
        Worker processes for course execution (``None``/``0`` = all
        cores).  Results are identical for every value.
    cache:
        A :class:`GainCache`, a cache directory path, or ``None`` to
        disable persistence.  Cached courses are never re-run.
    """
    require(bool(bundles), "oracle needs at least one bundle")
    require(n_repeats >= 1, "n_repeats must be >= 1")
    start = time.perf_counter()
    # Resolving params validates base_model against the registry, so
    # registered custom models build oracles exactly like the built-ins
    # (they take the run_vfl course path; the fused fast path is RF's).
    params = resolve_model_params(base_model, model_params)
    seeds = repeat_course_seeds(seed, n_repeats)
    jobs = resolve_jobs(jobs)
    if isinstance(cache, str):
        cache = GainCache(cache)
    stats = CacheStats() if cache is not None else None
    entry = None
    fingerprint = None
    if cache is not None:
        fingerprint = cache.fingerprint(
            dataset, base_model=base_model, model_params=params, seed=seed
        )
        entry = cache.load(fingerprint)

    runner: CourseRunner | None = None

    def get_runner() -> CourseRunner:
        nonlocal runner
        if runner is None:
            runner = CourseRunner(dataset, base_model, params, seeds)
        return runner

    report = BuildReport(
        base_model=base_model,
        n_bundles=len(bundles),
        n_repeats=n_repeats,
        jobs=jobs,
    )

    # The cache entry is updated per finished course and persisted in
    # the ``finally`` block below, so an interrupt or worker crash
    # mid-build loses only in-flight courses — never finished ones.
    def record(key: tuple[int, ...], values: dict[int, float], secs: float) -> None:
        joint[key].update(values)
        label = ",".join(str(i) for i in key)
        report.bundle_seconds[label] = secs
        report.courses_run += len(values)
        if entry is not None:
            stored = entry["bundles"].setdefault(label, {})
            for r, value in values.items():
                stored[str(r)] = value

    m0s: list[float] = []
    joint: dict[tuple[int, ...], dict[int, float]] = {}
    try:
        # --- isolated baselines (one per repeat, shared by all bundles) --
        for r in range(n_repeats):
            cached = entry["isolated"].get(str(r)) if entry is not None else None
            if cached is not None:
                stats.hits += 1
                report.courses_cached += 1
                m0s.append(float(cached))
                continue
            if stats is not None:
                stats.misses += 1
            value = get_runner().isolated(r)
            report.courses_run += 1
            m0s.append(value)
            if entry is not None:
                entry["isolated"][str(r)] = value

        # --- plan the (bundle, repeat) course grid -----------------------
        todo: list[tuple[tuple[int, ...], list[int]]] = []
        for bundle in bundles:
            key = bundle.indices
            label = ",".join(str(i) for i in key)
            cached_repeats = (
                entry["bundles"].get(label, {}) if entry is not None else {}
            )
            values: dict[int, float] = {}
            missing: list[int] = []
            for r in range(n_repeats):
                cached = cached_repeats.get(str(r))
                if cached is not None:
                    stats.hits += 1
                    report.courses_cached += 1
                    values[r] = float(cached)
                else:
                    if stats is not None:
                        stats.misses += 1
                    missing.append(r)
            joint[key] = values
            report.bundle_seconds[label] = 0.0
            if missing:
                todo.append((key, missing))

        # --- execute the remaining courses -------------------------------
        if todo:
            if jobs > 1 and len(todo) > 1:
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(todo)),
                    initializer=_worker_init,
                    initargs=(dataset, base_model, params, seeds),
                ) as pool:
                    for key, values, secs in pool.map(_worker_courses, todo):
                        record(key, values, secs)
            else:
                for key, missing in todo:
                    course_runner = get_runner()
                    t0 = time.perf_counter()
                    values = {r: course_runner.joint(key, r) for r in missing}
                    record(key, values, time.perf_counter() - t0)
    finally:
        if cache is not None and fingerprint is not None and report.courses_run:
            cache.store(fingerprint, entry)

    # --- assemble gains exactly like the serial reference path ----------
    gains: dict[FeatureBundle, float] = {}
    for bundle in bundles:
        values = [
            (joint[bundle.indices][r] - m0s[r]) / max(m0s[r], 1e-12)
            for r in range(n_repeats)
        ]
        gains[bundle] = float(np.mean(values))
    oracle = PerformanceOracle(
        bundles, gains, isolated=float(np.mean(m0s)), base_model=base_model
    )
    report.cache_stats = stats
    report.elapsed = time.perf_counter() - start
    oracle.build_report = report
    if stats is not None:
        if stats.hits:
            _CACHE_COURSES.inc(stats.hits, result="hit")
        if stats.misses:
            _CACHE_COURSES.inc(stats.misses, result="miss")
    _BUILD_SECONDS.observe(report.elapsed)
    return oracle, report
