"""``python -m repro serve`` — the ``/v1`` wire protocol over HTTP.

A deliberately dependency-free server (stdlib ``http.server`` with
``ThreadingHTTPServer``) that is pure transport glue: every request is
parsed (path, query, JSON body with 411/413 enforcement) and handed to
:func:`repro.service.api.dispatch`, the same route table the in-process
:class:`~repro.client.local.LocalTransport` drives — so HTTP and
embedded clients see byte-identical payloads by construction.

The full wire reference (routes, request/response shapes, error codes)
is generated from that route table into ``docs/API.md``; the highlights:

=======  ====================================  =========================
Method   Path                                  Meaning
=======  ====================================  =========================
GET      ``/v1/health``, ``/v1/healthz``       liveness / status probes
GET      ``/v1/report``                        operator report
POST     ``/v1/markets``                       build/warm a market
POST     ``/v1/sessions``                      open a session
POST     ``/v1/sessions/<id>/step``            advance a session
GET/PUT  ``/v1/sessions/<id>/state``           checkpoint / restore
DELETE   ``/v1/sessions/<id>``                 close a session
POST     ``/v1/simulations``                   submit a durable job
GET      ``/v1/jobs?limit=&after=``            paginated job listings
GET      ``/v1/jobs/<id>``                     one job's progress
POST     ``/v1/jobs/<id>/resume``              restart pending chunks
GET      ``/v1/jobs/<id>/events``              JSON-lines progress stream
POST     ``/v1/chunks``                        multi-host worker protocol
=======  ====================================  =========================

Legacy unversioned paths (``/sessions``, ``/jobs``, ...) answer with a
deprecation envelope: 301 + ``Location`` for GET (stdlib clients follow
it transparently), 410 for anything else.

Example walkthrough (against ``python -m repro serve --port 8765``)::

    curl -s localhost:8765/v1/healthz
    curl -s -X POST localhost:8765/v1/markets -d '{"dataset": "synthetic"}'
    curl -s -X POST localhost:8765/v1/sessions \
         -d '{"market": {"dataset": "synthetic"}, "seed": 0}'
    curl -s -X POST localhost:8765/v1/sessions/s000000/step \
         -d '{"until_done": true}'
    curl -s -X POST localhost:8765/v1/simulations \
         -d '{"sessions": 500, "seed": 0, "shards": 2}'
    curl -sN localhost:8765/v1/jobs/<id>/events

``run_server`` installs a SIGTERM handler for graceful shutdown: the
listener stops, running jobs drain to the durable store (they resume
with ``repro jobs resume``), and the process exits 0 — so supervisors
and CI can ``kill -TERM`` instead of sleeping and hoping.
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro import obs
from repro.service.api import (
    ApiError,
    JobService,
    ServiceContext,
    dispatch,
    error_envelope,
    legacy_location,
)
from repro.service.manager import SessionManager

__all__ = [
    "JobService",
    "create_server",
    "run_server",
    "start_eviction_sweeper",
    "start_fleet_agent",
]

#: Request bodies above this are refused with 413 before any read — an
#: oversized (or lying) Content-Length must not park a handler thread
#: on a multi-gigabyte ``rfile.read``.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _MarketplaceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that treats client hang-ups as routine."""

    daemon_threads = True
    # socketserver's default listen backlog is 5; a connection burst
    # from a few hundred clients would overflow it into RSTs.
    request_queue_size = 512

    def handle_error(self, request, client_address) -> None:
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionResetError, BrokenPipeError)):
            return  # a client dropping its keep-alive is not an error
        super().handle_error(request, client_address)


class _ServiceHandler(BaseHTTPRequestHandler):
    """Transport glue: parse the request, hand it to ``api.dispatch``."""

    server_version = "repro-serve/2.0"
    protocol_version = "HTTP/1.1"
    # Nagle + delayed ACK costs ~40ms per small keep-alive exchange;
    # an RPC-shaped protocol must write segments immediately.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    @property
    def ctx(self) -> ServiceContext:
        return self.server.ctx  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        # Silenced: every request (including legacy and body-level
        # errors) emits one structured access line from _handle via
        # repro.obs.log_access; the stdlib line would duplicate it.
        return

    # ------------------------------------------------------------------
    # Body parsing: 411/413 are transport-level protocol errors
    # ------------------------------------------------------------------
    def _body(self) -> dict:
        if "chunked" in (self.headers.get("Transfer-Encoding") or "").lower():
            raise ApiError(
                411, "length_required",
                "chunked request bodies are not accepted; send "
                "Content-Length",
            )
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            return {}
        try:
            length = int(raw_length)
        except ValueError:
            raise ApiError(
                411, "length_required",
                f"Content-Length {raw_length!r} is not an integer",
            ) from None
        if length < 0:
            raise ApiError(
                411, "length_required",
                f"Content-Length must be >= 0, got {length}",
            )
        if length == 0:
            return {}
        if length > MAX_BODY_BYTES:
            raise ApiError(
                413, "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap",
                {"max_bytes": MAX_BODY_BYTES},
            )
        raw = self.rfile.read(length)
        if len(raw) < length:
            raise ApiError(
                400, "invalid_request",
                f"request body ended after {len(raw)} of the declared "
                f"{length} bytes",
            )
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(
                400, "invalid_request",
                f"request body is not valid JSON: {exc}",
            ) from None
        if not isinstance(payload, dict):
            raise ApiError(
                400, "invalid_request", "request body must be a JSON object"
            )
        return payload

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def _reply(self, payload: object, status: int = 200,
               headers: dict | None = None) -> None:
        extra = dict(headers or {})
        if isinstance(payload, str):
            # Raw-text reply (the /v1/metrics Prometheus exposition):
            # the handler owns the bytes and the content type.
            blob = payload.encode("utf-8")
            content_type = extra.pop("Content-Type",
                                     "text/plain; charset=utf-8")
        else:
            blob = json.dumps(payload).encode("utf-8")
            content_type = extra.pop("Content-Type", "application/json")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        if self.close_connection:
            # Announce it: a silent close would strand keep-alive
            # clients on a dead connection.
            self.send_header("Connection", "close")
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(blob)

    def _reply_stream(self, lines, status: int = 200) -> None:
        """Chunked-encoded JSON lines, flushed as they are produced."""
        self.send_response(status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for item in lines:
                blob = json.dumps(item).encode("utf-8") + b"\n"
                self.wfile.write(b"%X\r\n%s\r\n" % (len(blob), blob))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-stream; nothing left to tell it.
            self.close_connection = True
            return
        self.wfile.write(b"0\r\n\r\n")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _handle(self, method: str) -> None:
        t0 = time.perf_counter()
        parsed = urlsplit(self.path)
        path, query = parsed.path, dict(parse_qsl(parsed.query))
        remote = obs.from_traceparent(self.headers.get("traceparent"))
        status = self._process(method, path, query, remote)
        obs.log_access(
            method, path, status, time.perf_counter() - t0,
            remote.trace_id if remote is not None else None,
            verbose=getattr(self.server, "verbose", False),
        )

    def _process(self, method: str, path: str, query: dict,
                 remote: "obs.SpanContext | None") -> int:
        home = legacy_location(path)
        if home is not None:
            # Deprecation envelope: GETs are redirected (stdlib clients
            # follow 301 transparently), mutating methods are refused —
            # silently replaying a POST at a new location is how
            # clients double-submit.
            self.close_connection = True
            if method == "GET":
                self._reply(
                    error_envelope(
                        "moved",
                        f"unversioned routes moved under /v1; "
                        f"GET {home} instead",
                        {"location": home},
                    ),
                    301,
                    headers={"Location": home},
                )
                return 301
            self._reply(
                error_envelope(
                    "gone",
                    f"unversioned routes were removed; "
                    f"{method} {home} instead",
                    {"location": home},
                ),
                410,
            )
            return 410

        try:
            body = self._body()
        except ApiError as exc:
            # The request body was not (fully) consumed; this
            # connection cannot carry another request.
            self.close_connection = True
            self._reply(exc.envelope(), exc.status)
            return exc.status

        # Attach the client's span context (if it sent one) so the
        # dispatch span parents across the process boundary.
        token = obs.attach(remote) if remote is not None else None
        try:
            reply = dispatch(self.ctx, method, path, body=body, query=query)
        finally:
            if token is not None:
                obs.detach(token)
        if reply.streaming:
            self._reply_stream(reply.payload, reply.status)
        else:
            self._reply(reply.payload, reply.status, headers=reply.headers)
        return reply.status

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._handle("DELETE")


def create_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    manager: SessionManager | None = None,
    jobs: JobService | None = None,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  The caller owns the serve loop:
    ``server.serve_forever()`` / ``server.shutdown()``.  ``jobs``
    defaults to a :class:`JobService` over the default durable store
    (created lazily on the first submission).
    """
    server = _MarketplaceServer((host, port), _ServiceHandler)
    ctx = ServiceContext(
        manager=manager if manager is not None else SessionManager(),
        jobs=jobs if jobs is not None else JobService(),
    )
    server.ctx = ctx  # type: ignore[attr-defined]
    # Convenience aliases (tests and embedders reach for these).
    server.manager = ctx.manager  # type: ignore[attr-defined]
    server.jobs = ctx.jobs  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def start_eviction_sweeper(
    manager: SessionManager,
    interval: float | None,
    *,
    stop_event: threading.Event | None = None,
) -> threading.Event:
    """Periodic ``manager.evict_idle()`` on a daemon timer thread.

    Without this, eviction only piggybacks on ``open_session`` — a quiet
    server leaks stale sessions (and their engine state) indefinitely.
    ``interval=None`` derives one from the manager's ``idle_ttl``;
    ``interval=0`` (or no ``idle_ttl``) disables the sweep.  Returns the
    stop event; set it to end the sweeper.
    """
    stop = stop_event if stop_event is not None else threading.Event()
    if interval is None:
        ttl = manager.idle_ttl
        interval = min(60.0, ttl / 2.0) if ttl else 0.0
    if not interval:
        stop.set()
        return stop

    def sweep() -> None:
        while not stop.wait(interval):
            manager.evict_idle()

    threading.Thread(target=sweep, name="evict-sweeper", daemon=True).start()
    return stop


def start_fleet_agent(
    join: str,
    ctx: ServiceContext,
    bound_host: str,
    bound_port: int,
    *,
    capacity: int = 1,
    worker_url: str | None = None,
    labels: dict | None = None,
):
    """Join this process to a coordinator's fleet (``serve --join URL``).

    The advertised URL defaults to the bound address — override it with
    ``worker_url`` when the coordinator reaches this host through NAT
    or a proxy.  ``REPRO_FLEET_THROTTLE`` (seconds per chunk) models a
    slower worker; it exists for heterogeneous-fleet benchmarks/drills.
    Returns the started :class:`~repro.fleet.agent.FleetAgent`.
    """
    import os

    from repro.fleet import FleetAgent
    from repro.service.api import service_load

    url = (worker_url or f"http://{bound_host}:{bound_port}").rstrip("/")
    throttle = float(os.environ.get("REPRO_FLEET_THROTTLE") or 0.0)
    agent = FleetAgent(
        join,
        url,
        capacity=max(1, int(capacity)),
        labels=labels,
        load_probe=lambda: service_load(ctx),
        throttle=throttle,
    )
    agent.start()
    print(f"fleet worker {agent.worker_id} ({url}) joining {agent.coordinator}")
    return agent


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    idle_ttl: float | None = 900.0,
    max_sessions: int = 4096,
    coalesce_window: float | None = None,
    job_store: str | None = None,
    shards: int = 2,
    drain_timeout: float = 30.0,
    eviction_interval: float | None = None,
    use_async: bool = False,
    http_workers: int = 8,
    verbose: bool = False,
    join: str | None = None,
    capacity: int = 1,
    worker_url: str | None = None,
    lease_ttl: float = 60.0,
    heartbeat_ttl: float = 15.0,
) -> int:
    """Blocking entry point behind ``python -m repro serve``.

    Exits gracefully on SIGTERM (and Ctrl-C): the listener stops, any
    running jobs drain to the durable store — in-flight chunks flush,
    so ``repro jobs resume`` picks up exactly where the server stopped
    — and the process returns 0.

    ``use_async=True`` serves the identical route table from the
    asyncio transport (:mod:`repro.service.async_server`) instead of a
    thread per connection.
    """
    import signal

    from repro.jobs import JobStore, default_store_path

    if use_async:
        from repro.service.async_server import run_async_server

        return run_async_server(
            host, port,
            idle_ttl=idle_ttl,
            max_sessions=max_sessions,
            coalesce_window=coalesce_window,
            job_store=job_store,
            shards=shards,
            drain_timeout=drain_timeout,
            workers=http_workers,
            eviction_interval=eviction_interval,
            verbose=verbose,
            join=join,
            capacity=capacity,
            worker_url=worker_url,
            lease_ttl=lease_ttl,
            heartbeat_ttl=heartbeat_ttl,
        )

    manager = SessionManager(
        max_sessions=max_sessions,
        idle_ttl=idle_ttl or None,
        coalesce_window=coalesce_window,
    )
    jobs = JobService(JobStore(job_store or default_store_path()),
                      shards=shards, lease_ttl=lease_ttl,
                      heartbeat_ttl=heartbeat_ttl)
    server = create_server(host, port, manager=manager, jobs=jobs,
                           verbose=verbose)
    sweeper_stop = start_eviction_sweeper(manager, eviction_interval)
    bound_host, bound_port = server.server_address[:2]
    agent = None
    if join:
        agent = start_fleet_agent(
            join, server.ctx, bound_host, bound_port,  # type: ignore[attr-defined]
            capacity=capacity, worker_url=worker_url,
        )

    def _terminate(signum: int, frame: object) -> None:  # pragma: no cover
        # serve_forever() blocks this (main) thread; shutdown() must be
        # called from another one.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    print(f"repro marketplace service on http://{bound_host}:{bound_port} "
          f"(SIGTERM or Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        sweeper_stop.set()
        if agent is not None:
            agent.stop()
        jobs.drain(timeout=drain_timeout)
        server.server_close()
        print("repro marketplace service drained and stopped")
    return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI flags for the ``serve`` command (kept next to the server)."""
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="bind port (default 8765; 0 = ephemeral)")
    parser.add_argument("--idle-ttl", type=float, default=900.0, metavar="SECS",
                        help="evict sessions idle longer than this "
                             "(default 900; 0 disables)")
    parser.add_argument("--max-sessions", type=int, default=4096,
                        help="resident-session cap (default 4096)")
    parser.add_argument("--job-store", default=None, metavar="PATH",
                        help="durable job store (default: $REPRO_JOB_STORE "
                             "or ~/.cache/repro/jobs.sqlite3)")
    parser.add_argument("--shards", type=int, default=2, metavar="N",
                        help="worker shards for submitted jobs (default 2; "
                             "0 = all cores)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        metavar="SECS",
                        help="grace for in-flight job chunks on shutdown")
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="serve from an asyncio event loop instead of "
                             "a thread per connection")
    parser.add_argument("--coalesce-window", type=float, default=None,
                        metavar="SECS",
                        help="micro-batch concurrent /step calls per market "
                             "for this long before sweeping them together "
                             "(default: off; try 0.002)")
    parser.add_argument("--eviction-interval", type=float, default=None,
                        metavar="SECS",
                        help="periodic idle-session sweep interval "
                             "(default: min(60, idle_ttl/2); 0 disables)")
    parser.add_argument("--http-workers", type=int, default=8, metavar="N",
                        help="handler threads for the asyncio server "
                             "(default 8; ignored without --async)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
    parser.add_argument("--join", default=None, metavar="URL",
                        help="join a coordinator's worker fleet: register "
                             "at URL, heartbeat, and pull job chunks from "
                             "its lease queue")
    parser.add_argument("--capacity", type=int, default=1, metavar="N",
                        help="chunks this worker pulls concurrently when "
                             "joined (default 1)")
    parser.add_argument("--worker-url", default=None, metavar="URL",
                        help="advertised URL for --join (default: the "
                             "bound address); the worker's fleet identity")
    parser.add_argument("--lease-ttl", type=float, default=60.0,
                        metavar="SECS",
                        help="coordinator: seconds a worker owns a leased "
                             "chunk before it becomes stealable "
                             "(default 60)")
    parser.add_argument("--heartbeat-ttl", type=float, default=15.0,
                        metavar="SECS",
                        help="coordinator: seconds without a heartbeat "
                             "before a worker is lost and its leases "
                             "re-queue (default 15)")
