"""``python -m repro serve`` — the marketplace as a JSON HTTP API.

A deliberately dependency-free server (stdlib ``http.server`` with
``ThreadingHTTPServer``) over one :class:`~repro.service.manager.SessionManager`:
every request thread steps its own sessions while sharing the warm
market pool, which is exactly the concurrency seam the manager's
per-session locks exist for.

Routes (all bodies and replies are JSON):

=======  ==========================  ==========================================
Method   Path                        Meaning
=======  ==========================  ==========================================
GET      ``/health``                 liveness probe
GET      ``/report``                 manager report (markets, sessions, outcomes)
POST     ``/markets``                build/warm a market from a ``MarketSpec``
POST     ``/sessions``               open a session from a ``SessionSpec``
GET      ``/sessions/<id>``          session status
POST     ``/sessions/<id>/step``     advance (body: ``{"rounds": n}`` or
                                     ``{"until_done": true}``; default 1 round)
DELETE   ``/sessions/<id>``          close a session
=======  ==========================  ==========================================

Example walkthrough (against ``python -m repro serve --port 8765``)::

    curl -s localhost:8765/health
    curl -s -X POST localhost:8765/markets -d '{"dataset": "synthetic"}'
    curl -s -X POST localhost:8765/sessions \
         -d '{"market": {"dataset": "synthetic"}, "seed": 0}'
    curl -s -X POST localhost:8765/sessions/s000000/step \
         -d '{"until_done": true}'
"""

from __future__ import annotations

import argparse
import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.manager import SessionManager
from repro.service.specs import MarketSpec, SessionSpec

__all__ = ["create_server", "run_server"]

_SESSION_ROUTE = re.compile(r"^/sessions/([^/]+)(/step)?$")


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`SessionManager`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    @property
    def manager(self) -> SessionManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _reply(self, payload: dict, status: int = 200) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _dispatch(self, handler) -> None:
        try:
            payload, status = handler()
        except (ValueError, TypeError) as exc:  # spec/body validation
            # TypeError covers wrong-typed spec fields (e.g. a string
            # n_bundles failing a numeric comparison) — still a 400,
            # not a dropped connection.
            payload, status = {"error": str(exc)}, 400
        except KeyError as exc:  # unknown session
            payload, status = {"error": str(exc).strip("'\"")}, 404
        except RuntimeError as exc:  # session limit
            payload, status = {"error": str(exc)}, 429
        self._reply(payload, status)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        match = _SESSION_ROUTE.match(self.path)
        if self.path == "/health":
            self._dispatch(lambda: ({"ok": True}, 200))
        elif self.path == "/report":
            self._dispatch(lambda: (self.manager.report(), 200))
        elif match and not match.group(2):
            sid = match.group(1)
            self._dispatch(lambda: (self.manager.status(sid), 200))
        else:
            self._reply({"error": f"no route GET {self.path}"}, 404)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        match = _SESSION_ROUTE.match(self.path)
        if self.path == "/markets":
            self._dispatch(self._post_market)
        elif self.path == "/sessions":
            self._dispatch(self._post_session)
        elif match and match.group(2):
            self._dispatch(lambda: self._post_step(match.group(1)))
        else:
            self._reply({"error": f"no route POST {self.path}"}, 404)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        match = _SESSION_ROUTE.match(self.path)
        if match and not match.group(2):
            sid = match.group(1)
            self._dispatch(lambda: ({"closed": self.manager.close(sid)}, 200))
        else:
            self._reply({"error": f"no route DELETE {self.path}"}, 404)

    # ------------------------------------------------------------------
    def _post_market(self) -> tuple[dict, int]:
        spec = MarketSpec.from_dict(self._body())
        cached = self.manager.pool.contains(spec)
        market = self.manager.market(spec)
        return (
            {
                "market": spec.digest(),
                "name": market.name,
                "n_bundles": len(market.oracle),
                "target_gain": (
                    float(market.config.target_gain)
                    if market.config.target_gain is not None
                    else None
                ),
                "cached": cached,
            },
            200,
        )

    def _post_session(self) -> tuple[dict, int]:
        spec = SessionSpec.from_dict(self._body())
        session_id = self.manager.open_session(spec)
        return self.manager.status(session_id), 201

    def _post_step(self, session_id: str) -> tuple[dict, int]:
        body = self._body()
        if body.get("until_done"):
            return self.manager.run(session_id), 200
        rounds = body.get("rounds", 1)
        if not isinstance(rounds, int) or rounds < 1:
            raise ValueError("rounds must be an int >= 1")
        return self.manager.step(session_id, rounds=rounds), 200


def create_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    manager: SessionManager | None = None,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  The caller owns the serve loop:
    ``server.serve_forever()`` / ``server.shutdown()``.
    """
    server = ThreadingHTTPServer((host, port), _ServiceHandler)
    server.daemon_threads = True
    server.manager = manager if manager is not None else SessionManager()  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    idle_ttl: float | None = 900.0,
    max_sessions: int = 4096,
    verbose: bool = False,
) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    manager = SessionManager(max_sessions=max_sessions, idle_ttl=idle_ttl or None)
    server = create_server(host, port, manager=manager, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro marketplace service on http://{bound_host}:{bound_port} "
          f"(Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
    return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI flags for the ``serve`` command (kept next to the server)."""
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="bind port (default 8765; 0 = ephemeral)")
    parser.add_argument("--idle-ttl", type=float, default=900.0, metavar="SECS",
                        help="evict sessions idle longer than this "
                             "(default 900; 0 disables)")
    parser.add_argument("--max-sessions", type=int, default=4096,
                        help="resident-session cap (default 4096)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
