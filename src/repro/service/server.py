"""``python -m repro serve`` — the marketplace as a JSON HTTP API.

A deliberately dependency-free server (stdlib ``http.server`` with
``ThreadingHTTPServer``) over one :class:`~repro.service.manager.SessionManager`:
every request thread steps its own sessions while sharing the warm
market pool, which is exactly the concurrency seam the manager's
per-session locks exist for.

Routes (all bodies and replies are JSON):

=======  ==========================  ==========================================
Method   Path                        Meaning
=======  ==========================  ==========================================
GET      ``/health``                 liveness probe
GET      ``/healthz``                liveness + session/job/drain status
GET      ``/report``                 manager report (markets, sessions, outcomes)
POST     ``/markets``                build/warm a market from a ``MarketSpec``
POST     ``/sessions``               open a session from a ``SessionSpec``
GET      ``/sessions/<id>``          session status
POST     ``/sessions/<id>/step``     advance (body: ``{"rounds": n}`` or
                                     ``{"until_done": true}``; default 1 round)
GET      ``/sessions/<id>/state``    checkpoint: the session's engine state
PUT      ``/sessions/<id>/state``    restore a checkpoint under ``<id>``
DELETE   ``/sessions/<id>``          close a session
POST     ``/simulations``            submit a ``SimulationSpec`` job (sharded,
                                     durable; body may add ``shards``/``chunks``)
GET      ``/jobs``                   every recorded job's progress
GET      ``/jobs/<id>``              one job's progress + report when done
=======  ==========================  ==========================================

Example walkthrough (against ``python -m repro serve --port 8765``)::

    curl -s localhost:8765/healthz
    curl -s -X POST localhost:8765/markets -d '{"dataset": "synthetic"}'
    curl -s -X POST localhost:8765/sessions \
         -d '{"market": {"dataset": "synthetic"}, "seed": 0}'
    curl -s -X POST localhost:8765/sessions/s000000/step \
         -d '{"until_done": true}'
    curl -s -X POST localhost:8765/simulations \
         -d '{"sessions": 500, "seed": 0, "shards": 2}'
    curl -s localhost:8765/jobs

``run_server`` installs a SIGTERM handler for graceful shutdown: the
listener stops, running jobs drain to the durable store (they resume
with ``repro jobs resume``), and the process exits 0 — so supervisors
and CI can ``kill -TERM`` instead of sleeping and hoping.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.manager import SessionManager
from repro.service.specs import MarketSpec, SessionSpec, SimulationSpec
from repro.utils.canonical import json_safe

__all__ = ["JobService", "create_server", "run_server"]

_SESSION_ROUTE = re.compile(r"^/sessions/([^/]+)(/step|/state)?$")
_JOB_ROUTE = re.compile(r"^/jobs/([^/]+)$")


class JobService:
    """Background execution of simulation jobs behind the HTTP front door.

    Jobs are durable (the :class:`~repro.jobs.store.JobStore`) and run
    on daemon threads over the sharded executor; submitting the same
    spec twice attaches to the standing job instead of duplicating it.
    ``drain()`` is the graceful-shutdown hook: no further chunks are
    dispatched, in-flight chunks flush to the store, and interrupted
    jobs resume later via ``repro jobs resume`` (or a resubmit).
    """

    def __init__(self, store=None, *, shards: int = 2):
        self._store = store
        self.shards = shards
        self.stop_event = threading.Event()
        self._threads: dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        # Lazy-init guard for `store` only — deliberately NOT self._lock,
        # so the property stays safe to call from code holding the
        # service lock (every handler touches self._lock).
        self._store_lock = threading.Lock()

    @property
    def store(self):
        with self._store_lock:
            if self._store is None:
                from repro.jobs import JobStore, default_store_path

                self._store = JobStore(default_store_path())
            return self._store

    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> dict:
        """Record the job and (re)start its background execution."""
        from repro.jobs import ShardedExecutor

        body = dict(payload)
        chunks = body.pop("chunks", None)
        # Explicit None check: shards=0 is a valid request ("all cores")
        # and must not fall back to the server default.
        shards = body.pop("shards", None)
        if shards is None:
            shards = self.shards
        spec = SimulationSpec.from_dict(body)
        executor = ShardedExecutor(
            self.store, shards=int(shards), stop_event=self.stop_event
        )
        record = executor.submit(spec, chunks=chunks)
        started = self._start(record.job_id, executor)
        reply = self.status(record.job_id)
        reply["started"] = started
        return reply

    def _start(self, job_id: str, executor) -> bool:
        def work() -> None:
            try:
                executor.run(job_id)
            except Exception:  # recorded as `failed` in the store
                pass

        # Check-and-register under one lock acquisition: two concurrent
        # submits of the same (content-addressed) job must start exactly
        # one worker thread, not race past each other's liveness check.
        store = self.store
        with self._lock:
            thread = self._threads.get(job_id)
            if thread is not None and thread.is_alive():
                return False
            if store.get(job_id).finished or self.stop_event.is_set():
                return False
            thread = threading.Thread(
                target=work, name=f"job-{job_id}", daemon=True
            )
            self._threads[job_id] = thread
        thread.start()
        return True

    # ------------------------------------------------------------------
    def status(self, job_id: str) -> dict:
        """One job's progress (plus its report once finished)."""
        record = self.store.get(job_id)  # KeyError -> 404
        payload = record.progress()
        if record.report is not None:
            payload["report"] = json_safe(record.report)
        return payload

    def jobs(self) -> list[dict]:
        return [record.progress() for record in self.store.jobs()]

    def active_jobs(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads.values() if t.is_alive())

    def drain(self, timeout: float = 30.0) -> None:
        """Stop dispatching chunks and wait for in-flight ones to flush."""
        self.stop_event.set()
        with self._lock:
            threads = list(self._threads.values())
        deadline = time.monotonic() + timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`SessionManager`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    @property
    def manager(self) -> SessionManager:
        return self.server.manager  # type: ignore[attr-defined]

    @property
    def jobs(self) -> JobService:
        return self.server.jobs  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _reply(self, payload: dict, status: int = 200) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _dispatch(self, handler) -> None:
        try:
            payload, status = handler()
        except (ValueError, TypeError) as exc:  # spec/body validation
            # TypeError covers wrong-typed spec fields (e.g. a string
            # n_bundles failing a numeric comparison) — still a 400,
            # not a dropped connection.
            payload, status = {"error": str(exc)}, 400
        except KeyError as exc:  # unknown session
            payload, status = {"error": str(exc).strip("'\"")}, 404
        except RuntimeError as exc:  # session limit
            payload, status = {"error": str(exc)}, 429
        self._reply(payload, status)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        match = _SESSION_ROUTE.match(self.path)
        job = _JOB_ROUTE.match(self.path)
        if self.path == "/health":
            self._dispatch(lambda: ({"ok": True}, 200))
        elif self.path == "/healthz":
            self._dispatch(self._get_healthz)
        elif self.path == "/report":
            self._dispatch(lambda: (self.manager.report(), 200))
        elif self.path == "/jobs":
            self._dispatch(lambda: ({"jobs": self.jobs.jobs()}, 200))
        elif job:
            job_id = job.group(1)
            self._dispatch(lambda: (self.jobs.status(job_id), 200))
        elif match and match.group(2) == "/state":
            sid = match.group(1)
            self._dispatch(lambda: (self.manager.checkpoint(sid), 200))
        elif match and not match.group(2):
            sid = match.group(1)
            self._dispatch(lambda: (self.manager.status(sid), 200))
        else:
            self._reply({"error": f"no route GET {self.path}"}, 404)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        match = _SESSION_ROUTE.match(self.path)
        if self.path == "/markets":
            self._dispatch(self._post_market)
        elif self.path == "/sessions":
            self._dispatch(self._post_session)
        elif self.path == "/simulations":
            self._dispatch(lambda: (self.jobs.submit(self._body()), 202))
        elif match and match.group(2) == "/step":
            self._dispatch(lambda: self._post_step(match.group(1)))
        else:
            self._reply({"error": f"no route POST {self.path}"}, 404)

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        match = _SESSION_ROUTE.match(self.path)
        if match and match.group(2) == "/state":
            sid = match.group(1)
            self._dispatch(
                lambda: (
                    self.manager.status(
                        self.manager.restore(self._body(), session_id=sid)
                    ),
                    201,
                )
            )
        else:
            self._reply({"error": f"no route PUT {self.path}"}, 404)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        match = _SESSION_ROUTE.match(self.path)
        if match and not match.group(2):
            sid = match.group(1)
            self._dispatch(lambda: ({"closed": self.manager.close(sid)}, 200))
        else:
            self._reply({"error": f"no route DELETE {self.path}"}, 404)

    # ------------------------------------------------------------------
    def _get_healthz(self) -> tuple[dict, int]:
        report = self.manager.report()
        return (
            {
                "ok": True,
                "pid": os.getpid(),
                "draining": self.jobs.stop_event.is_set(),
                "sessions": report["sessions"],
                "markets": len(report["markets"]),
                "active_jobs": self.jobs.active_jobs(),
            },
            200,
        )

    # ------------------------------------------------------------------
    def _post_market(self) -> tuple[dict, int]:
        spec = MarketSpec.from_dict(self._body())
        cached = self.manager.pool.contains(spec)
        market = self.manager.market(spec)
        return (
            {
                "market": spec.digest(),
                "name": market.name,
                "n_bundles": len(market.oracle),
                "target_gain": (
                    float(market.config.target_gain)
                    if market.config.target_gain is not None
                    else None
                ),
                "cached": cached,
            },
            200,
        )

    def _post_session(self) -> tuple[dict, int]:
        spec = SessionSpec.from_dict(self._body())
        session_id = self.manager.open_session(spec)
        return self.manager.status(session_id), 201

    def _post_step(self, session_id: str) -> tuple[dict, int]:
        body = self._body()
        if body.get("until_done"):
            return self.manager.run(session_id), 200
        rounds = body.get("rounds", 1)
        if not isinstance(rounds, int) or rounds < 1:
            raise ValueError("rounds must be an int >= 1")
        return self.manager.step(session_id, rounds=rounds), 200


def create_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    manager: SessionManager | None = None,
    jobs: JobService | None = None,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port``.

    ``port=0`` binds an ephemeral port (tests); the bound address is
    ``server.server_address``.  The caller owns the serve loop:
    ``server.serve_forever()`` / ``server.shutdown()``.  ``jobs``
    defaults to a :class:`JobService` over the default durable store
    (created lazily on the first submission).
    """
    server = ThreadingHTTPServer((host, port), _ServiceHandler)
    server.daemon_threads = True
    server.manager = manager if manager is not None else SessionManager()  # type: ignore[attr-defined]
    server.jobs = jobs if jobs is not None else JobService()  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    idle_ttl: float | None = 900.0,
    max_sessions: int = 4096,
    job_store: str | None = None,
    shards: int = 2,
    drain_timeout: float = 30.0,
    verbose: bool = False,
) -> int:
    """Blocking entry point behind ``python -m repro serve``.

    Exits gracefully on SIGTERM (and Ctrl-C): the listener stops, any
    running jobs drain to the durable store — in-flight chunks flush,
    so ``repro jobs resume`` picks up exactly where the server stopped
    — and the process returns 0.
    """
    import signal

    from repro.jobs import JobStore, default_store_path

    manager = SessionManager(max_sessions=max_sessions, idle_ttl=idle_ttl or None)
    jobs = JobService(JobStore(job_store or default_store_path()), shards=shards)
    server = create_server(host, port, manager=manager, jobs=jobs,
                           verbose=verbose)
    bound_host, bound_port = server.server_address[:2]

    def _terminate(signum: int, frame: object) -> None:  # pragma: no cover
        # serve_forever() blocks this (main) thread; shutdown() must be
        # called from another one.
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    print(f"repro marketplace service on http://{bound_host}:{bound_port} "
          f"(SIGTERM or Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        jobs.drain(timeout=drain_timeout)
        server.server_close()
        print("repro marketplace service drained and stopped")
    return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """CLI flags for the ``serve`` command (kept next to the server)."""
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="bind port (default 8765; 0 = ephemeral)")
    parser.add_argument("--idle-ttl", type=float, default=900.0, metavar="SECS",
                        help="evict sessions idle longer than this "
                             "(default 900; 0 disables)")
    parser.add_argument("--max-sessions", type=int, default=4096,
                        help="resident-session cap (default 4096)")
    parser.add_argument("--job-store", default=None, metavar="PATH",
                        help="durable job store (default: $REPRO_JOB_STORE "
                             "or ~/.cache/repro/jobs.sqlite3)")
    parser.add_argument("--shards", type=int, default=2, metavar="N",
                        help="worker shards for submitted jobs (default 2; "
                             "0 = all cores)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        metavar="SECS",
                        help="grace for in-flight job chunks on shutdown")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request")
