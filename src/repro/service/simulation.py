"""Population-simulation jobs as specs.

:func:`run_simulation` is the service-layer twin of
``python -m repro simulate``: it resolves a
:class:`~repro.service.specs.SimulationSpec` into a sampled population,
runs the :class:`~repro.simulate.pool.SessionPool` scheduler, and
returns the deterministic aggregate report.  Oracle-backed jobs pull
their market from the shared :class:`~repro.service.manager.MarketPool`,
so a warm oracle serves simulations and interactive sessions alike.
"""

from __future__ import annotations

from repro.service.manager import MarketPool, shared_pool
from repro.service.specs import MarketSpec, SimulationSpec

__all__ = ["backing_market_spec", "run_simulation", "settlement_for"]


def backing_market_spec(spec: SimulationSpec) -> MarketSpec | None:
    """The oracle-backing market spec, experiment-scale aware.

    The single resolution rule shared by :func:`run_simulation`'s
    default path and the jobs executor's workers
    (:mod:`repro.jobs.executor`), so ``repro simulate --dataset`` and a
    sharded job of the same :class:`SimulationSpec` build the same
    oracle — and digest-match — under every ``REPRO_*`` scale tier
    (notably ``REPRO_FULL=1``).
    """
    if spec.dataset is None:
        return None
    from repro.experiments import spec_for

    cache = None
    if not spec.no_cache:
        from repro.oracle_factory import default_cache_dir

        cache = spec.cache_dir or default_cache_dir()
    return spec_for(
        spec.dataset,
        spec.base_model,
        seed=spec.seed,
        jobs=spec.jobs,
        cache=cache,
    )


def run_simulation(
    spec: SimulationSpec,
    *,
    pool: MarketPool | None = None,
    market_spec: MarketSpec | None = None,
):
    """Run one population-simulation job.

    Returns ``(population, result, report)`` — the sampled
    :class:`~repro.simulate.population.Population`, the pool's terminal
    :class:`~repro.simulate.pool.PoolResult`, and the aggregate
    :class:`~repro.simulate.report.SimulationReport`.

    ``market_spec`` overrides the oracle-backing market description; by
    default :func:`backing_market_spec` resolves it (experiment-scale
    aware, matching what the CLI and the jobs executor build).
    """
    from repro.simulate.pool import SessionPool
    from repro.simulate.report import build_report
    from repro.simulate.population import sample_population

    oracle = None
    if spec.dataset is not None:
        backing = (
            market_spec if market_spec is not None else backing_market_spec(spec)
        )
        market = (pool if pool is not None else shared_pool()).get(backing)
        oracle = market.oracle
    population = sample_population(
        spec.population_spec(), spec.sessions, seed=spec.seed, oracle=oracle
    )
    result = SessionPool(
        population, batch_size=spec.batch_size, settlement=settlement_for(spec)
    ).run()
    report = build_report(population, result, n_bins=spec.bins)
    return population, result, report


def settlement_for(spec: SimulationSpec):
    """The spec's :class:`~repro.security.batch.SecureSettlement` (or None).

    Keys derive from ``(seed, key_bits)`` alone, so the executor's
    worker shards (:func:`repro.jobs.executor.run_simulation_chunk`)
    rebuild the identical keypair from the spec dict — the merged
    secure report digests match the single-process path.
    """
    if not spec.secure:
        return None
    from repro.security.batch import settlement_for as _settlement_for

    return _settlement_for(spec.seed, spec.key_bits)
