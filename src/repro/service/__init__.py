"""The marketplace service layer: one typed API under every front door.

The paper models a standing feature market where a platform mediates
many buyer/seller bargaining sessions over pre-computed ΔG oracles.
This package is that platform's programmatic surface, layered as:

* :mod:`~repro.service.registry` — decorator-based registries for
  datasets, base models, party strategies and cost kinds; the single
  extension point behind CLI choices, spec validation and the
  simulator's mix parser.
* :mod:`~repro.service.specs` — frozen, validated
  :class:`MarketSpec` / :class:`SessionSpec` / :class:`SimulationSpec`
  job descriptions with canonical dict round-trips and content digests
  (the cache keys for the market pool and the oracle gain cache).
* :mod:`~repro.service.manager` — the thread-safe :class:`MarketPool`
  and the :class:`SessionManager` brokering concurrent sessions over
  the stepwise :class:`~repro.market.engine.BargainingEngine` core.
* :mod:`~repro.service.simulation` — population-simulation jobs as
  specs (:func:`run_simulation`).
* :mod:`~repro.service.server` — ``python -m repro serve``: a stdlib
  JSON-over-HTTP view of the manager, so many clients can bargain
  against one warm oracle concurrently.

Typical embedded use::

    from repro.service import MarketSpec, SessionSpec, SessionManager

    manager = SessionManager()
    spec = MarketSpec(dataset="titanic")
    sid = manager.open_session(SessionSpec(market=spec, seed=0))
    while not manager.step(sid)["done"]:
        pass
    print(manager.status(sid)["outcome"])
"""

from repro.service import registry
from repro.service.api import JobService
from repro.service.manager import (
    MarketPool,
    SessionConflictError,
    SessionLimitError,
    SessionManager,
    shared_pool,
)
from repro.service.registry import (
    Registry,
    StrategyContext,
    register_base_model,
    register_cost,
    register_data_strategy,
    register_dataset,
    register_task_strategy,
)
from repro.service.server import create_server, run_server
from repro.service.simulation import run_simulation
from repro.service.specs import BatchSpec, MarketSpec, SessionSpec, SimulationSpec

__all__ = [
    "BatchSpec",
    "JobService",
    "MarketPool",
    "MarketSpec",
    "Registry",
    "SessionConflictError",
    "SessionLimitError",
    "SessionManager",
    "SessionSpec",
    "SimulationSpec",
    "StrategyContext",
    "create_server",
    "register_base_model",
    "register_cost",
    "register_data_strategy",
    "register_dataset",
    "register_task_strategy",
    "registry",
    "run_server",
    "run_simulation",
    "shared_pool",
]
