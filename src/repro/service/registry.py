"""Decorator-based registries: the market's single extension point.

Every dimension a front door used to hardcode — dataset names in
``cli.py`` ``choices=`` tuples, strategy ``if/elif`` ladders in
:mod:`repro.market.market` and :mod:`repro.simulate.population`, cost
kinds in the simulator's mix parser — resolves through one of the
registries below.  Registering an entry makes it appear everywhere at
once: CLI help and validation, spec validation
(:mod:`repro.service.specs`), the :class:`~repro.market.market.Market`
engine builder, and the population sampler's strategy/cost mixes.

Extension example (see ``examples/custom_market.py`` for the full
walkthrough)::

    from repro.service import register_dataset, register_task_strategy

    @register_dataset("acme", preset=my_preset, gain_scale=0.15)
    def load_acme(n_samples=None, *, seed=0):
        return RawDataset(...)

    @register_task_strategy("patient")
    def patient_buyer(ctx):
        return PatientTaskParty(ctx.config, list(ctx.gains.values()),
                                rng=ctx.rng)

after which ``python -m repro bargain --dataset acme --task patient``
— and the equivalent ``MarketSpec``/``SessionSpec`` over HTTP — just
work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, ItemsView, TypeVar

from repro.market.config import MarketConfig
from repro.market.costs import (
    ConstantCost,
    CostModel,
    ExponentialCost,
    LinearCost,
)
from repro.market.presets import MARKET_PRESETS, MarketPreset
from repro.market.strategies.baselines import (
    IncreasePriceTaskParty,
    RandomBundleDataParty,
)
from repro.market.strategies.data_party import StrategicDataParty
from repro.market.strategies.imperfect import ImperfectDataParty, ImperfectTaskParty
from repro.market.strategies.task_party import StrategicTaskParty
from repro.utils.validation import require

__all__ = [
    "COSTS",
    "DATA_STRATEGIES",
    "DATASETS",
    "BASE_MODELS",
    "BaseModelEntry",
    "CostEntry",
    "DatasetEntry",
    "Registry",
    "StrategyContext",
    "base_model_names",
    "build_cost",
    "build_data_strategy",
    "build_task_strategy",
    "cost_names",
    "data_strategy_names",
    "dataset_names",
    "preset_names",
    "register_base_model",
    "register_cost",
    "register_data_strategy",
    "register_dataset",
    "register_task_strategy",
    "TASK_STRATEGIES",
    "task_strategy_names",
]


T = TypeVar("T")


class Registry(Generic[T]):
    """A named table of pluggable components.

    ``register`` doubles as a decorator; collisions are hard errors
    unless ``overwrite=True`` (re-importing an extension module is the
    one legitimate reason to overwrite).  Parameterising over the entry
    type (``Registry[DatasetEntry]``) makes every ``get`` lookup typed,
    so a consumer spelling ``DATASETS.get(name).gain_scale`` is checked
    statically instead of trusting the table's discipline.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    # ------------------------------------------------------------------
    def register(
        self, name: str, obj: T | None = None, *, overwrite: bool = False
    ) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; without ``obj``, a decorator."""
        require(
            isinstance(name, str) and name and name == name.strip(),
            f"{self.kind} name must be a non-empty string",
        )
        if obj is None:
            def deferred(target: T) -> T:
                self.register(name, target, overwrite=overwrite)
                return target

            return deferred
        if not overwrite and name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> None:
        """Remove an entry (tests and hot-reload use this)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> T:
        """Look up an entry, with the known names in the error."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; known: {sorted(self._entries)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted (CLI ``choices=`` consume this)."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> ItemsView[str, T]:
        return self._entries.items()


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DatasetEntry:
    """One tradable dataset: loader + market calibration.

    ``loader(n_samples=None, *, seed=0) -> RawDataset`` synthesises (or
    fetches) the raw table; ``preset`` calibrates the market built on
    it; ``gain_scale`` anchors the population simulator's synthetic
    catalogues for this dataset's preset.  ``synthetic=True`` marks
    catalogue-only entries that stand up a market without any VFL
    machinery (no loader).
    """

    name: str
    loader: Callable | None
    preset: MarketPreset
    gain_scale: float = 0.20
    synthetic: bool = False

    def __post_init__(self) -> None:
        require(self.gain_scale > 0, "gain_scale must be > 0")
        require(
            self.synthetic or self.loader is not None,
            f"dataset {self.name!r} needs a loader (or synthetic=True)",
        )


DATASETS: Registry[DatasetEntry] = Registry("dataset")


def register_dataset(
    name: str,
    *,
    preset: MarketPreset,
    gain_scale: float = 0.20,
    synthetic: bool = False,
    overwrite: bool = False,
):
    """Decorator registering a dataset loader together with its preset."""

    def wrap(loader: Callable | None):
        DATASETS.register(
            name,
            DatasetEntry(
                name=name,
                loader=loader,
                preset=preset,
                gain_scale=gain_scale,
                synthetic=synthetic,
            ),
            overwrite=overwrite,
        )
        return loader

    return wrap


def dataset_names(*, include_synthetic: bool = True) -> tuple[str, ...]:
    """Registered dataset names (optionally hiding catalogue-only ones)."""
    return tuple(
        name
        for name in DATASETS.names()
        if include_synthetic or not DATASETS.get(name).synthetic
    )


def preset_names() -> tuple[str, ...]:
    """Valid population-calibration anchors (every registered dataset)."""
    return DATASETS.names()


# ----------------------------------------------------------------------
# Base models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaseModelEntry:
    """One VFL base model: preset calibration + course builders.

    The builders are what the VFL runner (:mod:`repro.vfl.runner`)
    dispatches through, so a registered model reaches oracle
    construction everywhere (``Market.from_spec``, the oracle factory,
    CLI/HTTP specs):

    * ``isolated(dataset, params, rng) -> float`` — train the task
      party alone, return its test score (``M0``).
    * ``joint(dataset, bundle, params, rng, *, channel, task_design,
      data_design) -> float`` — run the federated protocol on
      ``bundle``, return the joint test score (``M``).

    ``defaults`` are the protocol's model parameters (``None`` accepts
    arbitrary overrides verbatim); ``supports_designs`` marks models
    whose joint builder consumes the oracle factory's pre-binned
    designs.  Entries without builders can still calibrate presets but
    cannot run VFL courses.
    """

    name: str
    preset_params_attr: str | None = None
    defaults: dict | None = None
    isolated: Callable | None = None
    joint: Callable | None = None
    supports_designs: bool = False

    def preset_params(self, preset: MarketPreset) -> dict:
        """The preset's model-parameter overrides for this base model."""
        if self.preset_params_attr is None:
            return {}
        return dict(getattr(preset, self.preset_params_attr))


BASE_MODELS: Registry[BaseModelEntry] = Registry("base model")


def register_base_model(
    name: str,
    *,
    preset_params_attr: str | None = None,
    defaults: dict | None = None,
    isolated: Callable | None = None,
    joint: Callable | None = None,
    supports_designs: bool = False,
    overwrite: bool = False,
) -> BaseModelEntry:
    """Register a base model (with course builders, runnable end to end)."""
    entry = BaseModelEntry(
        name=name,
        preset_params_attr=preset_params_attr,
        defaults=dict(defaults) if defaults is not None else None,
        isolated=isolated,
        joint=joint,
        supports_designs=supports_designs,
    )
    BASE_MODELS.register(name, entry, overwrite=overwrite)
    return entry


def base_model_names() -> tuple[str, ...]:
    return BASE_MODELS.names()


# ----------------------------------------------------------------------
# Party strategies
# ----------------------------------------------------------------------
@dataclass
class StrategyContext:
    """Everything a strategy factory may consume.

    One context per party per session: ``rng`` is that party's private
    seeded stream, ``cost_model`` its bargaining-cost schedule.  The
    ``gains``/``reserved_prices``/``n_features`` describe the shared
    catalogue (what the trusted platform disclosed).
    """

    config: MarketConfig
    gains: dict
    reserved_prices: dict
    n_features: int = 0
    cost_model: CostModel | None = None
    rng: object = None


TASK_STRATEGIES: Registry[Callable[[StrategyContext], object]] = Registry("task strategy")
DATA_STRATEGIES: Registry[Callable[[StrategyContext], object]] = Registry("data strategy")


def register_task_strategy(name: str, *, overwrite: bool = False):
    """Decorator over a ``(StrategyContext) -> TaskStrategy`` factory."""
    return TASK_STRATEGIES.register(name, overwrite=overwrite)


def register_data_strategy(name: str, *, overwrite: bool = False):
    """Decorator over a ``(StrategyContext) -> DataStrategy`` factory."""
    return DATA_STRATEGIES.register(name, overwrite=overwrite)


def build_task_strategy(name: str, ctx: StrategyContext):
    """Instantiate the registered task-party strategy ``name``."""
    return TASK_STRATEGIES.get(name)(ctx)


def build_data_strategy(name: str, ctx: StrategyContext):
    """Instantiate the registered data-party strategy ``name``."""
    return DATA_STRATEGIES.get(name)(ctx)


def task_strategy_names() -> tuple[str, ...]:
    return TASK_STRATEGIES.names()


def data_strategy_names() -> tuple[str, ...]:
    return DATA_STRATEGIES.names()


# ----------------------------------------------------------------------
# Bargaining-cost schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostEntry:
    """One cost kind: parameter validation + model factory.

    ``factory(a) -> CostModel | None`` (``None`` = frictionless);
    ``validate(a)`` raises ``ValueError`` on out-of-range parameters —
    at *spec* construction, not mid-simulation.  ``takes_parameter``
    drives the CLI mix parser's ``kind:a=weight`` syntax checks.
    """

    name: str
    factory: Callable[[float], CostModel | None]
    validate: Callable[[float], None] = field(default=lambda a: None)
    takes_parameter: bool = True


COSTS: Registry[CostEntry] = Registry("cost kind")


def register_cost(
    name: str,
    factory: Callable[[float], CostModel | None],
    *,
    validate: Callable[[float], None] | None = None,
    takes_parameter: bool = True,
    overwrite: bool = False,
) -> CostEntry:
    """Register a bargaining-cost schedule kind."""
    entry = CostEntry(
        name=name,
        factory=factory,
        validate=validate or (lambda a: None),
        takes_parameter=takes_parameter,
    )
    COSTS.register(name, entry, overwrite=overwrite)
    return entry


def build_cost(kind: str, a: float = 0.0) -> CostModel | None:
    """Instantiate (and validate) the registered cost kind ``kind``."""
    entry = COSTS.get(kind)
    entry.validate(a)
    return entry.factory(a)


def cost_names() -> tuple[str, ...]:
    return COSTS.names()


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
def _register_builtin_datasets() -> None:
    # Imported lazily relative to module top so the registry stays
    # importable from repro.market.market without a package cycle.
    from repro.data.synthetic.adult import load_adult
    from repro.data.synthetic.credit import load_credit
    from repro.data.synthetic.titanic import load_titanic

    # ΔG magnitude of each preset's catalogue (the paper's per-dataset
    # ranges: Titanic ~0.1-0.2, Credit ~0.005-0.012, Adult ~0.01-0.04).
    gain_scales = {"titanic": 0.20, "credit": 0.012, "adult": 0.04}
    loaders = {"titanic": load_titanic, "credit": load_credit, "adult": load_adult}
    for name, loader in loaders.items():
        register_dataset(
            name, preset=MARKET_PRESETS[name], gain_scale=gain_scales[name]
        )(loader)

    # The catalogue-only market: no dataset, no VFL — the unit-test
    # ladder calibration, instant to build.  The population simulator's
    # "synthetic" preset and `repro serve` demos anchor here.
    register_dataset(
        "synthetic",
        preset=MarketPreset(
            config=MarketConfig(
                utility_rate=500.0,
                budget=6.0,
                initial_rate=6.2,
                initial_base=0.95,
                eps_d=1e-3,
                eps_t=1e-3,
            ),
            reserved_price_params={
                "rate_floor": 5.0,
                "rate_per_feature": 0.15,
                "base_floor": 0.80,
                "base_per_feature": 0.020,
                "rate_value": 2.0,
                "base_value": 0.30,
                "rate_noise": 0.25,
                "base_noise": 0.02,
            },
            n_bundles=24,
        ),
        gain_scale=0.20,
        synthetic=True,
    )(None)


_register_builtin_datasets()


def _register_builtin_base_models() -> None:
    # The runner owns the builders (they wrap the ml/vfl substrate);
    # the registry owns the names.  repro.vfl.runner resolves back
    # through this registry lazily, so there is no import cycle.
    from repro.vfl.runner import BUILTIN_BASE_MODELS

    for name, kwargs in BUILTIN_BASE_MODELS.items():
        register_base_model(name, **kwargs)


_register_builtin_base_models()


@register_task_strategy("strategic")
def _strategic_task(ctx: StrategyContext) -> StrategicTaskParty:
    return StrategicTaskParty(
        ctx.config, list(ctx.gains.values()), cost_model=ctx.cost_model, rng=ctx.rng
    )


@register_task_strategy("increase_price")
def _increase_price_task(ctx: StrategyContext) -> IncreasePriceTaskParty:
    return IncreasePriceTaskParty(ctx.config, list(ctx.gains.values()), rng=ctx.rng)


@register_task_strategy("imperfect")
def _imperfect_task(ctx: StrategyContext) -> ImperfectTaskParty:
    return ImperfectTaskParty(ctx.config, rng=ctx.rng)


@register_data_strategy("strategic")
def _strategic_data(ctx: StrategyContext) -> StrategicDataParty:
    return StrategicDataParty(
        ctx.gains, ctx.reserved_prices, ctx.config, cost_model=ctx.cost_model
    )


@register_data_strategy("random_bundle")
def _random_bundle_data(ctx: StrategyContext) -> RandomBundleDataParty:
    return RandomBundleDataParty(
        ctx.gains, ctx.reserved_prices, ctx.config, rng=ctx.rng
    )


@register_data_strategy("imperfect")
def _imperfect_data(ctx: StrategyContext) -> ImperfectDataParty:
    return ImperfectDataParty(
        list(ctx.gains), ctx.reserved_prices, ctx.config, ctx.n_features, rng=ctx.rng
    )


def _require_nonneg(a: float) -> None:
    require(a >= 0, "cost parameter a must be >= 0")


def _require_pos(a: float) -> None:
    require(a > 0, "linear cost needs a > 0")


def _require_gt1(a: float) -> None:
    require(a > 1.0, "exponential cost needs a > 1")


register_cost(
    "none", lambda a: None, validate=_require_nonneg, takes_parameter=False
)
register_cost("constant", lambda a: ConstantCost(float(a)), validate=_require_nonneg)
register_cost("linear", lambda a: LinearCost(float(a)), validate=_require_pos)
register_cost(
    "exponential", lambda a: ExponentialCost(float(a)), validate=_require_gt1
)
