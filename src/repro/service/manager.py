"""The concurrent session broker: markets pooled, sessions stepped.

Two pieces:

* :class:`MarketPool` — a thread-safe, digest-keyed cache of built
  :class:`~repro.market.market.Market` stacks.  Building an oracle is
  the expensive part of serving a market, so every consumer of a given
  :class:`~repro.service.specs.MarketSpec` — CLI commands, the
  experiment harness, every HTTP client of ``repro serve`` — shares
  one warm build.  A per-digest build lock guarantees concurrent
  requests for the same spec trigger exactly one build.
* :class:`SessionManager` — a broker over the stepwise
  :meth:`~repro.market.engine.BargainingEngine.start` /
  :meth:`~repro.market.engine.BargainingEngine.step` core:
  ``open_session(spec) -> session_id``, then ``step``/``status``/
  ``close``.  Sessions hold their own seeded RNG streams and per-session
  locks, so many clients can bargain concurrently against one shared
  market; idle sessions are evicted after ``idle_ttl`` seconds.

**Cross-session micro-batching.** With ``coalesce_window`` set, the
manager coalesces concurrent in-flight ``step``/``run`` calls for the
same market digest into one batch: the first caller into a quiet market
queue becomes the *leader*, waits the (bounded) window for more calls
to pile in, then drains and executes the whole group in one sweep while
the followers wait on per-request futures for their replies to fan back
out.  A singleton batch takes the plain stepwise path untouched.
Because every session advances through its own engine and its own
seeded RNG streams, outcomes are **bit-identical** to serial stepwise
execution for any window — pinned by
``tests/service/test_batch_stepping.py``.  (Population workloads that
want the vectorised kernel proper assemble
:class:`~repro.simulate.kernel.StrategicBatch` groups and run them
through :func:`~repro.simulate.kernel.simulate_assembled_batch`;
wire sessions stay on the stepwise path so their digests never drift.)

The module-level :func:`shared_pool` is the process-wide pool;
:func:`repro.experiments.runner.get_market` and ``repro serve`` both
sit on it, so a market warmed by one front door is warm for all.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro import obs
from repro.market.engine import BargainingEngine, BargainOutcome, EngineState
from repro.market.market import Market
from repro.service.specs import MarketSpec, SessionSpec
from repro.utils.validation import require

__all__ = [
    "MarketPool",
    "SessionConflictError",
    "SessionLimitError",
    "SessionManager",
    "shared_pool",
]


#: Micro-batching telemetry: sweep cadence, how many requests each
#: sweep drained (1 = the window closed empty-handed), and how long
#: each leader was parked before its first drain.  Purely operational —
#: coalescing cannot change outcomes, so none of this is digested.
_SWEEPS = obs.REGISTRY.counter(
    "repro_coalesce_sweeps_total",
    "Coalesced step/run sweeps executed by batch leaders.",
)
_GROUP_SIZE = obs.REGISTRY.histogram(
    "repro_coalesce_group_size",
    "Requests drained per coalesced sweep (1 = singleton).",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
)
_LEADER_WAIT = obs.REGISTRY.histogram(
    "repro_coalesce_leader_wait_seconds",
    "Window a batch leader waited before sweeping (monotonic).",
)


class SessionLimitError(RuntimeError):
    """Resident-session cap reached (HTTP 429 on the wire)."""


class SessionConflictError(RuntimeError):
    """A session id is already resident (HTTP 409 on the wire)."""


#: Process-unique ids for hand-injected (adhoc) markets; shared across
#: every pool in the process so an auto key can never repeat.
_ADHOC_IDS = itertools.count()


class MarketPool:
    """Thread-safe cache of built markets keyed by spec digest."""

    def __init__(self):
        self._lock = threading.Lock()
        self._markets: dict[str, Market] = {}
        self._specs: dict[str, dict] = {}
        self._builds: dict[str, threading.Lock] = {}
        self.builds = 0  # cold builds performed (cache misses)

    # ------------------------------------------------------------------
    def contains(self, spec: MarketSpec | str) -> bool:
        """Whether :meth:`get` would return an already-built market."""
        digest = spec if isinstance(spec, str) else spec.digest()
        with self._lock:
            return digest in self._markets

    def get(self, spec: MarketSpec) -> Market:
        """The market for ``spec``, built at most once per digest."""
        digest = spec.digest()
        with self._lock:
            market = self._markets.get(digest)
            if market is not None:
                return market
            build_lock = self._builds.setdefault(digest, threading.Lock())
        with build_lock:
            # Another thread may have finished the build while we waited.
            with self._lock:
                market = self._markets.get(digest)
            if market is not None:
                return market
            market = Market.from_spec(spec)
            with self._lock:
                self._markets[digest] = market
                self._specs[digest] = spec.to_dict()
                self._builds.pop(digest, None)
                self.builds += 1
            return market

    def lookup(self, digest: str) -> Market:
        """The already-built market under ``digest`` (no building)."""
        with self._lock:
            try:
                return self._markets[digest]
            except KeyError:
                raise ValueError(
                    f"no market {digest!r} in the pool; POST its spec first"
                ) from None

    def add(self, market: Market, *, key: str | None = None) -> str:
        """Inject a hand-built market (embedded deployments, tests).

        Auto-generated keys come from a process-unique counter — *not*
        from ``id(market)``, which the allocator reuses after GC, so
        two adhoc markets injected over the lifetime of a pool could
        silently collide on one digest and serve each other's sessions.
        """
        digest = key if key is not None else (
            f"adhoc-{market.name}-{next(_ADHOC_IDS):08x}"
        )
        with self._lock:
            self._markets[digest] = market
        return digest

    def spec_dict(self, digest: str) -> dict | None:
        """The ``MarketSpec`` dict built under ``digest`` (``None`` for
        hand-injected markets, which have no declarative description)."""
        with self._lock:
            return self._specs.get(digest)

    def clear(self) -> None:
        """Drop every cached market (tests use this to force cold builds)."""
        with self._lock:
            self._markets.clear()
            self._specs.clear()
            self._builds.clear()

    def markets(self) -> dict[str, str]:
        """``digest -> market name`` for every resident market."""
        with self._lock:
            return {d: m.name for d, m in self._markets.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._markets)


_SHARED_POOL = MarketPool()


def shared_pool() -> MarketPool:
    """The process-wide market pool every front door shares."""
    return _SHARED_POOL


# ----------------------------------------------------------------------
@dataclass
class _Session:
    """One live bargaining session inside a manager."""

    id: str
    spec: SessionSpec
    market_digest: str
    engine: BargainingEngine
    state: EngineState
    opened_at: float
    last_active: float
    steps: int = 0
    counted: bool = False
    #: Restored-but-not-yet-resumed sessions are protected from idle
    #: eviction until their client first touches them — a checkpoint
    #: shipped into this manager must not be reaped while the client
    #: is still reconnecting.
    pending_restore: bool = False
    #: Memoised secure-settled outcome payload (``spec.secure`` only).
    secure_outcome: dict | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class _StepRequest:
    """One in-flight ``step``/``run`` call parked in a market queue."""

    __slots__ = ("session", "rounds", "until_done", "event", "result", "error")

    def __init__(self, session: _Session, rounds: int, until_done: bool):
        self.session = session
        self.rounds = rounds
        self.until_done = until_done
        self.event = threading.Event()
        self.result: dict | None = None
        self.error: BaseException | None = None

    def resolve(self) -> dict:
        self.event.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class _MarketQueue:
    """Per-market coalescing queue: pending requests + leader flag."""

    __slots__ = ("lock", "pending", "draining")

    def __init__(self):
        self.lock = threading.Lock()
        self.pending: list[_StepRequest] = []
        self.draining = False


def _quote_dict(quote) -> dict | None:
    return quote.to_dict() if quote is not None else None


def _outcome_dict(outcome: BargainOutcome) -> dict:
    delta_g = float(outcome.delta_g)
    return {
        "status": outcome.status,
        "terminated_by": outcome.terminated_by,
        "accepted": outcome.accepted,
        "n_rounds": int(outcome.n_rounds),
        "delta_g": delta_g if delta_g == delta_g else None,  # NaN -> null
        "payment": float(outcome.payment),
        "net_profit": float(outcome.net_profit),
        "cost_task": float(outcome.cost_task),
        "cost_data": float(outcome.cost_data),
        "quote": _quote_dict(outcome.quote),
        "bundle": list(outcome.bundle.indices) if outcome.bundle else None,
    }


class SessionManager:
    """Brokers many concurrent bargaining sessions over pooled markets.

    Parameters
    ----------
    pool:
        The :class:`MarketPool` to resolve ``SessionSpec.market``
        against (default: the process-wide :func:`shared_pool`).
    max_sessions:
        Hard cap on resident sessions; :meth:`open_session` beyond it
        raises ``RuntimeError`` (HTTP 429) after an eviction sweep.
    idle_ttl:
        Seconds of inactivity after which a session is evicted
        (``None`` disables eviction).
    coalesce_window:
        Seconds the first concurrent ``step``/``run`` caller for a
        market waits for more calls to coalesce before executing the
        whole group in one sweep (``None``/``0`` disables
        micro-batching; every call executes immediately).  Outcomes are
        bit-identical for any window — coalescing is purely an
        execution concern.
    batch_limit:
        Largest coalesced group one sweep executes; overflow requests
        are swept next, in arrival order.
    clock:
        Injectable monotonic clock (tests drive eviction with it).
    """

    def __init__(
        self,
        *,
        pool: MarketPool | None = None,
        max_sessions: int = 4096,
        idle_ttl: float | None = None,
        coalesce_window: float | None = None,
        batch_limit: int = 128,
        clock=time.monotonic,
    ):
        require(max_sessions >= 1, "max_sessions must be >= 1")
        require(idle_ttl is None or idle_ttl > 0, "idle_ttl must be > 0")
        require(coalesce_window is None or coalesce_window >= 0,
                "coalesce_window must be >= 0")
        require(batch_limit >= 1, "batch_limit must be >= 1")
        self.pool = pool if pool is not None else shared_pool()
        self.max_sessions = int(max_sessions)
        self.idle_ttl = idle_ttl
        self.coalesce_window = coalesce_window or None
        self.batch_limit = int(batch_limit)
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: dict[str, _Session] = {}
        self._ids = itertools.count()
        self._opened = 0
        self._closed = 0
        self._evicted = 0
        self._outcomes = {"accepted": 0, "failed": 0, "max_rounds": 0}
        self._queues: dict[str, _MarketQueue] = {}
        self._queues_lock = threading.Lock()
        self._sweeps = 0
        self._coalesced = 0
        self._largest_sweep = 0

    # ------------------------------------------------------------------
    # Markets
    # ------------------------------------------------------------------
    def market(self, spec: MarketSpec) -> Market:
        """Build (or reuse) the pooled market for ``spec``."""
        return self.pool.get(spec)

    def _resolve_market(self, spec: SessionSpec) -> tuple[str, Market]:
        if isinstance(spec.market, str):
            return spec.market, self.pool.lookup(spec.market)
        return spec.market.digest(), self.pool.get(spec.market)

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def _build_engine(self, spec: SessionSpec) -> tuple[str, BargainingEngine]:
        """One session's engine over the pooled market for ``spec``."""
        digest, market = self._resolve_market(spec)
        cost_task, cost_data = spec.cost_models()
        engine = market.build_engine(
            task=spec.task,
            data=spec.data,
            information=spec.information,
            seed=spec.engine_seed(),
            cost_task=cost_task,
            cost_data=cost_data,
            config_overrides=spec.config_overrides,
        )
        return digest, engine

    def _install(
        self,
        spec: SessionSpec,
        digest: str,
        engine: BargainingEngine,
        state: EngineState,
        *,
        session_id: str | None = None,
        steps: int = 0,
        pending_restore: bool = False,
    ) -> str:
        """Register a session under the manager's capacity accounting."""
        now = self._clock()
        with self._lock:
            self._evict_locked(now)
            if len(self._sessions) >= self.max_sessions:
                raise SessionLimitError(
                    f"session limit reached ({self.max_sessions}); "
                    f"close or evict sessions first"
                )
            if session_id is None:
                while True:
                    session_id = f"s{next(self._ids):06d}"
                    if session_id not in self._sessions:
                        break
            elif session_id in self._sessions:
                raise SessionConflictError(
                    f"session {session_id!r} is already resident; close it "
                    f"before restoring a checkpoint under its id"
                )
            self._sessions[session_id] = _Session(
                id=session_id,
                spec=spec,
                market_digest=digest,
                engine=engine,
                state=state,
                opened_at=now,
                last_active=now,
                steps=steps,
                pending_restore=pending_restore,
            )
            self._opened += 1
        return session_id

    def open_session(self, spec: SessionSpec) -> str:
        """Stand up one session's engine and return its id."""
        digest, engine = self._build_engine(spec)
        return self._install(spec, digest, engine, engine.start())

    def _get(self, session_id: str) -> _Session:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise KeyError(
                    f"unknown session {session_id!r} (closed, evicted, or "
                    f"never opened)"
                ) from None

    def step(self, session_id: str, *, rounds: int = 1) -> dict:
        """Advance a session up to ``rounds`` rounds; returns its status.

        Stepping a terminal session is a no-op (the standing status is
        returned), so clients may poll ``step`` without tracking
        ``done`` themselves.  With ``coalesce_window`` set, concurrent
        calls against the same market coalesce into one sweep.
        """
        require(rounds >= 1, "rounds must be >= 1")
        session = self._get(session_id)
        if self.coalesce_window is not None:
            return self._coalesce(session, rounds, False)
        return self._execute(session, rounds, False)

    def run(self, session_id: str) -> dict:
        """Step a session to termination; returns the terminal status."""
        session = self._get(session_id)
        if self.coalesce_window is not None:
            return self._coalesce(session, 1, True)
        return self._execute(session, 1, True)

    def _execute(self, session: _Session, rounds: int, until_done: bool) -> dict:
        """The stepwise path: advance one session under its own lock."""
        with session.lock:
            while not session.state.done:
                session.state = session.engine.step(session.state)
                session.steps += 1
                if not until_done:
                    rounds -= 1
                    if rounds <= 0:
                        break
            self._touch(session)
            self._tally(session)
            return self._summary(session)

    # ------------------------------------------------------------------
    # Cross-session micro-batching
    # ------------------------------------------------------------------
    def _queue_for(self, digest: str) -> _MarketQueue:
        with self._queues_lock:
            queue = self._queues.get(digest)
            if queue is None:
                queue = self._queues[digest] = _MarketQueue()
            return queue

    def _coalesce(self, session: _Session, rounds: int, until_done: bool) -> dict:
        """Park the call in its market's queue; lead or follow.

        The first request into a quiet queue becomes the leader: it
        waits ``coalesce_window`` seconds for concurrent calls to pile
        in, then drains the queue in ``batch_limit``-sized sweeps
        (executing its own request along the way) until the queue is
        empty again.  Followers block on their request's future.
        Every session still advances through its own engine under its
        own lock, so grouping cannot change any outcome.
        """
        queue = self._queue_for(session.market_digest)
        request = _StepRequest(session, rounds, until_done)
        with queue.lock:
            queue.pending.append(request)
            leading = not queue.draining
            if leading:
                queue.draining = True
        if leading:
            self._lead(queue)
        return request.resolve()

    def _lead(self, queue: _MarketQueue) -> None:
        """Leader duty: wait the window, then sweep the queue dry."""
        try:
            t0 = time.perf_counter()
            time.sleep(self.coalesce_window)
            _LEADER_WAIT.observe(time.perf_counter() - t0)
            while True:
                with queue.lock:
                    group = queue.pending[: self.batch_limit]
                    del queue.pending[: self.batch_limit]
                    if not group:
                        queue.draining = False
                        return
                self._sweep(group)
        except BaseException:
            # Leadership must not die with requests parked: fail
            # whatever is still queued and reopen the queue.
            with queue.lock:
                orphans, queue.pending = queue.pending, []
                queue.draining = False
            for request in orphans:
                request.error = RuntimeError(
                    "batch leader failed before this request ran"
                )
                request.event.set()
            raise

    def _sweep(self, group: list[_StepRequest]) -> None:
        """Execute one coalesced group; each request resolves its future."""
        with self._lock:
            self._sweeps += 1
            if len(group) > 1:
                self._coalesced += len(group)
            self._largest_sweep = max(self._largest_sweep, len(group))
        _SWEEPS.inc()
        _GROUP_SIZE.observe(float(len(group)))
        with obs.span("manager:sweep", group=len(group)):
            for request in group:
                try:
                    request.result = self._execute(
                        request.session, request.rounds, request.until_done
                    )
                except BaseException as exc:
                    request.error = exc
                finally:
                    request.event.set()

    def status(self, session_id: str) -> dict:
        """The session's current (possibly terminal) status.

        Read-only: polling does not count as client activity (and does
        not lift a restored session's eviction grace period) — the
        restore handler itself replies with a status.
        """
        session = self._get(session_id)
        with session.lock:
            return self._summary(session)

    def _touch(self, session: _Session) -> None:
        """Record client activity (and lift any restore grace period)."""
        session.last_active = self._clock()
        session.pending_restore = False

    def outcome(self, session_id: str) -> BargainOutcome | None:
        """The rich outcome object (embedded callers; ``None`` if live)."""
        session = self._get(session_id)
        with session.lock:
            return session.state.outcome

    def close(self, session_id: str) -> bool:
        """Drop a session; ``False`` if it was not resident."""
        with self._lock:
            existed = self._sessions.pop(session_id, None) is not None
            if existed:
                self._closed += 1
            return existed

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, session_id: str) -> dict:
        """A self-contained snapshot of one session, shippable as JSON.

        The payload carries the session's full :class:`SessionSpec`
        (with the market inlined as a spec dict, so another process can
        rebuild the same market), the canonical
        :meth:`~repro.market.engine.EngineState.to_dict` state, and the
        state's content digest — which :meth:`restore` verifies after
        replaying, guaranteeing the resumed session's remaining trace
        is bit-identical to the source's.
        """
        session = self._get(session_id)
        with session.lock:
            spec_dict = session.spec.to_dict()
            if isinstance(spec_dict["market"], str):
                market_spec = self.pool.spec_dict(spec_dict["market"])
                if market_spec is None:
                    raise ValueError(
                        f"session {session_id!r} runs on a hand-injected "
                        f"market ({spec_dict['market']!r}) with no spec; "
                        f"its checkpoint cannot be restored elsewhere"
                    )
                spec_dict["market"] = market_spec
            state = session.state
            return {
                "version": 1,
                "session": session.id,
                "market": session.market_digest,
                "spec": spec_dict,
                "steps": session.steps,
                "state": state.to_dict(),
                "digest": state.digest(),
            }

    def restore(self, payload: dict, *, session_id: str | None = None) -> str:
        """Resume a checkpointed session (possibly from another process).

        Strategies keep private learning state the checkpoint does not
        carry, so restore *replays*: a fresh engine is built from the
        checkpoint's spec (identical seeded RNG streams) and stepped
        ``round_number`` times — bit-identical to the original game's
        prefix — then the replayed state is verified against the
        checkpoint digest.  A mismatch (corrupt payload, drifted market,
        wrong code version) raises ``ValueError`` rather than silently
        resuming a different game.

        The restored session keeps a grace period: it is exempt from
        idle eviction until a client first touches it.
        """
        require(isinstance(payload, dict), "checkpoint payload must be a dict")
        require(payload.get("version") == 1,
                f"unsupported checkpoint version {payload.get('version')!r}")
        target = EngineState.from_dict(payload["state"])
        expected = target.digest()
        claimed = payload.get("digest")
        if claimed is not None and claimed != expected:
            raise ValueError(
                f"checkpoint digest mismatch: payload claims {claimed!r} "
                f"but its state serialises to {expected!r}"
            )
        spec = SessionSpec.from_dict(payload["spec"])
        digest, engine = self._build_engine(spec)
        state = engine.start()
        for _ in range(target.round_number):
            if state.done:
                break
            state = engine.step(state)
        if state.digest() != expected:
            raise ValueError(
                "checkpoint does not replay: the rebuilt engine's round "
                f"{target.round_number} state digests to {state.digest()!r}, "
                f"checkpoint has {expected!r} (corrupt payload, or the "
                "market/strategy code differs from the checkpointing process)"
            )
        return self._install(
            spec,
            digest,
            engine,
            state,
            session_id=session_id,
            steps=int(payload.get("steps", target.round_number)),
            pending_restore=True,
        )

    # ------------------------------------------------------------------
    # Eviction and accounting
    # ------------------------------------------------------------------
    def evict_idle(self, now: float | None = None) -> list[str]:
        """Evict sessions idle longer than ``idle_ttl``; returns their ids."""
        with self._lock:
            return self._evict_locked(self._clock() if now is None else now)

    def _evict_locked(self, now: float) -> list[str]:
        if self.idle_ttl is None:
            return []
        stale = [
            sid
            for sid, session in self._sessions.items()
            if now - session.last_active > self.idle_ttl
            and not session.pending_restore
        ]
        for sid in stale:
            del self._sessions[sid]
        self._evicted += len(stale)
        return stale

    def _tally(self, session: _Session) -> None:
        """Count a session's outcome exactly once, on termination.

        Called under the session's own lock; the shared counters need
        the manager lock too (concurrent sessions terminate in
        parallel).  Safe to nest: nothing acquires a session lock while
        holding the manager lock.
        """
        if session.state.done and not session.counted:
            outcome = session.state.outcome
            with self._lock:
                if outcome is not None and outcome.status in self._outcomes:
                    self._outcomes[outcome.status] += 1
            session.counted = True

    def _summary(self, session: _Session) -> dict:
        state = session.state
        payload = {
            "session": session.id,
            "market": session.market_digest,
            "round": state.round_number,
            "done": state.done,
            "quote": _quote_dict(state.quote),
        }
        if state.done and state.outcome is not None:
            payload["outcome"] = self._outcome_payload(session)
        return payload

    def _outcome_payload(self, session: _Session) -> dict:
        """The wire outcome dict, secure-settled when the spec asks.

        Plain sessions keep the exact seed payload shape byte for
        byte.  Secure sessions overlay ``payment``/``net_profit`` with
        the batched Paillier settlement (value-identical to the serial
        §3.6 protocol) and carry a ``secure: true`` marker.  The engine
        state itself is never touched, so checkpoints replay and
        digest-verify exactly as for plain sessions.
        """
        outcome = session.state.outcome
        payload = _outcome_dict(outcome)
        if not session.spec.secure:
            return payload
        if session.secure_outcome is None:
            secure = dict(payload)
            secure["secure"] = True
            if outcome.accepted and outcome.quote is not None:
                from repro.security.batch import settlement_for

                settlement = settlement_for(
                    session.spec.seed, session.spec.key_bits
                )
                [payment] = settlement.settle(
                    [float(outcome.delta_g)], [outcome.quote]
                )
                secure["payment"] = float(payment)
                secure["net_profit"] = float(
                    session.engine.utility_rate * float(outcome.delta_g)
                    - payment
                )
            session.secure_outcome = secure
        return dict(session.secure_outcome)

    def session_ids(self) -> list[str]:
        """Ids of every resident session."""
        with self._lock:
            return list(self._sessions)

    def report(self) -> dict:
        """Operator view: pooled markets, session counts, outcome tallies."""
        with self._lock:
            active = sum(
                1 for s in self._sessions.values() if not s.state.done
            )
            return {
                "markets": self.pool.markets(),
                "sessions": {
                    "resident": len(self._sessions),
                    "active": active,
                    "opened": self._opened,
                    "closed": self._closed,
                    "evicted": self._evicted,
                },
                "outcomes": dict(self._outcomes),
                "batching": {
                    "window": self.coalesce_window,
                    "sweeps": self._sweeps,
                    "coalesced": self._coalesced,
                    "largest_sweep": self._largest_sweep,
                },
            }
