"""The versioned ``/v1`` wire protocol, independent of any transport.

Every front door of the marketplace — the stdlib HTTP server
(:mod:`repro.service.server`), the in-process
:class:`~repro.client.local.LocalTransport`, and the generated wire
reference (``docs/API.md``) — dispatches through the one route table
defined here.  A route is data: method, path template, handler, success
status, and the request/response documentation that
:mod:`repro.service.docs` renders, so the served protocol and its
documentation cannot drift apart.

Protocol invariants (the contract the client SDK builds on):

* every response body is JSON; errors are a single typed envelope
  ``{"error": {"code": <slug>, "message": <human>, "detail": <extra>}}``
  with correct status semantics — 400 for malformed bodies/specs, 404
  for unknown session/job ids (on *every* method), 405 for a known
  path with the wrong method, 409 for state conflicts, 429 for
  capacity, 5xx for handler bugs;
* streaming routes (``GET /v1/jobs/{job_id}/events``) yield JSON-lines
  (one object per line) instead of a single document;
* legacy unversioned paths are deprecated, not silently aliased:
  :func:`legacy_location` maps them to their ``/v1`` home so transports
  can answer 301 (GET) / 410 (anything else) with a pointer.

:class:`JobService` also lives here: background execution of durable
simulation jobs is part of the service core, not of the HTTP glue.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro import obs
from repro.service.manager import (
    SessionConflictError,
    SessionLimitError,
    SessionManager,
)
from repro.service.specs import MarketSpec, SessionSpec, SimulationSpec
from repro.utils.canonical import json_safe

__all__ = [
    "ApiError",
    "ApiReply",
    "ERROR_CODES",
    "JobService",
    "METRICS_CONTENT_TYPE",
    "ROUTES",
    "Route",
    "ServiceContext",
    "dispatch",
    "legacy_location",
    "service_capacity",
    "service_load",
]

API_VERSION = "v1"

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Per-route request accounting, recorded at the dispatch chokepoint so
#: every transport (threaded HTTP, asyncio HTTP, LocalTransport) feeds
#: the same families.  The route label is the matched *template*
#: (`/v1/sessions/{session_id}`), never the raw path, so cardinality
#: stays bounded.
_REQUESTS = obs.REGISTRY.counter(
    "repro_requests_total",
    "Requests dispatched through the /v1 route table.",
    ("method", "route", "status"),
)
_REQUEST_LATENCY = obs.REGISTRY.histogram(
    "repro_request_duration_seconds",
    "Dispatch latency per route (monotonic, seconds).",
    ("method", "route"),
)

#: Job chunks currently executing in this process — fed by the worker
#: protocol (`POST /v1/chunks`), the fleet agent's pullers, and read
#: back by ``GET /v1/healthz``'s ``load`` field, so heartbeats and
#: external probes report the same number by construction.
_RUNNING_CHUNKS = obs.REGISTRY.gauge(
    "repro_job_chunks_running",
    "Job chunks currently executing in this process.",
)

#: Terminal job statuses: the event stream ends when one is reached.
_TERMINAL = ("done", "failed", "interrupted")

#: Every error code the protocol can put in an envelope, with the HTTP
#: status it rides on — rendered into docs/API.md verbatim.
ERROR_CODES = {
    "invalid_request": (400, "malformed JSON body, unknown spec field, or a "
                             "value that fails spec validation"),
    "not_found": (404, "unknown session id, job id, or route (uniform "
                       "across GET/POST/PUT/DELETE)"),
    "method_not_allowed": (405, "the path exists but not for this method"),
    "conflict": (409, "state conflict, e.g. restoring a checkpoint under a "
                      "session id that is already resident"),
    "gone": (410, "a legacy unversioned route was called with a "
                  "non-GET method; the detail names the /v1 home"),
    "length_required": (411, "the request carries a body without a valid "
                             "Content-Length (chunked uploads are not "
                             "accepted)"),
    "payload_too_large": (413, "the declared Content-Length exceeds the "
                               "server's body cap"),
    "capacity": (429, "the resident-session limit is reached; close or "
                      "evict sessions first"),
    "internal": (500, "unexpected server-side failure (a bug; the message "
                      "carries the exception)"),
    "moved": (301, "a legacy unversioned route was fetched with GET; the "
                   "detail and Location header name the /v1 home"),
}


class ApiError(Exception):
    """A protocol-level error that serialises to the typed envelope."""

    def __init__(self, status: int, code: str, message: str,
                 detail: object = None):
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.detail = detail

    def envelope(self) -> dict:
        return error_envelope(self.code, self.message, self.detail)


def error_envelope(code: str, message: str, detail: object = None) -> dict:
    """The single error shape every non-2xx response carries."""
    return {"error": {"code": code, "message": message, "detail": detail}}


@dataclass(frozen=True)
class ApiReply:
    """One dispatched response: payload (or line iterator), status, headers."""

    payload: object
    status: int = 200
    headers: dict = field(default_factory=dict)
    streaming: bool = False


@dataclass
class ServiceContext:
    """Everything a route handler may touch: the broker and the jobs."""

    manager: SessionManager
    jobs: "JobService"


# ----------------------------------------------------------------------
# Background job execution (durable store + sharded executor)
# ----------------------------------------------------------------------
class JobService:
    """Background execution of simulation jobs behind the service API.

    Jobs are durable (the :class:`~repro.jobs.store.JobStore`) and run
    on daemon threads over the sharded executor; submitting the same
    spec twice attaches to the standing job instead of duplicating it.
    ``drain()`` is the graceful-shutdown hook: no further chunks are
    dispatched, in-flight chunks flush to the store, and interrupted
    jobs resume later via ``repro jobs resume`` (or ``POST
    /v1/jobs/{job_id}/resume``).
    """

    def __init__(self, store=None, *, shards: int = 2,
                 lease_ttl: float = 60.0, heartbeat_ttl: float = 15.0):
        self._store = store
        self.shards = shards
        self.lease_ttl = float(lease_ttl)
        self.heartbeat_ttl = float(heartbeat_ttl)
        self.stop_event = threading.Event()
        self._threads: dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        # Lazy-init guard for `store` only — deliberately NOT self._lock,
        # so the property stays safe to call from code holding the
        # service lock (every handler touches self._lock).
        self._store_lock = threading.Lock()
        self._fleet = None
        self._fleet_lock = threading.Lock()

    @property
    def store(self):
        with self._store_lock:
            if self._store is None:
                from repro.jobs import JobStore, default_store_path

                self._store = JobStore(default_store_path())
            return self._store

    @property
    def fleet(self):
        """The lazily-built fleet manager over this service's store."""
        store = self.store  # resolve outside _fleet_lock (own lock)
        with self._fleet_lock:
            if self._fleet is None:
                # Import via the package, never a submodule: concurrent
                # handler threads otherwise lock a child module while
                # the package __init__ (held by a sibling thread) waits
                # for it — CPython breaks that tie by letting one thread
                # see a partially initialized module.
                from repro.fleet import FleetManager

                self._fleet = FleetManager(
                    store,
                    lease_ttl=self.lease_ttl,
                    heartbeat_ttl=self.heartbeat_ttl,
                )
            return self._fleet

    # ------------------------------------------------------------------
    def _executor(self, shards: int | None = None, *, fleet: bool = False):
        if fleet:
            from repro.fleet import FleetExecutor  # package: see `fleet`

            return FleetExecutor(
                self.store, fleet=self.fleet, stop_event=self.stop_event
            )
        from repro.jobs import ShardedExecutor

        if shards is None:
            shards = self.shards
        return ShardedExecutor(
            self.store, shards=int(shards), stop_event=self.stop_event
        )

    def submit(self, payload: dict) -> dict:
        """Record the job and (re)start its background execution."""
        body = dict(payload)
        chunks = body.pop("chunks", None)
        # Explicit None check: shards=0 is a valid request ("all cores")
        # and must not fall back to the server default.
        shards = body.pop("shards", None)
        # fleet=true runs the job through the lease queue: registered
        # workers pull its chunks instead of this process forking shards.
        fleet = bool(body.pop("fleet", False))
        spec = SimulationSpec.from_dict(body)
        executor = self._executor(shards, fleet=fleet)
        record = executor.submit(spec, chunks=chunks)
        started = self._start(record.job_id, executor)
        reply = self.status(record.job_id)
        reply["started"] = started
        return reply

    def resume(self, job_id: str, *, shards: int | None = None,
               fleet: bool = False) -> dict:
        """Restart a recorded job's pending chunks (no-op when done)."""
        self.store.get(job_id)  # KeyError -> 404
        started = self._start(job_id, self._executor(shards, fleet=fleet))
        reply = self.status(job_id)
        reply["started"] = started
        return reply

    def _start(self, job_id: str, executor) -> bool:
        def work() -> None:
            try:
                executor.run(job_id)
            except Exception:  # recorded as `failed` in the store
                pass

        # Check-and-register under one lock acquisition: two concurrent
        # submits of the same (content-addressed) job must start exactly
        # one worker thread, not race past each other's liveness check.
        store = self.store
        with self._lock:
            thread = self._threads.get(job_id)
            if thread is not None and thread.is_alive():
                return False
            if store.get(job_id).finished or self.stop_event.is_set():
                return False
            thread = threading.Thread(
                target=work, name=f"job-{job_id}", daemon=True
            )
            self._threads[job_id] = thread
        thread.start()
        return True

    # ------------------------------------------------------------------
    def status(self, job_id: str) -> dict:
        """One job's progress (plus its report once finished)."""
        record = self.store.get(job_id)  # KeyError -> 404
        payload = record.progress()
        if record.report is not None:
            payload["report"] = json_safe(record.report)
        return payload

    def jobs(self) -> list[dict]:
        return [record.progress() for record in self.store.jobs()]

    def page(self, *, limit: int = 100, after: str | None = None) -> dict:
        """One page of job listings, ordered by job id (deterministic).

        The cursor protocol behind ``GET /v1/jobs?limit=&after=``:
        ``next`` carries the cursor for the following page, or ``None``
        on the last one.  O(page), not O(store) — the store pages on
        its primary key.
        """
        records = self.store.list_jobs(limit=limit, after=after)
        next_cursor = records[-1].job_id if len(records) == limit else None
        return {
            "jobs": [record.progress() for record in records],
            "count": len(records),
            "next": next_cursor,
        }

    def active_jobs(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads.values() if t.is_alive())

    def drain(self, timeout: float = 30.0) -> None:
        """Stop dispatching chunks and wait for in-flight ones to flush."""
        self.stop_event.set()
        with self._lock:
            threads = list(self._threads.values())
        deadline = time.monotonic() + timeout
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))


# ----------------------------------------------------------------------
# Query-parameter coercion (everything arrives as strings)
# ----------------------------------------------------------------------
def _int_query(query: dict, name: str, default: int,
               lo: int | None = None, hi: int | None = None) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ApiError(400, "invalid_request",
                       f"query parameter {name!r} must be an int, "
                       f"got {raw!r}") from None
    if (lo is not None and value < lo) or (hi is not None and value > hi):
        raise ApiError(400, "invalid_request",
                       f"query parameter {name!r} must be in "
                       f"[{lo}, {hi}], got {value}")
    return value


def _float_query(query: dict, name: str, default: float) -> float:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except (TypeError, ValueError):
        raise ApiError(400, "invalid_request",
                       f"query parameter {name!r} must be a number, "
                       f"got {raw!r}") from None


# ----------------------------------------------------------------------
# Route handlers: (ctx, params, body, query) -> payload
# ----------------------------------------------------------------------
def _get_health(ctx, params, body, query):
    return {"ok": True, "version": API_VERSION}


def service_load(ctx: "ServiceContext", *, report: dict | None = None) -> dict:
    """This process's current load — the one shape heartbeats and
    ``GET /v1/healthz`` probes share, so a fleet coordinator and an
    external monitor always agree on what "busy" means."""
    if report is None:
        report = ctx.manager.report()
    return {
        "sessions": int(report["sessions"]["active"]),
        "chunks": int(_RUNNING_CHUNKS.value()),
    }


def service_capacity(ctx: "ServiceContext") -> dict:
    """The static counterpart of :func:`service_load`."""
    return {
        "sessions": int(ctx.manager.max_sessions),
        "chunks": int(ctx.jobs.shards),
    }


def _get_healthz(ctx, params, body, query):
    import os

    report = ctx.manager.report()
    return {
        "ok": True,
        "version": API_VERSION,
        "pid": os.getpid(),
        "draining": ctx.jobs.stop_event.is_set(),
        "sessions": report["sessions"],
        "markets": len(report["markets"]),
        "active_jobs": ctx.jobs.active_jobs(),
        "load": service_load(ctx, report=report),
        "capacity": service_capacity(ctx),
    }


def _get_report(ctx, params, body, query):
    return ctx.manager.report()


def _post_market(ctx, params, body, query):
    spec = MarketSpec.from_dict(body)
    cached = ctx.manager.pool.contains(spec)
    market = ctx.manager.market(spec)
    build_report = None if cached else getattr(
        market.oracle, "build_report", None
    )
    return {
        "market": spec.digest(),
        "name": market.name,
        "n_bundles": len(market.oracle),
        "target_gain": (
            float(market.config.target_gain)
            if market.config.target_gain is not None
            else None
        ),
        "cached": cached,
        "build_report": (
            build_report.summary() if build_report is not None else None
        ),
    }


def _post_session(ctx, params, body, query):
    spec = SessionSpec.from_dict(body)
    session_id = ctx.manager.open_session(spec)
    return ctx.manager.status(session_id)


def _get_session(ctx, params, body, query):
    return ctx.manager.status(params["session_id"])


def _post_step(ctx, params, body, query):
    session_id = params["session_id"]
    if body.get("until_done"):
        return ctx.manager.run(session_id)
    rounds = body.get("rounds", 1)
    if not isinstance(rounds, int) or rounds < 1:
        raise ApiError(400, "invalid_request", "rounds must be an int >= 1")
    return ctx.manager.step(session_id, rounds=rounds)


def _get_state(ctx, params, body, query):
    return ctx.manager.checkpoint(params["session_id"])


def _put_state(ctx, params, body, query):
    restored = ctx.manager.restore(body, session_id=params["session_id"])
    return ctx.manager.status(restored)


def _delete_session(ctx, params, body, query):
    session_id = params["session_id"]
    if not ctx.manager.close(session_id):
        raise ApiError(404, "not_found",
                       f"unknown session {session_id!r} (closed, evicted, "
                       f"or never opened)")
    return {"closed": True, "session": session_id}


def _post_simulation(ctx, params, body, query):
    return ctx.jobs.submit(body)


def _get_jobs(ctx, params, body, query):
    limit = _int_query(query, "limit", 100, 1, 1000)
    return ctx.jobs.page(limit=limit, after=query.get("after"))


def _get_job(ctx, params, body, query):
    return ctx.jobs.status(params["job_id"])


def _post_job_resume(ctx, params, body, query):
    shards = body.get("shards")
    fleet = bool(body.get("fleet", False))
    return ctx.jobs.resume(params["job_id"], shards=shards, fleet=fleet)


def _get_job_events(ctx, params, body, query) -> Iterator[dict]:
    """JSON-lines chunk-completion progress, ending on a terminal status.

    The existence check runs eagerly (a 404 must be a 404, not a
    stream); the generator then polls the durable store and emits one
    ``progress`` line per observed change, a final ``end`` line when
    the job reaches a terminal status, or a ``timeout`` line when the
    client's deadline passes first (the job keeps running).
    """
    job_id = params["job_id"]
    store = ctx.jobs.store
    store.get(job_id)  # KeyError -> 404, before any line is streamed
    poll = min(max(_float_query(query, "poll", 0.1), 0.01), 5.0)
    timeout = min(max(_float_query(query, "timeout", 600.0), 0.0), 3600.0)

    def events() -> Iterator[dict]:
        deadline = time.monotonic() + timeout
        last: tuple | None = None
        while True:
            record = store.get(job_id)
            snapshot = (record.status, record.done_chunks)
            if snapshot != last:
                last = snapshot
                yield {
                    "event": "progress",
                    "job": job_id,
                    "status": record.status,
                    "chunks": record.n_chunks,
                    "chunks_done": record.done_chunks,
                }
            if record.status in _TERMINAL:
                payload = {
                    "event": "end",
                    "job": job_id,
                    "status": record.status,
                }
                if record.digest is not None:
                    payload["digest"] = record.digest
                if record.error is not None:
                    payload["error"] = record.error
                yield payload
                return
            if time.monotonic() >= deadline:
                yield {"event": "timeout", "job": job_id,
                       "status": record.status}
                return
            time.sleep(poll)

    return events()


def _get_metrics(ctx, params, body, query):
    """Prometheus text exposition of the process-global registry.

    The one non-JSON route in the table: the handler returns a complete
    :class:`ApiReply` whose payload is the rendered text and whose
    ``Content-Type`` both servers (and ``LocalTransport``) honour by
    writing the string verbatim.
    """
    _ensure_instrumented_imports()
    _bridge_report_gauges(ctx)
    return ApiReply(
        obs.REGISTRY.render_prometheus(),
        200,
        headers={"Content-Type": METRICS_CONTENT_TYPE},
    )


def _ensure_instrumented_imports() -> None:
    """Import every instrumented module so its families are registered.

    Metric families register at module import time; a scrape must
    expose the full catalogue (with empty series) even on a process
    that has not yet touched every code path — dashboards key on
    family names existing before traffic does.
    """
    import repro.client.http  # noqa: F401
    import repro.fleet  # noqa: F401  (package: its __init__ pulls agent+manager)
    import repro.jobs.executor  # noqa: F401
    import repro.jobs.remote  # noqa: F401
    import repro.oracle_factory.factory  # noqa: F401
    import repro.security.batch  # noqa: F401
    import repro.simulate.pool  # noqa: F401


def _bridge_report_gauges(ctx: "ServiceContext") -> None:
    """Refresh registry gauges from the manager's counters at scrape time."""
    report = ctx.manager.report()
    sessions = report["sessions"]
    gauge = obs.REGISTRY.gauge(
        "repro_sessions",
        "Session pool occupancy by state (resident/active).",
        ("state",),
    )
    gauge.set(sessions["resident"], state="resident")
    gauge.set(sessions["active"], state="active")
    lifecycle = obs.REGISTRY.counter(
        "repro_sessions_lifecycle_total",
        "Session lifecycle events since process start.",
        ("event",),
    )
    for event in ("opened", "closed", "evicted"):
        # Counters are monotonic: bridge by topping up to the manager's
        # authoritative tally (scrapes may interleave with lifecycle).
        delta = sessions[event] - lifecycle.value(event=event)
        if delta > 0:
            lifecycle.inc(delta, event=event)
    obs.REGISTRY.gauge(
        "repro_markets_pooled", "Markets resident in the process pool."
    ).set(len(report["markets"]))


def _get_traces(ctx, params, body, query) -> Iterator[dict]:
    """Finished spans as JSON lines, paginated by record sequence."""
    offset = _int_query(query, "offset", 0, 0)
    limit = _int_query(query, "limit", 1000, 1, 10000)
    records = obs.TRACER.spans(offset=offset, limit=limit)

    def lines() -> Iterator[dict]:
        yield from records

    return lines()


def _post_chunk(ctx, params, body, query):
    """Execute one job chunk in this process — the worker protocol.

    A worker server is just ``repro serve``: the
    :class:`~repro.jobs.remote.RemoteShardExecutor` POSTs the job's
    canonical ``(kind, spec, start, stop)`` here and records the reply
    in its own durable store, exactly as a process-pool shard would.
    """
    from repro.jobs.executor import CHUNK_RUNNERS

    kind = body.get("kind")
    if kind not in CHUNK_RUNNERS:
        raise ApiError(400, "invalid_request",
                       f"unknown chunk kind {kind!r}; "
                       f"known: {sorted(CHUNK_RUNNERS)}")
    spec = body.get("spec")
    if not isinstance(spec, dict):
        raise ApiError(400, "invalid_request", "spec must be a JSON object")
    start, stop = body.get("start"), body.get("stop")
    if not (isinstance(start, int) and isinstance(stop, int)
            and 0 <= start < stop):
        raise ApiError(400, "invalid_request",
                       "start/stop must be ints with 0 <= start < stop")
    # The chunk span parents under the dispatch span, which itself
    # parents under the coordinator's traceparent — so a remote sweep's
    # chunk spans all carry the coordinator's root trace id.
    _RUNNING_CHUNKS.add(1)
    try:
        with obs.span(f"chunk:{kind}", kind=kind, start=start, stop=stop):
            return CHUNK_RUNNERS[kind](spec, start, stop)
    finally:
        _RUNNING_CHUNKS.add(-1)


# ----------------------------------------------------------------------
# The fleet protocol: registration, heartbeats, the lease queue
# ----------------------------------------------------------------------
def _post_worker(ctx, params, body, query):
    url = body.get("url")
    if not isinstance(url, str) or not url:
        raise ApiError(400, "invalid_request",
                       "url must be a non-empty string (the worker's "
                       "advertised base URL — its fleet identity)")
    capacity = body.get("capacity", 1)
    if not isinstance(capacity, int) or capacity < 1:
        raise ApiError(400, "invalid_request", "capacity must be an int >= 1")
    labels = body.get("labels") or {}
    if not isinstance(labels, dict):
        raise ApiError(400, "invalid_request", "labels must be a JSON object")
    return ctx.jobs.fleet.register(url, capacity=capacity, labels=labels)


def _post_worker_heartbeat(ctx, params, body, query):
    load = body.get("load")
    if load is not None and not isinstance(load, dict):
        raise ApiError(400, "invalid_request", "load must be a JSON object")
    return ctx.jobs.fleet.heartbeat(params["worker_id"], load)


def _post_worker_lease(ctx, params, body, query):
    ctx.jobs.fleet.store.worker(params["worker_id"])  # KeyError -> 404
    return ctx.jobs.fleet.lease(params["worker_id"])


def _post_worker_complete(ctx, params, body, query):
    worker_id = params["worker_id"]
    ctx.jobs.fleet.store.worker(worker_id)  # KeyError -> 404
    job = body.get("job")
    chunk = body.get("chunk")
    if not isinstance(job, str) or not isinstance(chunk, int):
        raise ApiError(400, "invalid_request",
                       "job (str) and chunk (int) are required")
    error = body.get("error")
    if error is not None:
        return ctx.jobs.fleet.fail(worker_id, job, chunk, str(error))
    result = body.get("result")
    if not isinstance(result, dict):
        raise ApiError(400, "invalid_request",
                       "result must be the chunk's payload object "
                       "(or pass error to report a failure)")
    elapsed = body.get("elapsed", 0.0)
    if not isinstance(elapsed, (int, float)):
        raise ApiError(400, "invalid_request", "elapsed must be a number")
    return ctx.jobs.fleet.complete(worker_id, job, chunk, result,
                                   elapsed=float(elapsed))


def _delete_worker(ctx, params, body, query):
    reply = ctx.jobs.fleet.deregister(params["worker_id"])
    if not reply["left"]:
        raise ApiError(404, "not_found",
                       f"unknown worker {params['worker_id']!r}")
    return reply


def _get_fleet(ctx, params, body, query):
    return ctx.jobs.fleet.status()


# ----------------------------------------------------------------------
# The route table (the protocol, as data)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Route:
    """One wire endpoint: dispatch target and documentation source."""

    method: str
    path: str
    handler: Callable
    status: int
    summary: str
    request: dict | None = None   # body field -> description
    query: dict | None = None     # query param -> description
    response: str = ""
    streaming: bool = False

    @property
    def pattern(self) -> re.Pattern:
        return _compile(self.path)


def _compile(path: str) -> re.Pattern:
    return re.compile(
        "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", path) + "$"
    )


ROUTES: tuple[Route, ...] = (
    Route("GET", "/v1/health", _get_health, 200,
          "Liveness probe.",
          response="`{ok, version}`."),
    Route("GET", "/v1/healthz", _get_healthz, 200,
          "Liveness plus session/job/drain status, current load, and "
          "static capacity.",
          response="`{ok, version, pid, draining, sessions, markets, "
                   "active_jobs, load, capacity}` — `load` is the same "
                   "`{sessions, chunks}` shape fleet heartbeats carry; "
                   "`capacity` its static counterpart."),
    Route("GET", "/v1/report", _get_report, 200,
          "Operator report: pooled markets, session counts, outcome "
          "tallies.",
          response="`{markets, sessions, outcomes}`."),
    Route("POST", "/v1/markets", _post_market, 200,
          "Build (or warm) a market from a `MarketSpec`.",
          request={"<MarketSpec>": "the canonical `MarketSpec` dict; see "
                                   "`repro.service.specs.MarketSpec.to_dict`"},
          response="`{market, name, n_bundles, target_gain, cached, "
                   "build_report}` — `market` is the spec digest other "
                   "calls may reference; `build_report` is the oracle "
                   "build summary when this call built it."),
    Route("POST", "/v1/sessions", _post_session, 201,
          "Open a bargaining session from a `SessionSpec`.",
          request={"<SessionSpec>": "the canonical `SessionSpec` dict; "
                                    "`market` is a full `MarketSpec` dict "
                                    "or a pool digest; `secure`/`key_bits` "
                                    "settle the outcome through the batched "
                                    "Paillier path"},
          response="The session status: `{session, market, round, done, "
                   "quote}`."),
    Route("GET", "/v1/sessions/{session_id}", _get_session, 200,
          "One session's current (possibly terminal) status.",
          response="`{session, market, round, done, quote[, outcome]}`."),
    Route("POST", "/v1/sessions/{session_id}/step", _post_step, 200,
          "Advance a session; stepping a terminal session is a no-op.",
          request={"rounds": "int >= 1 (default 1)",
                   "until_done": "bool: step to termination instead"},
          response="The session status after stepping."),
    Route("GET", "/v1/sessions/{session_id}/state", _get_state, 200,
          "Checkpoint: a self-contained, shippable session snapshot.",
          response="`{version, session, market, spec, steps, state, "
                   "digest}`."),
    Route("PUT", "/v1/sessions/{session_id}/state", _put_state, 201,
          "Restore a checkpoint under `session_id` (replay + digest "
          "verification).",
          request={"<checkpoint>": "a payload from `GET "
                                   "/v1/sessions/{session_id}/state`"},
          response="The restored session's status."),
    Route("DELETE", "/v1/sessions/{session_id}", _delete_session, 200,
          "Close a session (404 if it is not resident).",
          response="`{closed, session}`."),
    Route("POST", "/v1/simulations", _post_simulation, 202,
          "Submit a durable sharded simulation job (idempotent per "
          "content).",
          request={"<SimulationSpec>": "the canonical `SimulationSpec` dict "
                                       "(`secure`/`key_bits` switch accepted "
                                       "sessions to batched Paillier "
                                       "settlement)",
                   "shards": "worker shards (0 = all cores; default: "
                             "server setting)",
                   "chunks": "progress granularity (default: up to 16)",
                   "fleet": "bool: run through the lease queue — joined "
                            "fleet workers pull the chunks instead of "
                            "this process forking shards"},
          response="The job's progress: `{job, kind, status, chunks, "
                   "chunks_done, started[, digest, report]}`."),
    Route("GET", "/v1/jobs", _get_jobs, 200,
          "Page through recorded jobs in deterministic job-id order.",
          query={"limit": "page size, 1..1000 (default 100)",
                 "after": "cursor: the `next` value of the previous page"},
          response="`{jobs, count, next}` — `next` is `null` on the "
                   "last page."),
    Route("GET", "/v1/jobs/{job_id}", _get_job, 200,
          "One job's progress, plus its report once finished.",
          response="`{job, kind, status, chunks, chunks_done[, digest, "
                   "report, error]}`."),
    Route("POST", "/v1/jobs/{job_id}/resume", _post_job_resume, 202,
          "Restart a recorded job's pending chunks (no-op when done).",
          request={"shards": "worker shards for this resume (optional)",
                   "fleet": "bool: resume through the fleet lease queue "
                            "instead of local shards"},
          response="The job's progress with `started`."),
    Route("GET", "/v1/jobs/{job_id}/events", _get_job_events, 200,
          "Stream chunk-completion progress as JSON lines until the job "
          "reaches a terminal status.",
          query={"poll": "store poll interval in seconds (default 0.1)",
                 "timeout": "stream deadline in seconds (default 600)"},
          response="JSON lines: `{event: progress|end|timeout, job, "
                   "status, ...}`; `end` carries `digest`/`error`.",
          streaming=True),
    Route("POST", "/v1/chunks", _post_chunk, 200,
          "Execute one job chunk synchronously — the multi-host worker "
          "protocol behind `RemoteShardExecutor`.",
          request={"kind": "job kind (`simulation` or `batch`)",
                   "spec": "the job's canonical spec dict",
                   "start": "chunk start index (inclusive)",
                   "stop": "chunk stop index (exclusive)"},
          response="The chunk result payload, exactly as a process-pool "
                   "shard would record it."),
    Route("POST", "/v1/workers", _post_worker, 201,
          "Register (or re-adopt) a fleet worker by its advertised URL.",
          request={"url": "the worker's advertised base URL — its "
                          "content-addressed fleet identity; registering "
                          "the same URL again is adoption, not duplication",
                   "capacity": "concurrent chunks this worker will run "
                               "(int >= 1, default 1)",
                   "labels": "free-form metadata object echoed by "
                             "`GET /v1/fleet`"},
          response="The worker row plus `{adopted, lease_ttl, "
                   "heartbeat_ttl}` — TTLs the agent should pace itself "
                   "against."),
    Route("POST", "/v1/workers/{worker_id}/heartbeat",
          _post_worker_heartbeat, 200,
          "Record a worker's pulse and current load; 404 asks the worker "
          "to re-register (fresh coordinator store).",
          request={"load": "current load object, same `{sessions, chunks}` "
                           "shape as `GET /v1/healthz`'s `load` (optional)"},
          response="`{worker, status, lag, adopted, heartbeat_ttl}` — "
                   "`adopted` is true when this pulse revived a worker "
                   "the coordinator had marked lost (crash adoption)."),
    Route("POST", "/v1/workers/{worker_id}/lease", _post_worker_lease, 200,
          "Pull one chunk lease from the shared queue (work stealing: "
          "expired leases re-queue and may be granted to other workers).",
          response="`{lease: null}` when the queue is empty, else "
                   "`{lease: {job, chunk, start, stop, kind, spec, "
                   "deadline, ttl, stolen_from}}`."),
    Route("POST", "/v1/workers/{worker_id}/complete",
          _post_worker_complete, 200,
          "Deliver a leased chunk's result — or its failure.",
          request={"job": "the leased job id",
                   "chunk": "the leased chunk index",
                   "result": "the chunk payload (success path)",
                   "elapsed": "chunk wall seconds (optional)",
                   "error": "failure text instead of `result`: fails the "
                            "job, exactly as a local shard exception "
                            "would"},
          response="`{recorded, first, job, chunk}` — `first` is false "
                   "for a duplicate delivery of a stolen chunk "
                   "(harmless: chunks are deterministic)."),
    Route("DELETE", "/v1/workers/{worker_id}", _delete_worker, 200,
          "Gracefully deregister a worker; its active leases re-queue.",
          response="`{worker, left}`."),
    Route("GET", "/v1/fleet", _get_fleet, 200,
          "Operator view of the fleet: workers, active leases, queue "
          "depth (sweeps liveness as a side effect).",
          response="`{workers, leases, queue, lease_ttl, "
                   "heartbeat_ttl}`."),
    Route("GET", "/v1/metrics", _get_metrics, 200,
          "Process metrics in Prometheus text exposition format — the "
          "one non-JSON route.",
          response="`text/plain; version=0.0.4`: request, coalesce, "
                   "cache, job-chunk, session and settlement families "
                   "from the process-global registry."),
    Route("GET", "/v1/traces", _get_traces, 200,
          "Finished trace spans as JSON lines (NDJSON), paginated by "
          "record sequence number.",
          query={"offset": "return spans with `seq` greater than this "
                           "(default 0; pass the last seen `seq`)",
                 "limit": "maximum spans to return, 1..10000 "
                          "(default 1000)"},
          response="JSON lines: `{name, trace_id, span_id, parent_id, "
                   "start, duration, attrs, seq}` per span.",
          streaming=True),
)

_COMPILED = tuple((route, _compile(route.path)) for route in ROUTES)

#: Unversioned route heads served before the /v1 mount; requests to them
#: are answered with a deprecation envelope (301 for GET, 410 otherwise).
_LEGACY_HEADS = frozenset(
    {"health", "healthz", "report", "markets", "sessions", "simulations",
     "jobs"}
)


def legacy_location(path: str) -> str | None:
    """The ``/v1`` home of a legacy unversioned path (else ``None``)."""
    head = path.lstrip("/").split("/", 1)[0]
    if head in _LEGACY_HEADS and not path.startswith("/v1/"):
        return "/v1" + path
    return None


def _match(method: str, path: str) -> tuple[Route, dict]:
    allowed: list[str] = []
    for route, pattern in _COMPILED:
        found = pattern.match(path)
        if not found:
            continue
        if route.method == method:
            return route, found.groupdict()
        allowed.append(route.method)
    if allowed:
        raise ApiError(
            405, "method_not_allowed",
            f"{path} does not accept {method}",
            {"allowed": sorted(set(allowed))},
        )
    raise ApiError(404, "not_found", f"no route {method} {path}")


def dispatch(
    ctx: ServiceContext,
    method: str,
    path: str,
    *,
    body: dict | None = None,
    query: dict | None = None,
) -> ApiReply:
    """Route one request; never raises — errors become envelope replies.

    ``body`` is the parsed JSON object (transports own body-level
    errors: 411/413/invalid JSON); ``query`` maps parameter names to
    their raw string values.

    Dispatch is the transport-independent chokepoint, so telemetry
    lives here: every request opens a span (parented under whatever
    context the transport attached from an incoming ``traceparent``)
    and lands in the per-route request counter and latency histogram,
    labeled by the matched route *template*.
    """
    t0 = time.perf_counter()
    with obs.span("dispatch", method=method) as active:
        reply, route_label = _dispatch_matched(ctx, method, path, body, query)
        active.set(route=route_label, status=reply.status)
    _REQUESTS.inc(method=method, route=route_label, status=reply.status)
    _REQUEST_LATENCY.observe(
        time.perf_counter() - t0, method=method, route=route_label
    )
    return reply


def _dispatch_matched(
    ctx: ServiceContext,
    method: str,
    path: str,
    body: dict | None,
    query: dict | None,
) -> tuple[ApiReply, str]:
    """(reply, route template) for one request; errors become envelopes."""
    route_label = "unmatched"
    try:
        route, params = _match(method, path)
        route_label = route.path
        payload = route.handler(ctx, params, body or {}, query or {})
        if isinstance(payload, ApiReply):
            return payload, route_label
        return ApiReply(payload, route.status, streaming=route.streaming), \
            route_label
    except ApiError as exc:
        return ApiReply(exc.envelope(), exc.status), route_label
    except SessionConflictError as exc:
        return ApiReply(error_envelope("conflict", str(exc)), 409), route_label
    except SessionLimitError as exc:
        return ApiReply(error_envelope("capacity", str(exc)), 429), route_label
    except (ValueError, TypeError) as exc:  # spec/body validation
        # TypeError covers wrong-typed spec fields (e.g. a string
        # n_bundles failing a numeric comparison) — still a 400,
        # not a dropped connection.
        return (
            ApiReply(error_envelope("invalid_request", str(exc)), 400),
            route_label,
        )
    except KeyError as exc:  # unknown session/job
        return (
            ApiReply(error_envelope("not_found", str(exc).strip("'\"")), 404),
            route_label,
        )
    except Exception as exc:  # pragma: no cover - handler bugs
        return (
            ApiReply(
                error_envelope("internal", f"{type(exc).__name__}: {exc}"), 500
            ),
            route_label,
        )
