"""``python -m repro serve --async`` — the ``/v1`` protocol on asyncio.

The thread-per-connection stdlib server (:mod:`repro.service.server`)
tops out where its threads do: a thousand keep-alive clients is a
thousand OS threads contending for the GIL before any bargaining work
runs.  This transport serves the *same* route table
(:func:`repro.service.api.dispatch` — payloads are byte-identical by
construction) from one event loop:

* connections are coroutines — 10k idle keep-alive clients cost one
  loop, not 10k stacks;
* request handlers run on a small bounded thread pool (``workers``),
  so the few threads that do exist spend their GIL slices on engine
  stepping instead of scheduler churn — and a
  :class:`~repro.service.manager.SessionManager` coalesce leader can
  sleep out its micro-batch window without stalling the loop;
* streaming routes (``GET /v1/jobs/{id}/events``) bridge their
  blocking generators through the pool, one chunk at a time;
* the serve loop owns operational duty cycles: a periodic idle-session
  eviction sweep (a quiet server no longer leaks stale sessions until
  the next ``open_session``), and graceful drain — on SIGTERM the
  listener closes, new requests on live connections get ``503`` with
  ``Retry-After`` (the SDK transport retries them transparently),
  in-flight requests finish within ``drain_timeout``, background jobs
  flush to the durable store, and the process exits 0.

``AsyncMarketplaceServer`` is embeddable: ``serve_forever()`` blocks
(signal-handled), ``start_background()`` runs the loop on a daemon
thread and returns the bound address (tests, benchmarks).
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qsl, unquote, urlsplit

from repro import obs
from repro.service.api import (
    JobService,
    ServiceContext,
    dispatch,
    error_envelope,
    legacy_location,
)
from repro.service.manager import SessionManager
from repro.utils.validation import require

__all__ = ["AsyncMarketplaceServer", "run_async_server"]

#: Same request-body cap as the threaded transport (8 MB): an oversized
#: (or lying) Content-Length must not park a reader on a huge body.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Cap on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 301: "Moved Permanently",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 410: "Gone", 411: "Length Required",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}

_SERVER_HEADER = "repro-serve-async/1.0"

#: Routes cheap enough to dispatch on the event loop itself, skipping
#: the executor handoff (~100µs/request under load).  Everything else —
#: market/oracle builds, job submission, streaming, checkpoint restore
#: (replays rounds) — goes through the worker pool.
_INLINE_GET = re.compile(
    r"^/v1/(health|healthz|report|sessions/[^/]+(/state)?)$"
)
_INLINE_STEP = re.compile(r"^/v1/sessions/[^/]+/step$")
_INLINE_DELETE = re.compile(r"^/v1/sessions/[^/]+$")

#: An inline /step may advance at most this many rounds; longer runs
#: (and ``until_done``) would stall every other connection on the loop.
_INLINE_MAX_ROUNDS = 8


class _ProtocolError(Exception):
    """A transport-level request error (411/413/malformed body)."""

    def __init__(self, status: int, code: str, message: str,
                 detail: object = None):
        super().__init__(message)
        self.status = status
        self.envelope = error_envelope(code, message, detail)


class AsyncMarketplaceServer:
    """The ``/v1`` marketplace protocol on one asyncio event loop.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` binds an ephemeral port (tests) —
        the bound address is :attr:`address` once started.
    manager / jobs:
        The service core (defaults mirror the threaded server).
    workers:
        Bounded handler thread pool.  Dispatch runs here, not on the
        loop, because handlers may block (oracle builds, micro-batch
        coalesce windows, event-stream polls).
    eviction_interval:
        Seconds between periodic ``manager.evict_idle()`` sweeps
        (``None`` picks a sensible default from the manager's
        ``idle_ttl``; ``0`` disables the sweeper).
    drain_timeout:
        Grace for in-flight requests and background jobs on shutdown.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        manager: SessionManager | None = None,
        jobs: JobService | None = None,
        workers: int = 8,
        eviction_interval: float | None = None,
        drain_timeout: float = 30.0,
        verbose: bool = False,
    ):
        require(workers >= 1, "workers must be >= 1")
        require(eviction_interval is None or eviction_interval >= 0,
                "eviction_interval must be >= 0")
        self.host = host
        self.port = port
        self.ctx = ServiceContext(
            manager=manager if manager is not None else SessionManager(),
            jobs=jobs if jobs is not None else JobService(),
        )
        self.manager = self.ctx.manager
        self.jobs = self.ctx.jobs
        self.workers = int(workers)
        self.eviction_interval = eviction_interval
        self.drain_timeout = float(drain_timeout)
        self.verbose = verbose
        self.address: tuple[str, int] | None = None
        self.draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-async"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._busy = 0
        self._conn_tasks: set[asyncio.Task] = set()
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self, *, install_signals: bool = True) -> None:
        """Run the loop on the calling thread until stopped/signalled."""
        asyncio.run(self._main(install_signals=install_signals))

    def start_background(self) -> tuple[str, int]:
        """Run the loop on a daemon thread; returns the bound address."""
        require(self._thread is None, "server already started")

        def run() -> None:
            try:
                asyncio.run(self._main(install_signals=False))
            finally:
                self._started.set()  # unblock a waiter even on bind failure
                self._stopped.set()

        self._thread = threading.Thread(
            target=run, name="serve-async", daemon=True
        )
        self._thread.start()
        self._started.wait()
        require(self.address is not None, "async server failed to bind")
        assert self.address is not None
        return self.address

    def shutdown(self, timeout: float = 30.0) -> None:
        """Request a graceful drain from any thread; waits for exit."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # loop tore down between checks
                pass
        self._stopped.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    async def _main(self, *, install_signals: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if install_signals:
            import signal

            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(signum, self._stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        server = await asyncio.start_server(
            self._serve_connection, self.host, self.port,
            limit=MAX_HEADER_BYTES, backlog=1024,
        )
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        evictor = self._start_evictor()
        try:
            async with server:
                await self._stop.wait()
        finally:
            if evictor is not None:
                evictor.cancel()
            await self._drain(server)
            self._executor.shutdown(wait=False)
            self._stopped.set()

    def _start_evictor(self) -> asyncio.Task | None:
        interval = self.eviction_interval
        if interval is None:
            ttl = self.manager.idle_ttl
            interval = min(60.0, ttl / 2.0) if ttl else 0.0
        if not interval:
            return None

        async def sweep() -> None:
            assert self._loop is not None
            while True:
                await asyncio.sleep(interval)
                await self._loop.run_in_executor(
                    self._executor, self.manager.evict_idle
                )

        return asyncio.get_running_loop().create_task(sweep())

    async def _drain(self, server: asyncio.base_events.Server) -> None:
        """Graceful shutdown: refuse new work, flush in-flight work."""
        self.draining = True
        server.close()
        await server.wait_closed()
        deadline = asyncio.get_running_loop().time() + self.drain_timeout
        while self._busy and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.02)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        assert self._loop is not None
        remaining = max(0.5, deadline - asyncio.get_running_loop().time())
        await self._loop.run_in_executor(
            self._executor, self.jobs.drain, remaining
        )

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        try:
            while True:
                keep_alive = await self._serve_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,   # client hung up between requests
            asyncio.CancelledError,        # drain cancelled an idle wait
            ConnectionResetError,
            BrokenPipeError,
            TimeoutError,
        ):
            pass
        except asyncio.LimitOverrunError:
            # Unparseably long request head; nothing sane to reply to.
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Read, dispatch and answer one request; returns keep-alive."""
        head = await reader.readuntil(b"\r\n\r\n")
        self._busy += 1
        try:
            return await self._handle_parsed(reader, writer, head)
        finally:
            self._busy -= 1

    async def _handle_parsed(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        head: bytes,
    ) -> bool:
        try:
            method, target, version, headers = _parse_head(head)
        except ValueError as exc:
            self._write(writer, 400,
                        error_envelope("invalid_request", str(exc)),
                        close=True)
            await writer.drain()
            return False
        keep_alive = _keep_alive(version, headers)

        if self.draining:
            # The listener is closed; surviving keep-alive clients get
            # an honest refusal they can retry elsewhere (or here,
            # after the restart the Retry-After hints at).
            self._write(
                writer, 503,
                error_envelope("draining",
                               "server is draining for shutdown; retry"),
                headers={"Retry-After": "1"}, close=True,
            )
            await writer.drain()
            return False

        parsed = urlsplit(target)
        path = unquote(parsed.path)
        query = dict(parse_qsl(parsed.query))

        home = legacy_location(path)
        if home is not None:
            # Deprecation envelope, exactly as the threaded transport:
            # 301 for GET (clients follow transparently), 410 otherwise.
            if method == "GET":
                self._write(
                    writer, 301,
                    error_envelope(
                        "moved",
                        f"unversioned routes moved under /v1; "
                        f"GET {home} instead",
                        {"location": home},
                    ),
                    headers={"Location": home}, close=True,
                )
            else:
                self._write(
                    writer, 410,
                    error_envelope(
                        "gone",
                        f"unversioned routes were removed; "
                        f"{method} {home} instead",
                        {"location": home},
                    ),
                    close=True,
                )
            await writer.drain()
            return False

        try:
            body = await self._read_body(reader, headers)
        except _ProtocolError as exc:
            # The body was not (fully) consumed; the connection cannot
            # carry another request.
            self._write(writer, exc.status, exc.envelope, close=True)
            await writer.drain()
            return False

        t0 = time.perf_counter()
        remote = obs.from_traceparent(headers.get("traceparent"))

        def run_dispatch():
            # Runs on a worker-pool thread, whose execution context does
            # not inherit the coroutine's contextvars — the remote span
            # context must be re-attached here, inside the callable.
            token = obs.attach(remote) if remote is not None else None
            try:
                return dispatch(self.ctx, method, path, body=body,
                                query=query)
            finally:
                if token is not None:
                    obs.detach(token)

        assert self._loop is not None
        if self._inline_eligible(method, path, body):
            # ``dispatch`` never raises — errors come back as envelope
            # replies — so running it right on the loop is safe, and for
            # these sub-millisecond handlers it saves the executor
            # round-trip that otherwise dominates the request.
            reply = run_dispatch()
        else:
            reply = await self._loop.run_in_executor(
                self._executor, run_dispatch
            )
        obs.log_access(
            method, path, reply.status, time.perf_counter() - t0,
            remote.trace_id if remote is not None else None,
            verbose=self.verbose,
        )
        if reply.streaming:
            await self._write_stream(writer, reply.payload)
            return False  # chunked replies own their connection
        self._write(writer, reply.status, reply.payload,
                    headers=reply.headers, close=not keep_alive)
        await writer.drain()
        return keep_alive

    def _inline_eligible(self, method: str, path: str, body: dict) -> bool:
        """Whether this request may run on the loop instead of the pool.

        Only handlers that cannot block meaningfully qualify: session
        opens against pooled markets, short steps, reads and deletes.
        A ``/step`` stays off the loop whenever it might sleep (a
        coalesce leader parks for the window) or run long
        (``until_done`` / large round counts); market builds, job
        routes, streaming and checkpoint restore always take the pool.
        """
        if method == "GET":
            return _INLINE_GET.match(path) is not None
        if method == "DELETE":
            return _INLINE_DELETE.match(path) is not None
        if method == "POST":
            if path == "/v1/sessions":
                # A digest reference is a pool lookup; an inline market
                # dict may trigger a full market build — pool that.
                return isinstance(body.get("market"), str)
            if _INLINE_STEP.match(path) is not None:
                if self.manager.coalesce_window is not None:
                    return False
                if body.get("until_done"):
                    return False
                rounds = body.get("rounds", 1)
                return (
                    isinstance(rounds, int)
                    and not isinstance(rounds, bool)
                    and 0 < rounds <= _INLINE_MAX_ROUNDS
                )
        return False

    # ------------------------------------------------------------------
    # Body parsing (mirrors the threaded transport's 411/413/400 rules)
    # ------------------------------------------------------------------
    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> dict:
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise _ProtocolError(
                411, "length_required",
                "chunked request bodies are not accepted; send "
                "Content-Length",
            )
        raw_length = headers.get("content-length")
        if raw_length is None:
            return {}
        try:
            length = int(raw_length)
        except ValueError:
            raise _ProtocolError(
                411, "length_required",
                f"Content-Length {raw_length!r} is not an integer",
            ) from None
        if length < 0:
            raise _ProtocolError(
                411, "length_required",
                f"Content-Length must be >= 0, got {length}",
            )
        if length == 0:
            return {}
        if length > MAX_BODY_BYTES:
            raise _ProtocolError(
                413, "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap",
                {"max_bytes": MAX_BODY_BYTES},
            )
        try:
            raw = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise _ProtocolError(
                400, "invalid_request",
                f"request body ended after {len(exc.partial)} of the "
                f"declared {length} bytes",
            ) from None
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _ProtocolError(
                400, "invalid_request",
                f"request body is not valid JSON: {exc}",
            ) from None
        if not isinstance(payload, dict):
            raise _ProtocolError(
                400, "invalid_request", "request body must be a JSON object"
            )
        return payload

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def _write(self, writer: asyncio.StreamWriter, status: int,
               payload: object, *, headers: dict | None = None,
               close: bool = False) -> None:
        extra = dict(headers or {})
        if isinstance(payload, str):
            # Raw-text reply (the /v1/metrics Prometheus exposition):
            # the handler owns the bytes and the content type.
            blob = payload.encode("utf-8")
            content_type = extra.pop("Content-Type",
                                     "text/plain; charset=utf-8")
        else:
            blob = json.dumps(payload).encode("utf-8")
            content_type = extra.pop("Content-Type", "application/json")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Server: {_SERVER_HEADER}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(blob)}",
        ]
        if close:
            head.append("Connection: close")
        for name, value in extra.items():
            head.append(f"{name}: {value}")
        writer.write("\r\n".join(head).encode("utf-8") + b"\r\n\r\n" + blob)

    async def _write_stream(self, writer: asyncio.StreamWriter,
                            lines) -> None:
        """Chunked JSON lines, the blocking generator bridged through
        the worker pool one item at a time."""
        writer.write(
            f"HTTP/1.1 200 {_REASONS[200]}\r\n"
            f"Server: {_SERVER_HEADER}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n".encode("utf-8")
        )
        assert self._loop is not None
        iterator = iter(lines)
        sentinel = object()
        try:
            while True:
                item = await self._loop.run_in_executor(
                    self._executor, next, iterator, sentinel
                )
                if item is sentinel:
                    break
                blob = json.dumps(item).encode("utf-8") + b"\n"
                writer.write(b"%X\r\n%s\r\n" % (len(blob), blob))
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()


def _parse_head(head: bytes) -> tuple[str, str, str, dict[str, str]]:
    """``(method, target, version, lower-cased headers)`` of one request."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise ValueError("request head is not decodable")
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/"):
        raise ValueError(f"malformed HTTP version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


def _keep_alive(version: str, headers: dict[str, str]) -> bool:
    connection = headers.get("connection", "").lower()
    if version == "HTTP/1.0":
        return connection == "keep-alive"
    return connection != "close"


def run_async_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    idle_ttl: float | None = 900.0,
    max_sessions: int = 4096,
    coalesce_window: float | None = None,
    job_store: str | None = None,
    shards: int = 2,
    drain_timeout: float = 30.0,
    workers: int = 8,
    eviction_interval: float | None = None,
    verbose: bool = False,
    join: str | None = None,
    capacity: int = 1,
    worker_url: str | None = None,
    lease_ttl: float = 60.0,
    heartbeat_ttl: float = 15.0,
) -> int:
    """Blocking entry point behind ``python -m repro serve --async``."""
    from repro.jobs import JobStore, default_store_path

    manager = SessionManager(
        max_sessions=max_sessions,
        idle_ttl=idle_ttl or None,
        coalesce_window=coalesce_window,
    )
    jobs = JobService(JobStore(job_store or default_store_path()),
                      shards=shards, lease_ttl=lease_ttl,
                      heartbeat_ttl=heartbeat_ttl)
    server = AsyncMarketplaceServer(
        host, port,
        manager=manager,
        jobs=jobs,
        workers=workers,
        eviction_interval=eviction_interval,
        drain_timeout=drain_timeout,
        verbose=verbose,
    )

    agents: list = []

    class _Announce(threading.Thread):
        # The bound address only exists once the loop is up; announce
        # (and join the fleet, which needs the bound port) from the
        # side so serve_forever() can own the main thread.
        def run(self) -> None:
            server._started.wait()
            if server.address is not None:
                bound_host, bound_port = server.address
                print(
                    f"repro marketplace service (asyncio) on "
                    f"http://{bound_host}:{bound_port} "
                    f"(SIGTERM or Ctrl-C to stop)"
                )
                if join:
                    from repro.service.server import start_fleet_agent

                    agents.append(start_fleet_agent(
                        join, server.ctx, bound_host, bound_port,
                        capacity=capacity, worker_url=worker_url,
                    ))

    _Announce(daemon=True).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        for agent in agents:
            agent.stop()
    print("repro marketplace service drained and stopped")
    return 0
