"""Typed job specs: the declarative layer every front door shares.

A spec is a frozen dataclass that (1) validates at construction against
the live registries, (2) round-trips a canonical plain dict
(:meth:`to_dict`/:meth:`from_dict` — the JSON shape ``repro serve``
accepts), and (3) exposes a content :meth:`digest` used as the cache
key wherever the stack memoises work: the process-level market cache in
:mod:`repro.experiments.runner`, the :class:`~repro.service.manager.MarketPool`
shared by concurrent sessions, and (via the same
:mod:`repro.utils.canonical` helper) the oracle factory's persistent
:class:`~repro.oracle_factory.cache.GainCache` fingerprints.

* :class:`MarketSpec` — one standing market (dataset, base model,
  catalogue geometry, oracle-build execution knobs).
* :class:`SessionSpec` — one bargaining session on a market (strategy
  pair, information setting, per-session seed, cost schedules).
* :class:`SimulationSpec` — one population-simulation job
  (:mod:`repro.simulate` over a preset- or oracle-anchored catalogue).
* :class:`BatchSpec` — one repeated-session job (``bargain_many`` as a
  declarative spec the :mod:`repro.jobs` executor can shard).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any

from repro.service import registry
from repro.utils.canonical import content_digest
from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.market.costs import CostModel
    from repro.oracle_factory.cache import GainCache
    from repro.simulate.population import PopulationSpec

__all__ = ["BatchSpec", "MarketSpec", "SessionSpec", "SimulationSpec"]

_INFORMATION = ("perfect", "imperfect")


def _check_plain_dict(value: dict[str, Any] | None, label: str) -> None:
    if value is None:
        return
    require(isinstance(value, dict), f"{label} must be a dict")
    require(
        all(isinstance(k, str) for k in value),
        f"{label} keys must be strings",
    )


def _reject_unknown_keys(cls: Any, payload: dict[str, Any]) -> None:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(payload) - known)
    require(isinstance(payload, dict), f"{cls.__name__} payload must be a dict")
    require(
        not unknown,
        f"unknown {cls.__name__} keys {unknown}; known: {sorted(known)}",
    )


def _check_secure(secure: object, key_bits: object) -> None:
    require(isinstance(secure, bool), "secure must be a bool")
    require(isinstance(key_bits, int) and not isinstance(key_bits, bool),
            "key_bits must be an int")
    # 128 is the floor at which the blinded-comparison fixed-point
    # products stay inside the plaintext space; 4096 bounds keygen cost.
    require(128 <= key_bits <= 4096, "key_bits must be in [128, 4096]")


def _secure_dict(secure: bool, key_bits: int) -> dict[str, Any]:
    """The ``secure``/``key_bits`` wire keys, omitted at their defaults
    so pre-secure payloads and spec digests are unchanged."""
    if not secure and key_bits == 256:
        return {}
    return {"secure": secure, "key_bits": key_bits}


def _mix_triples(value: object, label: str) -> tuple[tuple[Any, ...], ...] | None:
    """Normalise a JSON list-of-lists mix back into tuples."""
    if value is None:
        return None
    require(isinstance(value, (list, tuple)), f"{label} must be a sequence")
    return tuple(tuple(entry) for entry in value)


@dataclass(frozen=True)
class MarketSpec:
    """One standing market, fully described.

    Identity fields (dataset, base model, seed, scale, catalogue size,
    model/config overrides) determine the market's *content*; execution
    fields (``jobs``, ``cache_dir``, ``no_cache``) determine how the
    oracle is built and persisted.  :meth:`digest` covers both — the
    process market cache must not hand a ``no_cache`` caller a market
    built under different persistence settings — while
    :meth:`identity_digest` covers identity only (two builds differing
    just in ``jobs`` produce bit-identical markets).
    """

    dataset: str
    base_model: str = "random_forest"
    seed: int = 0
    quick: bool = True
    n_bundles: int | None = None
    model_params: dict[str, Any] | None = None
    config_overrides: dict[str, Any] | None = None
    jobs: int = 1
    cache_dir: str | None = None
    no_cache: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Registry membership + range checks; raises ``ValueError``."""
        require(self.dataset in registry.DATASETS,
                f"unknown dataset {self.dataset!r}; "
                f"known: {list(registry.dataset_names())}")
        require(self.base_model in registry.BASE_MODELS,
                f"unknown base model {self.base_model!r}; "
                f"known: {list(registry.base_model_names())}")
        require(isinstance(self.seed, int), "seed must be an int")
        require(self.n_bundles is None or self.n_bundles >= 2,
                "n_bundles must be >= 2")
        require(isinstance(self.jobs, int) and self.jobs >= 0,
                "jobs must be an int >= 0")
        _check_plain_dict(self.model_params, "model_params")
        _check_plain_dict(self.config_overrides, "config_overrides")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-dict form (the ``POST /markets`` JSON shape)."""
        return {
            "dataset": self.dataset,
            "base_model": self.base_model,
            "seed": self.seed,
            "quick": self.quick,
            "n_bundles": self.n_bundles,
            "model_params": dict(self.model_params) if self.model_params else None,
            "config_overrides": (
                dict(self.config_overrides) if self.config_overrides else None
            ),
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "no_cache": self.no_cache,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MarketSpec":
        """Inverse of :meth:`to_dict`; unknown keys are hard errors."""
        _reject_unknown_keys(cls, payload)
        return cls(**payload)

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Content digest over the full spec (the market-cache key)."""
        return content_digest(self.to_dict())

    def identity_digest(self) -> str:
        """Digest over identity fields only (execution knobs excluded)."""
        payload = self.to_dict()
        for key in ("jobs", "cache_dir", "no_cache"):
            payload.pop(key)
        return content_digest(payload)

    # ------------------------------------------------------------------
    def entry(self) -> "registry.DatasetEntry":
        """The registered dataset entry this spec builds on."""
        return registry.DATASETS.get(self.dataset)

    def cache(self) -> "GainCache | None":
        """The :class:`GainCache` implied by the execution knobs."""
        if self.no_cache:
            return None
        from repro.oracle_factory.cache import GainCache, default_cache_dir

        return GainCache(self.cache_dir or default_cache_dir())


@dataclass(frozen=True)
class SessionSpec:
    """One bargaining session on a market.

    ``market`` is either a full :class:`MarketSpec` or the digest of a
    market already resident in the pool (the ``POST /markets`` reply).
    ``seed``/``run`` identify the session's RNG stream: ``run=None``
    seeds the engine with ``seed`` directly; ``run=i`` derives the
    i-th repeat stream exactly as
    :meth:`repro.market.market.Market.bargain_many` does, so a batch of
    sessions ``run=0..n-1`` reproduces ``bargain_many(n)`` bit for bit.

    ``cost_task``/``cost_data`` are ``(kind, a)`` pairs over the
    registered cost kinds (§3.4.4's additive bargaining costs).

    ``secure`` settles an accepted outcome through the §3.6 Paillier
    path (:mod:`repro.security.batch`): the reported payment is the
    fixed-point secure payment, value-identical to the serial secure
    protocol, with the ``key_bits`` keypair derived deterministically
    from ``seed`` so any process can rebuild it from the spec.
    """

    market: MarketSpec | str
    task: str = "strategic"
    data: str = "strategic"
    information: str = "perfect"
    seed: int = 0
    run: int | None = None
    cost_task: tuple[str, float] | None = None
    cost_data: tuple[str, float] | None = None
    config_overrides: dict[str, Any] | None = None
    secure: bool = False
    key_bits: int = 256

    def __post_init__(self) -> None:
        if isinstance(self.cost_task, list):
            object.__setattr__(self, "cost_task", tuple(self.cost_task))
        if isinstance(self.cost_data, list):
            object.__setattr__(self, "cost_data", tuple(self.cost_data))
        self.validate()

    def validate(self) -> None:
        """Registry membership + shape checks; raises ``ValueError``."""
        require(isinstance(self.market, (MarketSpec, str)),
                "market must be a MarketSpec or a market digest string")
        require(self.task in registry.TASK_STRATEGIES,
                f"unknown task strategy {self.task!r}; "
                f"known: {list(registry.task_strategy_names())}")
        require(self.data in registry.DATA_STRATEGIES,
                f"unknown data strategy {self.data!r}; "
                f"known: {list(registry.data_strategy_names())}")
        require(self.information in _INFORMATION,
                f"information must be one of {_INFORMATION}")
        require(isinstance(self.seed, int), "seed must be an int")
        require(self.run is None or (isinstance(self.run, int) and self.run >= 0),
                "run must be None or an int >= 0")
        for label, cost in (("cost_task", self.cost_task),
                            ("cost_data", self.cost_data)):
            if cost is None:
                continue
            require(len(cost) == 2, f"{label} must be a (kind, a) pair")
            kind, a = cost
            entry = registry.COSTS.get(kind)  # raises on unknown kinds
            entry.validate(float(a))
        _check_plain_dict(self.config_overrides, "config_overrides")
        _check_secure(self.secure, self.key_bits)

    # ------------------------------------------------------------------
    def engine_seed(self) -> object:
        """The seed object handed to the engine's strategy streams."""
        if self.run is None:
            return self.seed
        from repro.utils.rng import spawn

        return spawn(self.seed, "run", self.run)

    def cost_models(self) -> "tuple[CostModel | None, CostModel | None]":
        """``(cost_task, cost_data)`` as instantiated models."""

        def build(pair: tuple[str, float] | None) -> "CostModel | None":
            if pair is None:
                return None
            kind, a = pair
            return registry.build_cost(kind, float(a))

        return build(self.cost_task), build(self.cost_data)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-dict form (the ``POST /sessions`` JSON shape)."""
        return {
            "market": (
                self.market if isinstance(self.market, str)
                else self.market.to_dict()
            ),
            "task": self.task,
            "data": self.data,
            "information": self.information,
            "seed": self.seed,
            "run": self.run,
            "cost_task": list(self.cost_task) if self.cost_task else None,
            "cost_data": list(self.cost_data) if self.cost_data else None,
            "config_overrides": (
                dict(self.config_overrides) if self.config_overrides else None
            ),
            # Emitted only off-default: plain specs keep their seed wire
            # shape and digest, so pre-secure job records stay addressable.
            **_secure_dict(self.secure, self.key_bits),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SessionSpec":
        """Inverse of :meth:`to_dict`; unknown keys are hard errors."""
        _reject_unknown_keys(cls, payload)
        payload = dict(payload)
        market = payload.get("market")
        if isinstance(market, dict):
            payload["market"] = MarketSpec.from_dict(market)
        return cls(**payload)

    def digest(self) -> str:
        """Content digest over the full spec."""
        return content_digest(self.to_dict())


@dataclass(frozen=True)
class SimulationSpec:
    """One population-simulation job over the :mod:`repro.simulate` stack.

    ``dataset=None`` runs on a synthetic catalogue anchored at
    ``preset`` (default ``synthetic``); with a dataset, the oracle
    factory builds (or replays from cache) a real pre-bargaining oracle
    and the population trades its catalogue.
    """

    sessions: int = 1000
    preset: str | None = None
    dataset: str | None = None
    base_model: str = "random_forest"
    seed: int = 0
    batch_size: int = 1024
    bins: int = 16
    strategy_mix: tuple[tuple[str, str, float], ...] | None = None
    cost_mix: tuple[tuple[str, float, float], ...] | None = None
    jobs: int = 1
    cache_dir: str | None = None
    no_cache: bool = False
    #: Settle accepted sessions through the batched §3.6 Paillier path
    #: (payments become the fixed-point secure payments).  Shards
    #: rebuild the ``key_bits`` keypair deterministically from ``seed``,
    #: so sharded secure jobs stay digest-equal to the single process.
    secure: bool = False
    key_bits: int = 256

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "strategy_mix", _mix_triples(self.strategy_mix, "strategy_mix")
        )
        object.__setattr__(
            self, "cost_mix", _mix_triples(self.cost_mix, "cost_mix")
        )
        self.validate()

    def validate(self) -> None:
        """Registry membership + range checks; raises ``ValueError``."""
        require(self.sessions >= 1, "sessions must be >= 1")
        require(self.batch_size >= 1, "batch_size must be >= 1")
        require(self.bins >= 1, "bins must be >= 1")
        require(self.preset is None or self.preset in registry.DATASETS,
                f"unknown preset {self.preset!r}; "
                f"known: {list(registry.preset_names())}")
        if self.dataset is not None:
            require(self.dataset in registry.DATASETS,
                    f"unknown dataset {self.dataset!r}; "
                    f"known: {list(registry.dataset_names())}")
        require(self.base_model in registry.BASE_MODELS,
                f"unknown base model {self.base_model!r}; "
                f"known: {list(registry.base_model_names())}")
        require(isinstance(self.seed, int), "seed must be an int")
        require(isinstance(self.jobs, int) and self.jobs >= 0,
                "jobs must be an int >= 0")
        _check_secure(self.secure, self.key_bits)
        # The population spec re-validates mixes against the strategy
        # and cost registries; constructing it here surfaces bad mixes
        # at spec time rather than mid-run.
        self.population_spec()

    # ------------------------------------------------------------------
    def resolved_preset(self) -> str:
        """The calibration anchor: ``preset``, else the dataset, else synthetic."""
        return self.preset or self.dataset or "synthetic"

    def population_spec(self) -> "PopulationSpec":
        """The :class:`~repro.simulate.population.PopulationSpec` implied."""
        from repro.simulate.population import PopulationSpec

        overrides: dict[str, Any] = {"preset": self.resolved_preset()}
        if self.strategy_mix:
            overrides["strategy_mix"] = self.strategy_mix
        if self.cost_mix:
            overrides["cost_mix"] = self.cost_mix
        return PopulationSpec(**overrides)

    def market_spec(self, *, quick: bool = True,
                    n_bundles: int | None = None) -> "MarketSpec | None":
        """The oracle-backing :class:`MarketSpec` (``None`` if synthetic)."""
        if self.dataset is None:
            return None
        return MarketSpec(
            dataset=self.dataset,
            base_model=self.base_model,
            seed=self.seed,
            quick=quick,
            n_bundles=n_bundles,
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            no_cache=self.no_cache,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-dict form."""
        return {
            "sessions": self.sessions,
            "preset": self.preset,
            "dataset": self.dataset,
            "base_model": self.base_model,
            "seed": self.seed,
            "batch_size": self.batch_size,
            "bins": self.bins,
            "strategy_mix": (
                [list(t) for t in self.strategy_mix] if self.strategy_mix else None
            ),
            "cost_mix": (
                [list(t) for t in self.cost_mix] if self.cost_mix else None
            ),
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "no_cache": self.no_cache,
            **_secure_dict(self.secure, self.key_bits),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SimulationSpec":
        """Inverse of :meth:`to_dict`; unknown keys are hard errors."""
        _reject_unknown_keys(cls, payload)
        return cls(**payload)

    def digest(self) -> str:
        """Content digest over the full spec."""
        return content_digest(self.to_dict())


@dataclass(frozen=True)
class BatchSpec:
    """One repeated-session job: ``runs`` independently seeded games.

    The declarative twin of
    :meth:`repro.market.market.Market.bargain_many`: the ``session``
    template is replayed with ``run=0..runs-1`` (the same per-run seed
    derivation), so a batch job's outcomes are bit-identical to the
    sequential loop.  The template's ``market`` must be a full
    :class:`MarketSpec` — batch jobs ship to worker processes whose
    pools have never seen the parent's digests — and its ``run`` must
    be unset (the batch owns the run axis).
    """

    session: SessionSpec
    runs: int = 100

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        require(isinstance(self.session, SessionSpec),
                "session must be a SessionSpec")
        require(isinstance(self.runs, int) and self.runs >= 1,
                "runs must be an int >= 1")
        require(isinstance(self.session.market, MarketSpec),
                "batch jobs need a full MarketSpec (not a pool digest): "
                "worker processes rebuild the market from it")
        require(self.session.run is None,
                "the session template's run must be None (the batch "
                "derives run=0..runs-1 itself)")

    def to_dict(self) -> dict[str, Any]:
        """Canonical plain-dict form."""
        return {"session": self.session.to_dict(), "runs": self.runs}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "BatchSpec":
        """Inverse of :meth:`to_dict`; unknown keys are hard errors."""
        _reject_unknown_keys(cls, payload)
        payload = dict(payload)
        session = payload.get("session")
        if isinstance(session, dict):
            payload["session"] = SessionSpec.from_dict(session)
        return cls(**payload)

    def digest(self) -> str:
        """Content digest over the full spec."""
        return content_digest(self.to_dict())
