"""Experiment-scale configuration: quick mode vs paper scale.

Every benchmark runs in **quick mode** by default (reduced repetition
counts and dataset rows, so the full suite finishes in minutes on a
laptop).  Setting the environment variable ``REPRO_FULL=1`` restores
the paper's scale: 100 bargaining repetitions, full dataset rows, and
N=100 exploration rounds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "scale"]

DATASETS = ("titanic", "credit", "adult")
BASE_MODELS = ("random_forest", "mlp")


@dataclass(frozen=True)
class ExperimentScale:
    """Repetition counts for one experiment tier."""

    name: str
    quick: bool
    n_runs: int
    n_runs_imperfect: int
    n_bundles: int
    exploration_rounds: int
    trace_rounds: int
    oracle_repeats: int

    @property
    def max_rounds(self) -> int:
        """Bargaining cap (the paper uses 500)."""
        return 500


_QUICK = ExperimentScale(
    name="quick",
    quick=True,
    n_runs=20,
    n_runs_imperfect=8,
    n_bundles=24,
    exploration_rounds=60,
    trace_rounds=150,
    oracle_repeats=1,
)

_FULL = ExperimentScale(
    name="full",
    quick=False,
    n_runs=100,
    n_runs_imperfect=100,
    n_bundles=24,
    exploration_rounds=100,
    trace_rounds=200,
    oracle_repeats=3,
)


def scale() -> ExperimentScale:
    """The active tier, from the ``REPRO_FULL`` environment variable."""
    return _FULL if os.environ.get("REPRO_FULL", "") == "1" else _QUICK
