"""Row generators for every table in the paper's evaluation (+ ablations).

* Table 2 — dataset statistics after preprocessing;
* Table 3 — effect of bargaining cost (linear/exponential schedules ×
  two termination tolerances per dataset);
* Table 4 — imperfect vs perfect performance information, final
  bargaining variables;
* Ablations (ours) — ε sweep, market-structure sensitivity, security
  overhead.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.synthetic import load_dataset
from repro.experiments.aggregate import mean_std
from repro.experiments.config import scale
from repro.experiments.runner import get_market
from repro.market.costs import CostModel, ScaledCost, make_cost
from repro.market.engine import BargainOutcome

__all__ = [
    "ablation_epsilon_rows",
    "ablation_market_rows",
    "security_overhead_rows",
    "table2_rows",
    "table3_rows",
    "table4_rows",
]

#: Per-dataset termination tolerances studied in Table 3 (paper §4.3;
#: the underlined default first).
TABLE3_EPSILONS = {
    "titanic": (1e-3, 1e-2),
    "credit": (1e-5, 1e-4),
    "adult": (1e-4, 5e-4),
}

#: Cost schedules of Table 3: label -> (kind, a).
TABLE3_COSTS: list[tuple[str, str, float | None]] = [
    ("No cost", "none", None),
    ("C(T)=aT, a=0.1", "linear", 0.1),
    ("C(T)=aT, a=1", "linear", 1.0),
    ("C(T)=a^T, a=1.01", "exponential", 1.01),
    ("C(T)=a^T, a=1.1", "exponential", 1.1),
]


def table2_rows() -> tuple[list[str], list[list[object]]]:
    """Table 2: dataset statistics (paper-default row counts)."""
    headers = [
        "Dataset",
        "# samples",
        "original # features (total)",
        "# features (task party)",
        "# features (data party)",
    ]
    rows = []
    for name in ("titanic", "credit", "adult"):
        raw = load_dataset(name, seed=0)
        prepared = raw.prepare(seed=0)
        summary = prepared.summary()
        rows.append(
            [
                name.capitalize(),
                summary["n_samples"],
                summary["original_features_total"],
                summary["task_party_features"],
                summary["data_party_features"],
            ]
        )
    return headers, rows


def _accepted(outcomes: list[BargainOutcome]) -> list[BargainOutcome]:
    return [o for o in outcomes if o.accepted]


def table3_rows(dataset: str, *, seed: int = 0) -> tuple[list[str], list[list[object]]]:
    """Table 3: bargaining-cost sweep on the Random Forest market.

    Per the paper, Credit/Adult scale each party's cost to ``C(T)/10``;
    Titanic uses the unscaled schedule.  Reported Net Profit and
    Payment are cost-adjusted (revenue minus the party's cost); C(T) is
    the unscaled schedule value at the final round.
    """
    tier = scale()
    market = get_market(dataset, "random_forest", seed=seed)
    # The paper sets 10*C_t = 10*C_d = C(T) for Credit and Adult; we
    # apply the same scaling to Titanic so its per-party cost stays
    # commensurate with its payment scale (documented in EXPERIMENTS.md).
    party_scale = 0.1
    headers = [
        "Cost",
        "eps",
        "Net Profit",
        "Payment",
        "Realized dG (1e-2)",
        "C(T)",
        "Accept",
    ]
    rows: list[list[object]] = []
    for eps in TABLE3_EPSILONS[dataset]:
        for label, kind, a in TABLE3_COSTS:
            raw_cost: CostModel = make_cost(kind, a)
            party_cost = (
                ScaledCost(raw_cost, party_scale) if party_scale != 1.0 else raw_cost
            )
            outcomes = market.bargain_many(
                tier.n_runs,
                base_seed=seed,
                cost_task=party_cost,
                cost_data=party_cost,
                config_overrides={"eps_d": eps, "eps_t": eps},
            )
            accepted = _accepted(outcomes)
            if not accepted:
                rows.append([label, eps, float("nan"), float("nan"),
                             float("nan"), float("nan"), "0%"])
                continue
            net_m, net_s = mean_std([o.net_profit_after_cost for o in accepted])
            pay_m, pay_s = mean_std([o.payment_after_cost for o in accepted])
            dg_m, dg_s = mean_std([o.delta_g * 100 for o in accepted])
            c_m, c_s = mean_std([raw_cost(o.n_rounds) for o in accepted])
            rows.append(
                [
                    label,
                    eps,
                    f"{net_m:.2f}±{net_s:.2f}",
                    f"{pay_m:.2f}±{pay_s:.2f}",
                    f"{dg_m:.2f}±{dg_s:.2f}",
                    f"{c_m:.2f}±{c_s:.2f}" if kind != "none" else "-",
                    f"{100 * len(accepted) / len(outcomes):.0f}%",
                ]
            )
    return headers, rows


def table4_rows(
    dataset: str, base_model: str, *, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """Table 4: final bargaining variables, imperfect vs perfect.

    Δp and ΔP0 are the final quote's distances to the transacted
    bundle's reserved price (how closely the buyer's price tracked the
    seller's private floor).  Failed runs are excluded from the means;
    the acceptance rate is reported alongside (the paper instead
    records failures as negative-infinite values).
    """
    tier = scale()
    market = get_market(dataset, base_model, seed=seed)
    settings = [
        ("Perfect", dict(information="perfect"), tier.n_runs),
        (
            "Imperfect",
            dict(
                information="imperfect",
                config_overrides={
                    "exploration_rounds": tier.exploration_rounds,
                },
            ),
            tier.n_runs_imperfect,
        ),
    ]
    headers = ["Variable", "Imperfect", "Perfect"]
    stats: dict[str, dict[str, str]] = {}
    accept: dict[str, str] = {}
    for label, kwargs, n_runs in settings:
        outcomes = market.bargain_many(n_runs, base_seed=seed, **kwargs)
        accepted = _accepted(outcomes)
        accept[label] = f"{100 * len(accepted) / len(outcomes):.0f}%"
        metrics: dict[str, list[float]] = {
            "p": [], "P0": [], "Ph": [], "dp": [], "dP0": [],
            "dG": [], "Net Profit": [], "Payment": [],
        }
        for o in accepted:
            metrics["p"].append(o.quote.rate)
            metrics["P0"].append(o.quote.base)
            metrics["Ph"].append(o.quote.cap)
            if o.reserved_of_bundle is not None:
                metrics["dp"].append(o.quote.rate - o.reserved_of_bundle.rate)
                metrics["dP0"].append(o.quote.base - o.reserved_of_bundle.base)
            metrics["dG"].append(o.delta_g)
            metrics["Net Profit"].append(o.net_profit)
            metrics["Payment"].append(o.payment)
        stats[label] = {}
        for key, values in metrics.items():
            if values:
                m, s = mean_std(values)
                stats[label][key] = f"{m:.2f}±{s:.2f}" if key not in ("dG",) else f"{m:.4f}±{s:.4f}"
            else:
                stats[label][key] = "-"
    rows = [
        [key, stats["Imperfect"][key], stats["Perfect"][key]]
        for key in ("p", "P0", "Ph", "dp", "dP0", "dG", "Net Profit", "Payment")
    ]
    rows.append(["Accept rate", accept["Imperfect"], accept["Perfect"]])
    return headers, rows


def ablation_epsilon_rows(
    dataset: str = "titanic", *, seed: int = 0
) -> tuple[list[str], list[list[object]]]:
    """Ablation A1: the ε trade-off of §4.3.

    Smaller tolerances push the realised gain closer to the target
    (better equilibrium) at the price of longer bargaining.
    """
    tier = scale()
    market = get_market(dataset, "random_forest", seed=seed)
    headers = ["eps", "Rounds", "Net Profit", "Payment", "Realized dG", "Accept"]
    rows = []
    for eps in (1e-4, 1e-3, 1e-2, 5e-2):
        outcomes = market.bargain_many(
            tier.n_runs,
            base_seed=seed,
            config_overrides={"eps_d": eps, "eps_t": eps},
        )
        accepted = _accepted(outcomes)
        if not accepted:
            rows.append([eps, "-", "-", "-", "-", "0%"])
            continue
        rounds_m, rounds_s = mean_std([o.n_rounds for o in accepted])
        net_m, _ = mean_std([o.net_profit for o in accepted])
        pay_m, _ = mean_std([o.payment for o in accepted])
        dg_m, _ = mean_std([o.delta_g for o in accepted])
        rows.append(
            [
                eps,
                f"{rounds_m:.1f}±{rounds_s:.1f}",
                f"{net_m:.2f}",
                f"{pay_m:.3f}",
                f"{dg_m:.4f}",
                f"{100 * len(accepted) / len(outcomes):.0f}%",
            ]
        )
    return headers, rows


def ablation_market_rows(*, seed: int = 0) -> tuple[list[str], list[list[object]]]:
    """Ablation A2: bargaining mechanics vs market structure.

    Synthetic gain ladders (no VFL) isolate the engine: vary catalogue
    size and the value-premium steepness of reserved prices, and track
    how convergence length and buyer surplus respond.
    """
    from repro.market.bundle import FeatureBundle
    from repro.market.config import MarketConfig
    from repro.market.engine import BargainingEngine
    from repro.market.oracle import PerformanceOracle
    from repro.market.pricing import ReservedPrice
    from repro.market.strategies.data_party import StrategicDataParty
    from repro.market.strategies.task_party import StrategicTaskParty
    from repro.utils.rng import spawn

    headers = ["# bundles", "value premium", "Rounds", "Net Profit", "Payment", "p-p_l"]
    rows = []
    tier = scale()
    for n_bundles in (6, 12, 24):
        for premium in (0.0, 2.0, 4.0):
            rounds_list, net_list, pay_list, slack_list = [], [], [], []
            for run in range(max(6, tier.n_runs // 3)):
                rng = spawn(seed, "ablation", n_bundles, premium, run)
                bundles = [FeatureBundle.of(range(i + 1)) for i in range(n_bundles)]
                gains, reserved = {}, {}
                for i, b in enumerate(bundles):
                    q = (i + 1) / n_bundles
                    gains[b] = 0.2 * q
                    reserved[b] = ReservedPrice(
                        rate=5.0 + premium * q + rng.uniform(0, 0.1),
                        base=0.8 + 0.5 * q + rng.uniform(0, 0.02),
                    )
                config = MarketConfig(
                    utility_rate=500.0, budget=6.0, initial_rate=5.2,
                    initial_base=0.85, target_gain=0.2,
                    eps_d=1e-3, eps_t=1e-3, n_price_samples=64, max_rounds=400,
                )
                oracle = PerformanceOracle.from_gains(gains)
                outcome = BargainingEngine(
                    StrategicTaskParty(config, list(gains.values()), rng=rng),
                    StrategicDataParty(gains, reserved, config),
                    oracle,
                    utility_rate=config.utility_rate,
                    reserved_prices=reserved,
                    max_rounds=config.max_rounds,
                ).run()
                if outcome.accepted:
                    rounds_list.append(outcome.n_rounds)
                    net_list.append(outcome.net_profit)
                    pay_list.append(outcome.payment)
                    if outcome.reserved_of_bundle is not None:
                        slack_list.append(
                            outcome.quote.rate - outcome.reserved_of_bundle.rate
                        )
            rows.append(
                [
                    n_bundles,
                    premium,
                    f"{np.mean(rounds_list):.1f}" if rounds_list else "-",
                    f"{np.mean(net_list):.1f}" if net_list else "-",
                    f"{np.mean(pay_list):.3f}" if pay_list else "-",
                    f"{np.mean(slack_list):.2f}" if slack_list else "-",
                ]
            )
    return headers, rows


def security_overhead_rows(*, seed: int = 0) -> tuple[list[str], list[list[object]]]:
    """Ablation A3: cost of the §3.6 mitigation.

    Times plaintext payment evaluation against the serial Paillier
    :func:`~repro.security.secure_compare.secure_payment` and against
    the packed batch path
    (:func:`~repro.security.batch.secure_payment_batch`, obfuscation
    pool prebuilt — it is cached per settlement), per session.
    """
    from repro.market.pricing import QuotedPrice
    from repro.security import (
        ObfuscationPool,
        encrypted_gain,
        generate_keypair,
        secure_payment,
        secure_payment_batch,
    )
    from repro.utils.rng import spawn

    headers = ["Key bits", "Plain (ms/round)", "Serial (ms/round)",
               "Batched (ms/round)", "Speedup"]
    rows = []
    quote = QuotedPrice(rate=10.0, base=1.0, cap=3.0)
    gains = np.linspace(0.0, 0.4, 20)
    t0 = time.perf_counter()
    for g in gains:
        quote.payment(float(g))
    plain_ms = (time.perf_counter() - t0) / len(gains) * 1e3
    for bits in (128, 256, 512):
        pub, priv = generate_keypair(bits=bits, rng=spawn(seed, "keys", bits))
        t0 = time.perf_counter()
        serial = []
        for i, g in enumerate(gains):
            enc = encrypted_gain(float(g), pub, rng=spawn(seed, "enc", bits, i))
            serial.append(
                secure_payment(enc, quote, priv, rng=spawn(seed, "blind", bits, i))
            )
        serial_ms = (time.perf_counter() - t0) / len(gains) * 1e3
        pool = ObfuscationPool(pub, rng=spawn(seed, "pool", bits))
        t0 = time.perf_counter()
        batched = secure_payment_batch(
            [float(g) for g in gains], [quote] * len(gains), pub, priv,
            rng=spawn(seed, "batch", bits), pool=pool,
        )
        batched_ms = (time.perf_counter() - t0) / len(gains) * 1e3
        assert batched == serial  # value-identity, pinned in the tables too
        rows.append(
            [
                bits,
                f"{plain_ms:.4f}",
                f"{serial_ms:.3f}",
                f"{batched_ms:.3f}",
                f"{serial_ms / max(batched_ms, 1e-9):.1f}x",
            ]
        )
    return headers, rows
