"""Series generators for every figure in the paper's evaluation.

Each function returns plain arrays/dicts; the benchmarks render them as
ASCII charts + CSV files.  Figure numbering follows the paper:

* Figure 1 — payment / net profit as functions of ΔG (analytic);
* Figures 2 & 3 — bargaining dynamics for three strategy variants
  (RF and MLP base models respectively): per-round net profit, payment
  and realised ΔG curves with 95% CIs, plus final-price densities
  against the reserved price;
* Figure 4 — MSE of both parties' ΔG estimators over bargaining rounds
  under imperfect information.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.aggregate import density, nan_mean_ci
from repro.experiments.config import scale
from repro.experiments.runner import get_market, round_matrix
from repro.market.config import MarketConfig
from repro.market.engine import BargainingEngine
from repro.market.objectives import task_net_profit
from repro.market.pricing import QuotedPrice
from repro.market.strategies.imperfect import ImperfectDataParty, ImperfectTaskParty
from repro.utils.rng import spawn

__all__ = ["figure1_series", "figure23_series", "figure4_series"]

STRATEGY_VARIANTS: list[tuple[str, dict]] = [
    ("Strategic (Ours)", {}),
    ("Increase Price", {"task": "increase_price"}),
    ("Random Bundle", {"data": "random_bundle"}),
]


def figure1_series(
    quote: QuotedPrice | None = None,
    *,
    utility_rate: float = 20.0,
    n_grid: int = 200,
) -> dict[str, np.ndarray]:
    """Figure 1: the payment function and net profit vs ΔG.

    Defaults reproduce the paper's qualitative panels: payment is flat
    at ``P0``, linear, then capped at ``Ph``; net profit crosses zero at
    ``P0/(u − p)`` and keeps climbing past the turning point.
    """
    quote = quote or QuotedPrice(rate=10.0, base=1.0, cap=3.0)
    hi = quote.turning_point * 2.0
    grid = np.linspace(-0.25 * hi, hi, n_grid)
    payment = np.array([quote.payment(g) for g in grid])
    profit = np.array([task_net_profit(quote, g, utility_rate) for g in grid])
    return {
        "delta_g": grid,
        "payment": payment,
        "net_profit": profit,
        "turning_point": np.array([quote.turning_point]),
        "break_even": np.array([quote.base / (utility_rate - quote.rate)]),
    }


def figure23_series(dataset: str, base_model: str, *, seed: int = 0) -> dict:
    """Figures 2/3: bargaining dynamics for the three strategy variants.

    Returns, per variant: ``rounds`` (per-round mean & CI for
    net_profit / payment / delta_g over runs still alive), the final
    price samples (p, P0) for the density panels, and the acceptance
    rate.  ``reserved`` carries the target bundle's reserved price —
    the vertical reference line of the paper's density panels.
    """
    tier = scale()
    market = get_market(dataset, base_model, seed=seed)
    target_bundle = market.oracle.best_bundle()
    reserved = market.reserved_prices[target_bundle]
    out: dict = {
        "dataset": dataset,
        "base_model": base_model,
        "n_runs": tier.n_runs,
        "reserved": {"rate": reserved.rate, "base": reserved.base},
        "variants": {},
    }
    all_rounds: list[int] = []
    results = {}
    for label, kwargs in STRATEGY_VARIANTS:
        outcomes = market.bargain_many(tier.n_runs, base_seed=seed, **kwargs)
        results[label] = outcomes
        all_rounds.extend(o.n_rounds for o in outcomes if o.accepted)
    max_round = int(min(max(all_rounds or [50]) * 1.1 + 5, 300))
    for label, kwargs in STRATEGY_VARIANTS:
        outcomes = results[label]
        curves = {}
        for field in ("net_profit", "payment", "delta_g"):
            matrix = round_matrix(outcomes, field, max_round=max_round)
            mean, half, alive = nan_mean_ci(matrix)
            curves[field] = {"mean": mean, "ci": half, "alive": alive}
        finals = [o for o in outcomes if o.quote is not None]
        out["variants"][label] = {
            "curves": curves,
            "accept_rate": float(np.mean([o.accepted for o in outcomes])),
            "mean_rounds": float(np.mean([o.n_rounds for o in outcomes])),
            "final_rate": np.array([o.quote.rate for o in finals]),
            "final_base": np.array([o.quote.base for o in finals]),
        }
    # Density panels over the pooled grids (Figure 2 d/e style).
    pooled_rate = np.concatenate(
        [v["final_rate"] for v in out["variants"].values() if len(v["final_rate"])]
    )
    pooled_base = np.concatenate(
        [v["final_base"] for v in out["variants"].values() if len(v["final_base"])]
    )
    rate_grid = np.linspace(pooled_rate.min() - 1, pooled_rate.max() + 1, 64)
    base_grid = np.linspace(pooled_base.min() - 0.2, pooled_base.max() + 0.2, 64)
    for variant in out["variants"].values():
        variant["rate_density"] = (
            density(variant["final_rate"], rate_grid)
            if len(variant["final_rate"])
            else (rate_grid, np.zeros_like(rate_grid))
        )
        variant["base_density"] = (
            density(variant["final_base"], base_grid)
            if len(variant["final_base"])
            else (base_grid, np.zeros_like(base_grid))
        )
    out["max_round"] = max_round
    return out


def figure4_series(dataset: str, base_model: str, *, seed: int = 0) -> dict:
    """Figure 4: estimator MSE vs bargaining round, both parties.

    Runs imperfect-information bargaining with termination disabled for
    ``trace_rounds`` rounds (a pure training trace — the paper's Figure
    4 x-axes extend well past the exploration window) and averages each
    estimator's per-round buffer MSE across repetitions.
    """
    tier = scale()
    market = get_market(dataset, base_model, seed=seed)
    rounds = tier.trace_rounds
    config: MarketConfig = market.config.with_overrides(
        exploration_rounds=rounds, max_rounds=rounds
    )
    n_traces = max(3, tier.n_runs_imperfect // 2)
    task_curves = np.full((n_traces, rounds), np.nan)
    data_curves = np.full((n_traces, rounds), np.nan)
    for i in range(n_traces):
        task = ImperfectTaskParty(config, rng=spawn(seed, "fig4", "task", i))
        data = ImperfectDataParty(
            market.oracle.bundles,
            market.reserved_prices,
            config,
            market.n_data_features,
            rng=spawn(seed, "fig4", "data", i),
        )
        BargainingEngine(
            task,
            data,
            market.oracle,
            utility_rate=config.utility_rate,
            max_rounds=rounds,
        ).run()
        t_hist = np.asarray(task.estimator.mse_history[:rounds])
        d_hist = np.asarray(data.estimator.mse_history[:rounds])
        task_curves[i, : len(t_hist)] = t_hist
        data_curves[i, : len(d_hist)] = d_hist
    task_mean, task_ci, _ = nan_mean_ci(task_curves)
    data_mean, data_ci, _ = nan_mean_ci(data_curves)
    return {
        "dataset": dataset,
        "base_model": base_model,
        "rounds": np.arange(1, rounds + 1),
        "task_mse": task_mean,
        "task_ci": task_ci,
        "data_mse": data_mean,
        "data_ci": data_ci,
    }
