"""Plain-text rendering: aligned tables, ASCII charts, CSV dumps.

No matplotlib in this environment, so figures are emitted as (a) CSV
series written next to the benchmarks and (b) compact ASCII charts so
the *shape* of every curve is visible directly in benchmark output.
"""

from __future__ import annotations

import os

import numpy as np

from repro.utils.validation import require

__all__ = ["ascii_chart", "format_table", "write_csv"]


def format_table(headers: list[str], rows: list[list[object]], *, title: str = "") -> str:
    """Fixed-width table with a rule under the header."""
    require(bool(headers), "need headers")
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in cells)) if cells else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000 or (abs(cell) < 1e-3 and cell != 0):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def ascii_chart(
    series: dict[str, np.ndarray],
    *,
    title: str = "",
    width: int = 72,
    height: int = 14,
    x_label: str = "round",
) -> str:
    """Multi-series ASCII line chart (one glyph per series).

    Series are resampled onto ``width`` columns; NaN segments are left
    blank, so curves that end early (failed runs) visibly stop.
    """
    require(bool(series), "need at least one series")
    glyphs = "*o+x#@%&"
    all_vals = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    finite = all_vals[np.isfinite(all_vals)]
    require(finite.size > 0, "series contain no finite values")
    lo, hi = float(finite.min()), float(finite.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    max_len = max(len(np.asarray(v)) for v in series.values())
    for s_idx, (name, values) in enumerate(series.items()):
        values = np.asarray(values, dtype=float)
        glyph = glyphs[s_idx % len(glyphs)]
        for col in range(width):
            src = int(round(col * (max_len - 1) / max(width - 1, 1)))
            if src >= len(values) or not np.isfinite(values[src]):
                continue
            frac = (values[src] - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"  {hi:.4g}".rjust(10))
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append(f"  {lo:.4g}".rjust(10) + "  " + "-" * (width - 8) + f"> {x_label}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)


def write_csv(
    path: str, headers: list[str], columns: list[np.ndarray] | list[list[object]]
) -> str:
    """Write column-oriented data as CSV, creating parent directories."""
    require(len(headers) == len(columns), "headers/columns mismatch")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    n = max(len(np.atleast_1d(c)) for c in columns)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(",".join(headers) + "\n")
        for i in range(n):
            row = []
            for col in columns:
                col = np.atleast_1d(col)
                row.append(_fmt(col[i]) if i < len(col) else "")
            fh.write(",".join(str(x) for x in row) + "\n")
    return path
