"""Shared experiment plumbing: cached markets and trace extraction."""

from __future__ import annotations

import numpy as np

from repro.experiments.config import scale
from repro.market.engine import BargainOutcome
from repro.market.market import Market

__all__ = ["clear_market_cache", "get_market", "market_is_cached", "round_matrix"]

_MARKET_CACHE: dict[tuple, Market] = {}


def _market_key(dataset: str, base_model: str, seed: int) -> tuple:
    return (dataset, base_model, seed, scale().name)


def market_is_cached(
    dataset: str, base_model: str = "random_forest", *, seed: int = 0
) -> bool:
    """Whether :func:`get_market` would return a cached market.

    Lets callers (the CLI) distinguish a fresh oracle build — whose
    build report describes the current invocation — from a reused one.
    """
    return _market_key(dataset, base_model, seed) in _MARKET_CACHE


def get_market(
    dataset: str,
    base_model: str = "random_forest",
    *,
    seed: int = 0,
    jobs: int = 1,
    cache: object = None,
) -> Market:
    """Build (or reuse) the full market stack for one dataset/model.

    Oracle construction dominates experiment cost, so markets are
    cached per (dataset, model, seed, scale-tier) for the process
    lifetime — every figure/table for a given market shares one oracle,
    exactly as the paper's platform pre-computes gains once.  ``jobs``
    and ``cache`` reach the oracle factory on a cold build; they do not
    enter the cache key because they cannot change the market.  A hit
    therefore also skips persistence: passing ``cache`` for a market
    this process already built without one writes nothing to disk (the
    oracle keeps only mean gains, not the per-repeat course results the
    gain cache stores) — pass ``cache`` on the first build.
    """
    tier = scale()
    key = _market_key(dataset, base_model, seed)
    if key not in _MARKET_CACHE:
        _MARKET_CACHE[key] = Market.for_dataset(
            dataset,
            base_model=base_model,
            quick=tier.quick,
            seed=seed,
            n_bundles=tier.n_bundles,
            jobs=jobs,
            cache=cache,
        )
    return _MARKET_CACHE[key]


def clear_market_cache() -> None:
    """Drop cached markets (tests use this to control memory)."""
    _MARKET_CACHE.clear()


def round_matrix(
    outcomes: list[BargainOutcome],
    field: str,
    *,
    max_round: int | None = None,
) -> np.ndarray:
    """Per-round values as an ``(n_runs, max_round)`` array.

    ``field`` is a :class:`~repro.market.engine.RoundRecord` attribute
    (``"net_profit"``, ``"payment"``, ``"delta_g"``).  Accepted runs are
    padded with their final value after termination (the agreed deal
    persists); failed runs are NaN after their last round, so per-round
    means aggregate over runs still alive — matching how the paper's
    curves remain defined while runs drop out.
    """
    if max_round is None:
        max_round = max(o.n_rounds for o in outcomes)
    matrix = np.full((len(outcomes), max_round), np.nan)
    for i, outcome in enumerate(outcomes):
        for record in outcome.history:
            if record.round_number <= max_round and record.bundle is not None:
                matrix[i, record.round_number - 1] = getattr(record, field)
        if outcome.accepted and outcome.n_rounds < max_round:
            matrix[i, outcome.n_rounds :] = getattr(
                outcome.history[-1], field
            )
    return matrix
