"""Shared experiment plumbing: cached markets and trace extraction.

Markets are pooled in the process-wide
:func:`repro.service.manager.shared_pool`, keyed by the full
:meth:`~repro.service.specs.MarketSpec.digest` — *including* the
oracle-build execution knobs.  The old tuple key ignored
``jobs``/``cache``, so a ``--no-cache`` run could silently reuse a
process-cached market built under different persistence settings (and
report stale build/cache statistics for it); keying on the spec digest
makes every distinct build configuration its own pool entry.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import scale
from repro.market.engine import BargainOutcome
from repro.market.market import Market
from repro.service.manager import shared_pool
from repro.service.specs import MarketSpec

__all__ = [
    "clear_market_cache",
    "get_market",
    "market_is_cached",
    "round_matrix",
    "spec_for",
]


def spec_for(
    dataset: str,
    base_model: str = "random_forest",
    *,
    seed: int = 0,
    jobs: int = 1,
    cache: object = None,
) -> MarketSpec:
    """The experiment-scale-aware :class:`MarketSpec` for one market.

    Applies the active :func:`repro.experiments.config.scale` tier
    (quick-mode rows, catalogue size) and normalises the legacy
    ``cache`` argument (``None`` = no persistence, a directory path or
    a :class:`~repro.oracle_factory.cache.GainCache`) into the spec's
    serialisable ``cache_dir``/``no_cache`` fields.
    """
    tier = scale()
    cache_dir = None
    if cache is not None:
        cache_dir = cache if isinstance(cache, str) else getattr(
            cache, "directory", None
        )
    return MarketSpec(
        dataset=dataset,
        base_model=base_model,
        seed=seed,
        quick=tier.quick,
        n_bundles=tier.n_bundles,
        jobs=jobs,
        cache_dir=cache_dir,
        no_cache=cache is None,
    )


def _as_spec(dataset, base_model, seed, jobs, cache) -> MarketSpec:
    if isinstance(dataset, MarketSpec):
        return dataset
    return spec_for(dataset, base_model, seed=seed, jobs=jobs, cache=cache)


def market_is_cached(
    dataset: str | MarketSpec,
    base_model: str = "random_forest",
    *,
    seed: int = 0,
    jobs: int = 1,
    cache: object = None,
) -> bool:
    """Whether :func:`get_market` would return a pooled market.

    Lets callers (the CLI) distinguish a fresh oracle build — whose
    build report describes the current invocation — from a reused one.
    Accepts either a :class:`MarketSpec` or the legacy positional
    ``(dataset, base_model)`` form; the execution knobs are part of the
    key, so they must match the subsequent :func:`get_market` call.
    """
    return shared_pool().contains(_as_spec(dataset, base_model, seed, jobs, cache))


def get_market(
    dataset: str | MarketSpec,
    base_model: str = "random_forest",
    *,
    seed: int = 0,
    jobs: int = 1,
    cache: object = None,
) -> Market:
    """Build (or reuse) the full market stack for one dataset/model.

    Oracle construction dominates experiment cost, so markets are
    pooled per spec digest for the process lifetime — every
    figure/table for a given market shares one oracle, exactly as the
    paper's platform pre-computes gains once.  Because the digest
    covers ``jobs``/``cache`` too, a call with different oracle-build
    settings gets its own (freshly built, then cached) market instead
    of silently reusing one built under other settings.
    """
    return shared_pool().get(_as_spec(dataset, base_model, seed, jobs, cache))


def clear_market_cache() -> None:
    """Drop pooled markets (tests use this to control memory)."""
    shared_pool().clear()


def round_matrix(
    outcomes: list[BargainOutcome],
    field: str,
    *,
    max_round: int | None = None,
) -> np.ndarray:
    """Per-round values as an ``(n_runs, max_round)`` array.

    ``field`` is a :class:`~repro.market.engine.RoundRecord` attribute
    (``"net_profit"``, ``"payment"``, ``"delta_g"``).  Accepted runs are
    padded with their final value after termination (the agreed deal
    persists); failed runs are NaN after their last round, so per-round
    means aggregate over runs still alive — matching how the paper's
    curves remain defined while runs drop out.
    """
    if max_round is None:
        max_round = max(o.n_rounds for o in outcomes)
    matrix = np.full((len(outcomes), max_round), np.nan)
    for i, outcome in enumerate(outcomes):
        for record in outcome.history:
            if record.round_number <= max_round and record.bundle is not None:
                matrix[i, record.round_number - 1] = getattr(record, field)
        if outcome.accepted and outcome.n_rounds < max_round:
            matrix[i, outcome.n_rounds :] = getattr(
                outcome.history[-1], field
            )
    return matrix
