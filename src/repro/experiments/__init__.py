"""Experiment harness regenerating every table and figure of the paper."""

from repro.experiments.aggregate import (
    density,
    histogram,
    mean_ci,
    mean_std,
    nan_mean_ci,
)
from repro.experiments.config import BASE_MODELS, DATASETS, ExperimentScale, scale
from repro.experiments.figures import figure1_series, figure23_series, figure4_series
from repro.experiments.report import ascii_chart, format_table, write_csv
from repro.experiments.runner import (
    clear_market_cache,
    get_market,
    market_is_cached,
    round_matrix,
    spec_for,
)
from repro.experiments.tables import (
    ablation_epsilon_rows,
    ablation_market_rows,
    security_overhead_rows,
    table2_rows,
    table3_rows,
    table4_rows,
)

__all__ = [
    "BASE_MODELS",
    "DATASETS",
    "ExperimentScale",
    "ablation_epsilon_rows",
    "ablation_market_rows",
    "ascii_chart",
    "clear_market_cache",
    "density",
    "figure1_series",
    "figure23_series",
    "figure4_series",
    "format_table",
    "get_market",
    "market_is_cached",
    "histogram",
    "mean_ci",
    "mean_std",
    "nan_mean_ci",
    "round_matrix",
    "scale",
    "security_overhead_rows",
    "spec_for",
    "table2_rows",
    "table3_rows",
    "table4_rows",
    "write_csv",
]
