"""Statistical aggregation: means, confidence bands, densities."""

from __future__ import annotations

import warnings

import numpy as np
from scipy import stats

from repro.utils.validation import require

__all__ = ["density", "histogram", "mean_ci", "mean_std", "nan_mean_ci"]


def histogram(
    values: object, *, n_bins: int = 16, lo: float | None = None, hi: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-width histogram with deterministic, data-derived edges.

    Returns ``(edges, counts)`` with ``len(edges) == n_bins + 1``.
    Degenerate samples (a single point mass) get a unit-width bin
    around the value so the result is always renderable.  Used by the
    population simulator's aggregate report.
    """
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    require(arr.size >= 1, "need at least one finite value")
    require(n_bins >= 1, "n_bins must be >= 1")
    lo = float(arr.min()) if lo is None else float(lo)
    hi = float(arr.max()) if hi is None else float(hi)
    require(hi >= lo, f"histogram bounds must satisfy lo <= hi, got [{lo}, {hi}]")
    if hi - lo < 1e-12:
        half = max(abs(lo), 1.0) * 0.5
        lo, hi = lo - half, lo + half
    edges = np.linspace(lo, hi, n_bins + 1)
    counts, _ = np.histogram(arr, bins=edges)
    return edges, counts


def mean_ci(values: object, *, confidence: float = 0.95) -> tuple[float, float]:
    """Mean and half-width of the normal-approximation CI."""
    arr = np.asarray(values, dtype=float)
    require(arr.size >= 1, "need at least one value")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    z = float(stats.norm.ppf(0.5 + confidence / 2))
    half = z * float(arr.std(ddof=1)) / np.sqrt(arr.size)
    return mean, half


def mean_std(values: object) -> tuple[float, float]:
    """Mean and standard deviation (ddof=1 when possible)."""
    arr = np.asarray(values, dtype=float)
    require(arr.size >= 1, "need at least one value")
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(arr.std(ddof=1))


def nan_mean_ci(
    matrix: np.ndarray, *, confidence: float = 0.95, min_alive: int = 2
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Column-wise mean/CI ignoring NaN (runs that already terminated).

    Returns ``(mean, half_width, n_alive)`` per column; columns with
    fewer than ``min_alive`` live runs yield NaN means.
    """
    alive = np.sum(~np.isnan(matrix), axis=0)
    with np.errstate(invalid="ignore"), warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        mean = np.nanmean(matrix, axis=0)
        sd = np.nanstd(matrix, axis=0, ddof=1)
    z = float(stats.norm.ppf(0.5 + confidence / 2))
    half = z * sd / np.sqrt(np.maximum(alive, 1))
    mean = np.where(alive >= min_alive, mean, np.nan)
    half = np.where(alive >= min_alive, half, np.nan)
    return mean, half, alive


def density(samples: object, grid: np.ndarray | None = None, *, n_grid: int = 64):
    """Gaussian KDE over ``samples`` (paper's Figure 2 d/e panels).

    Returns ``(grid, density_values)``; degenerate samples (constant or
    too few) fall back to a point-mass histogram.
    """
    arr = np.asarray(samples, dtype=float)
    arr = arr[np.isfinite(arr)]
    require(arr.size >= 1, "need at least one finite sample")
    if grid is None:
        lo, hi = float(arr.min()), float(arr.max())
        span = (hi - lo) or max(abs(lo), 1.0) * 0.1
        grid = np.linspace(lo - 0.25 * span, hi + 0.25 * span, n_grid)
    if arr.size < 3 or np.ptp(arr) < 1e-12:
        values = np.zeros_like(grid)
        values[np.argmin(np.abs(grid - arr.mean()))] = 1.0
        return grid, values
    kde = stats.gaussian_kde(arr)
    return grid, kde(grid)
