"""Random Forest classifier — the paper's tree-based base model.

Bootstrap-aggregated histogram CARTs with per-node feature subsampling
(gini criterion, §4.1.2).  Binning happens once per forest; every tree
shares the :class:`~repro.ml.tree.BinnedDesign` and only draws bootstrap
row indices, which is what makes forest-based ΔG oracles affordable in
pure numpy.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, quantile_bin
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_matrix, check_vector, require

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bagged decision trees with majority-probability voting.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth / min_samples_leaf / max_bins:
        Forwarded to each :class:`~repro.ml.tree.DecisionTreeClassifier`.
    max_features:
        Per-node feature subsample; default ``"sqrt"`` (standard RF).
    bootstrap:
        Draw each tree's rows with replacement (disable for bagging-free
        ensembles in tests).
    rng:
        Seed/generator; per-tree streams are split deterministically.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        *,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: int | str | None = "sqrt",
        max_bins: int = 32,
        bootstrap: bool = True,
        rng: object = None,
    ):
        require(n_estimators >= 1, "n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.max_bins = int(max_bins)
        self.bootstrap = bool(bootstrap)
        self.rng = as_generator(rng)
        self.trees_: list[DecisionTreeClassifier] = []

    def fit(self, X: object, y: object) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of ``(X, y)``."""
        X = check_matrix(X)
        y = check_vector(y)
        design = quantile_bin(X, max_bins=self.max_bins)
        n = X.shape[0]
        self.trees_ = []
        for t in range(self.n_estimators):
            tree_rng = spawn(self.rng, "tree", t)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                max_bins=self.max_bins,
                rng=tree_rng,
            )
            if self.bootstrap:
                indices = tree_rng.integers(0, n, size=n)
            else:
                indices = None
            tree.fit_binned(design, y, sample_indices=indices)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: object) -> np.ndarray:
        """Mean of the trees' leaf probabilities."""
        require(bool(self.trees_), "forest must be fit before predicting")
        X = check_matrix(X)
        acc = np.zeros(X.shape[0])
        for tree in self.trees_:
            acc += tree.predict_proba(X)
        return acc / len(self.trees_)

    def predict(self, X: object) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 threshold."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def score(self, X: object, y: object) -> float:
        """Accuracy on ``(X, y)``."""
        y = check_vector(y, dtype=np.int64)
        return float((self.predict(X) == y).mean())
