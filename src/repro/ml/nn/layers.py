"""Neural-network building blocks with explicit forward/backward passes.

A deliberately small autograd-free design: each layer caches what it
needs during ``forward`` and returns input gradients from ``backward``.
Parameters are :class:`Parameter` objects (value + grad) so optimizers
can update them in place.  The VFL SplitNN protocol relies on this
explicitness — the boundary between parties is literally the boundary
between two layer stacks, with activations/gradients as the only
exchanged messages.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import require

__all__ = ["Dense", "EmbeddingBag", "Parameter", "ReLU", "Sequential"]


class Parameter:
    """A trainable array with an accumulated gradient."""

    __slots__ = ("value", "grad")

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)


class Layer:
    """Base class: stateless layers simply override the two passes."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """Trainable parameters (empty for stateless layers)."""
        return []


class Dense(Layer):
    """Affine map ``y = xW + b`` with He-scaled initialisation."""

    def __init__(self, n_in: int, n_out: int, *, rng: object = None):
        require(n_in >= 1 and n_out >= 1, "Dense dims must be >= 1")
        gen = as_generator(rng)
        scale = np.sqrt(2.0 / n_in)
        self.W = Parameter(gen.normal(0.0, scale, size=(n_in, n_out)))
        self.b = Parameter(np.zeros(n_out))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.W.value + self.b.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        require(self._x is not None, "backward called before forward")
        assert self._x is not None
        self.W.grad += self._x.T @ grad_out
        self.b.grad += grad_out.sum(axis=0)
        return grad_out @ self.W.value.T

    def parameters(self) -> list[Parameter]:
        return [self.W, self.b]


class ReLU(Layer):
    """Elementwise max(x, 0)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        require(self._mask is not None, "backward called before forward")
        return grad_out * self._mask


class EmbeddingBag(Layer):
    """Mean-pooled embedding lookup over variable-length index sets.

    The paper's data-party estimator ``g`` embeds each singular feature
    with ``nn.Embedding`` and averages the embeddings of the features in
    a bundle (§4.4).  ``forward`` takes a list of integer index arrays
    (one set per sample) and returns the per-sample mean embedding.
    """

    def __init__(self, num_embeddings: int, dim: int, *, rng: object = None):
        require(num_embeddings >= 1 and dim >= 1, "EmbeddingBag dims must be >= 1")
        gen = as_generator(rng)
        self.weight = Parameter(gen.normal(0.0, 0.1, size=(num_embeddings, dim)))
        self._batch: list[np.ndarray] | None = None

    def forward(self, index_sets: list[np.ndarray]) -> np.ndarray:  # type: ignore[override]
        batch = [np.asarray(ix, dtype=np.int64) for ix in index_sets]
        for ix in batch:
            require(ix.size > 0, "EmbeddingBag received an empty index set")
        self._batch = batch
        table = self.weight.value
        return np.stack([table[ix].mean(axis=0) for ix in batch])

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        require(self._batch is not None, "backward called before forward")
        assert self._batch is not None
        for row_grad, ix in zip(grad_out, self._batch):
            np.add.at(self.weight.grad, ix, row_grad / ix.size)
        # Index inputs have no gradient; return zeros of matching length.
        return np.zeros((len(self._batch), 0))

    def parameters(self) -> list[Parameter]:
        return [self.weight]


class Sequential(Layer):
    """Chain of layers applied in order."""

    def __init__(self, *layers: Layer):
        require(len(layers) >= 1, "Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: object) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params
