"""The paper's DNN base model: a 3-layer MLP classifier.

§4.1.2: *"the two parties collaboratively train a 3-layer multi-layer
perceptron (MLP), with embedding dimensions 64 and 32"*, learning rate
1e-2.  This module provides the centralised version; the federated
(SplitNN) variant lives in :mod:`repro.vfl.splitnn` and reuses the same
layers.
"""

from __future__ import annotations

import numpy as np

from repro.ml.nn.layers import Dense, ReLU, Sequential
from repro.ml.nn.losses import bce_with_logits, sigmoid
from repro.ml.nn.optim import Adam
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_matrix, check_vector, require

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """Binary MLP classifier with BCE loss and Adam updates.

    Parameters
    ----------
    hidden:
        Hidden-layer widths; the paper's base model uses ``(64, 32)``.
    epochs / batch_size / lr:
        Training schedule; paper defaults are lr=1e-2 and batch size
        128 (Titanic) or 512 (Credit/Adult).
    rng:
        Seed/generator for init and batch shuffling.
    """

    def __init__(
        self,
        hidden: tuple[int, ...] = (64, 32),
        *,
        epochs: int = 60,
        batch_size: int = 128,
        lr: float = 1e-2,
        rng: object = None,
    ):
        require(len(hidden) >= 1, "hidden must name at least one layer width")
        require(epochs >= 1, "epochs must be >= 1")
        require(batch_size >= 1, "batch_size must be >= 1")
        self.hidden = tuple(int(h) for h in hidden)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.rng = as_generator(rng)
        self.net_: Sequential | None = None
        self.loss_curve_: list[float] = []

    def _build(self, n_in: int) -> Sequential:
        layers: list[object] = []
        widths = [n_in, *self.hidden]
        for i, (a, b) in enumerate(zip(widths[:-1], widths[1:])):
            layers.append(Dense(a, b, rng=spawn(self.rng, "dense", i)))
            layers.append(ReLU())
        layers.append(Dense(widths[-1], 1, rng=spawn(self.rng, "head")))
        return Sequential(*layers)

    def fit(self, X: object, y: object) -> "MLPClassifier":
        """Minibatch-train on a binary 0/1 target."""
        X = check_matrix(X)
        y = check_vector(y)
        require(set(np.unique(y)) <= {0.0, 1.0}, "y must be binary 0/1")
        self.net_ = self._build(X.shape[1])
        optimizer = Adam(self.net_.parameters(), lr=self.lr)
        n = X.shape[0]
        self.loss_curve_ = []
        shuffle_rng = spawn(self.rng, "shuffle")
        for _ in range(self.epochs):
            order = shuffle_rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                logits = self.net_.forward(X[idx])
                loss, grad = bce_with_logits(logits, y[idx])
                optimizer.zero_grad()
                self.net_.backward(grad)
                optimizer.step()
                epoch_loss += loss
                n_batches += 1
            self.loss_curve_.append(epoch_loss / max(n_batches, 1))
        return self

    def _check_fitted(self) -> Sequential:
        require(self.net_ is not None, "model must be fit before predicting")
        assert self.net_ is not None
        return self.net_

    def predict_proba(self, X: object) -> np.ndarray:
        """P(y=1 | x) for each row."""
        net = self._check_fitted()
        return sigmoid(net.forward(check_matrix(X)).reshape(-1))

    def predict(self, X: object) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 threshold."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def score(self, X: object, y: object) -> float:
        """Accuracy on ``(X, y)``."""
        y = check_vector(y, dtype=np.int64)
        return float((self.predict(X) == y).mean())
