"""Loss functions returning ``(loss_value, gradient_wrt_prediction)``."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require

__all__ = ["bce_with_logits", "mse_loss", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def bce_with_logits(logits: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean binary cross-entropy on raw logits.

    Gradient is the classic ``(sigmoid(z) - y) / n`` — combining the
    sigmoid and the cross-entropy keeps it stable for large ``|z|``.
    """
    z = logits.reshape(-1)
    require(z.shape == np.shape(y), "logits and y must align")
    n = z.shape[0]
    # log(1 + exp(-|z|)) + max(z, 0) - z*y, stable in both tails.
    loss = float(np.mean(np.log1p(np.exp(-np.abs(z))) + np.maximum(z, 0) - z * y))
    grad = ((sigmoid(z) - y) / n).reshape(logits.shape)
    return loss, grad


def mse_loss(pred: np.ndarray, y: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error."""
    p = pred.reshape(-1)
    require(p.shape == np.shape(y), "pred and y must align")
    n = p.shape[0]
    residual = p - y
    loss = float(np.mean(residual**2))
    grad = (2.0 * residual / n).reshape(pred.shape)
    return loss, grad
