"""Optimizers updating :class:`~repro.ml.nn.layers.Parameter` objects in place."""

from __future__ import annotations

import numpy as np

from repro.ml.nn.layers import Parameter
from repro.utils.validation import check_positive, require

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        self.params = list(params)
        require(bool(self.params), "optimizer needs at least one parameter")
        self.lr = check_positive(lr, "lr")
        require(0.0 <= momentum < 1.0, "momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = list(params)
        require(bool(self.params), "optimizer needs at least one parameter")
        self.lr = check_positive(lr, "lr")
        self.beta1, self.beta2 = betas
        require(0.0 <= self.beta1 < 1.0, "beta1 must be in [0, 1)")
        require(0.0 <= self.beta2 < 1.0, "beta2 must be in [0, 1)")
        self.eps = float(eps)
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * p.grad**2
            p.value -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()
