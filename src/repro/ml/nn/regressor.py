"""Online MLP regressors for the ΔG-estimation networks (§3.5.1, §4.4).

Two variants, matching the paper:

* :class:`MLPRegressor` — the task party's estimator ``f``: a 3-layer
  MLP (widths 64/32/16) mapping a quoted price ``(p, P0, Ph)`` to a
  predicted performance gain.
* :class:`SetEmbeddingRegressor` — the data party's estimator ``g``:
  each singular feature gets an embedding; a bundle is represented by
  the **mean of its feature embeddings**, fed to the same MLP trunk.

Both support :meth:`partial_fit` because the paper trains the
estimators *while bargaining* — each VFL course appends one labelled
sample and triggers a few gradient steps.
"""

from __future__ import annotations

import numpy as np

from repro.ml.nn.layers import Dense, EmbeddingBag, ReLU, Sequential
from repro.ml.nn.losses import mse_loss
from repro.ml.nn.optim import Adam
from repro.utils.rng import as_generator, spawn
from repro.utils.validation import check_matrix, check_vector, require

__all__ = ["MLPRegressor", "SetEmbeddingRegressor"]


def _trunk(n_in: int, hidden: tuple[int, ...], rng: np.random.Generator) -> Sequential:
    layers: list[object] = []
    widths = [n_in, *hidden]
    for i, (a, b) in enumerate(zip(widths[:-1], widths[1:])):
        layers.append(Dense(a, b, rng=spawn(rng, "dense", i)))
        layers.append(ReLU())
    layers.append(Dense(widths[-1], 1, rng=spawn(rng, "head")))
    return Sequential(*layers)


class MLPRegressor:
    """Scalar-output MLP with MSE loss and incremental training."""

    def __init__(
        self,
        n_in: int,
        hidden: tuple[int, ...] = (64, 32, 16),
        *,
        lr: float = 1e-2,
        rng: object = None,
    ):
        require(n_in >= 1, "n_in must be >= 1")
        self.n_in = int(n_in)
        self.hidden = tuple(int(h) for h in hidden)
        self.rng = as_generator(rng)
        self.net = _trunk(self.n_in, self.hidden, self.rng)
        self.optimizer = Adam(self.net.parameters(), lr=lr)
        self.n_updates_ = 0

    def partial_fit(self, X: object, y: object, *, steps: int = 1) -> float:
        """Run ``steps`` full-batch gradient updates; returns final loss."""
        X = check_matrix(X)
        y = check_vector(y)
        require(X.shape[0] == y.shape[0], "X and y row mismatch")
        require(X.shape[1] == self.n_in, f"expected {self.n_in} inputs")
        loss = float("nan")
        for _ in range(max(1, int(steps))):
            pred = self.net.forward(X)
            loss, grad = mse_loss(pred, y)
            self.optimizer.zero_grad()
            self.net.backward(grad)
            self.optimizer.step()
            self.n_updates_ += 1
        return loss

    def predict(self, X: object) -> np.ndarray:
        """Point predictions for each row."""
        X = check_matrix(X)
        require(X.shape[1] == self.n_in, f"expected {self.n_in} inputs")
        return self.net.forward(X).reshape(-1)

    def mse(self, X: object, y: object) -> float:
        """Mean squared error on held-out pairs."""
        y = check_vector(y)
        return float(np.mean((self.predict(X) - y) ** 2))


class SetEmbeddingRegressor:
    """Bundle-to-ΔG regressor: mean feature embeddings + MLP trunk.

    Parameters
    ----------
    n_items:
        Vocabulary size (number of singular features the data party owns).
    embed_dim:
        Embedding width; the paper embeds then averages (§4.4).
    hidden:
        Trunk widths after the pooled embedding.
    """

    def __init__(
        self,
        n_items: int,
        *,
        embed_dim: int = 16,
        hidden: tuple[int, ...] = (64, 32, 16),
        lr: float = 1e-2,
        rng: object = None,
    ):
        require(n_items >= 1, "n_items must be >= 1")
        self.n_items = int(n_items)
        self.rng = as_generator(rng)
        self.embedding = EmbeddingBag(self.n_items, embed_dim, rng=spawn(self.rng, "emb"))
        self.trunk = _trunk(embed_dim, tuple(int(h) for h in hidden), self.rng)
        params = self.embedding.parameters() + self.trunk.parameters()
        self.optimizer = Adam(params, lr=lr)
        self.n_updates_ = 0

    def validate_set(self, indices: object) -> np.ndarray:
        """One index set checked and converted to an ``int64`` array.

        Callers that keep a replay buffer validate each set once on
        arrival and pass ``validate=False`` on later rounds, so the
        per-round cost tracks the buffer *growth*, not its size.
        """
        arr = np.asarray(list(indices), dtype=np.int64)
        require(arr.size > 0, "bundles must be non-empty")
        require(
            arr.min() >= 0 and arr.max() < self.n_items,
            f"feature ids must be in [0, {self.n_items})",
        )
        return arr

    def _validate_sets(
        self, index_sets: list[object], validate: bool
    ) -> list[np.ndarray]:
        if not validate:
            return index_sets  # already validated int64 arrays
        return [self.validate_set(ix) for ix in index_sets]

    def partial_fit(
        self,
        index_sets: list[object],
        y: object,
        *,
        steps: int = 1,
        validate: bool = True,
    ) -> float:
        """Run ``steps`` gradient updates on (bundle, ΔG) pairs; returns final loss."""
        batch = self._validate_sets(index_sets, validate)
        y = check_vector(y)
        require(len(batch) == y.shape[0], "index_sets and y length mismatch")
        loss = float("nan")
        for _ in range(max(1, int(steps))):
            pooled = self.embedding.forward(batch)
            pred = self.trunk.forward(pooled)
            loss, grad = mse_loss(pred, y)
            self.optimizer.zero_grad()
            grad_pooled = self.trunk.backward(grad)
            self.embedding.backward(grad_pooled)
            self.optimizer.step()
            self.n_updates_ += 1
        return loss

    def predict(
        self, index_sets: list[object], *, validate: bool = True
    ) -> np.ndarray:
        """Predicted ΔG for each bundle."""
        batch = self._validate_sets(index_sets, validate)
        pooled = self.embedding.forward(batch)
        return self.trunk.forward(pooled).reshape(-1)

    def mse(
        self, index_sets: list[object], y: object, *, validate: bool = True
    ) -> float:
        """Mean squared error on held-out pairs."""
        y = check_vector(y)
        return float(
            np.mean((self.predict(index_sets, validate=validate) - y) ** 2)
        )
