"""From-scratch numpy neural networks (layers, losses, optimizers, models)."""

from repro.ml.nn.layers import Dense, EmbeddingBag, Parameter, ReLU, Sequential
from repro.ml.nn.losses import bce_with_logits, mse_loss, sigmoid
from repro.ml.nn.mlp import MLPClassifier
from repro.ml.nn.optim import SGD, Adam
from repro.ml.nn.regressor import MLPRegressor, SetEmbeddingRegressor

__all__ = [
    "Adam",
    "Dense",
    "EmbeddingBag",
    "MLPClassifier",
    "MLPRegressor",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "SetEmbeddingRegressor",
    "bce_with_logits",
    "mse_loss",
    "sigmoid",
]
