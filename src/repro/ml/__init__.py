"""Machine-learning substrate: the paper's two base models plus support.

* :class:`~repro.ml.forest.RandomForestClassifier` — tree-based base model.
* :class:`~repro.ml.nn.mlp.MLPClassifier` — the 3-layer MLP base model.
* :class:`~repro.ml.nn.regressor.MLPRegressor` /
  :class:`~repro.ml.nn.regressor.SetEmbeddingRegressor` — the ΔG
  estimation networks of the imperfect-information setting.

Everything is implemented from scratch on numpy (no sklearn/torch).
"""

from repro.ml import metrics
from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.model_selection import KFold, cross_val_score
from repro.ml.nn import MLPClassifier, MLPRegressor, SetEmbeddingRegressor
from repro.ml.tree import DecisionTreeClassifier, quantile_bin

__all__ = [
    "DecisionTreeClassifier",
    "KFold",
    "LogisticRegression",
    "MLPClassifier",
    "MLPRegressor",
    "RandomForestClassifier",
    "SetEmbeddingRegressor",
    "cross_val_score",
    "metrics",
    "quantile_bin",
]
