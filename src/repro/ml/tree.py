"""Histogram-based CART decision tree (gini) for binary classification.

This is the building block of the paper's Random Forest base model
(§4.1.2: *"a Random Forest model, with gini index as the splitting
metric"*).  Features are quantile-binned once (``max_bins`` levels);
each node then scores **every (feature, threshold) candidate at once**
from two ``bincount`` histograms, which keeps a pure-numpy tree fast
enough to power thousands of VFL courses inside bargaining simulations.

Binary labels only — every task in the paper's evaluation is binary
classification.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_vector, require

__all__ = [
    "BinnedDesign",
    "DecisionTreeClassifier",
    "best_split",
    "node_histograms",
    "quantile_bin",
    "resolve_max_features",
]


def resolve_max_features(max_features: int | str | None, d: int) -> int:
    """Per-node feature-subsample size: ``None`` (all), ``"sqrt"``, or int.

    One definition shared by the tree, the forest and the oracle
    factory's replay kernel — the kernel's bit-identity depends on
    resolving exactly like the tree does.
    """
    if max_features is None:
        return d
    if max_features == "sqrt":
        return max(1, int(np.sqrt(d)))
    mf = int(max_features)
    require(1 <= mf <= d, f"max_features must be in [1, {d}]")
    return mf

_LEAF = -1


class BinnedDesign:
    """A quantile-binned feature matrix shared across trees.

    Attributes
    ----------
    codes:
        ``(n, d)`` uint8 bin codes; ``codes[i, j] = searchsorted(edges[j], X[i, j])``.
    edges:
        Per-feature ascending threshold arrays; splitting at bin ``b``
        sends rows with ``x <= edges[j][b]`` to the left child.
    n_bins:
        The padded bin count used for histogram layout.
    """

    __slots__ = ("codes", "edges", "n_bins")

    def __init__(self, codes: np.ndarray, edges: list[np.ndarray]):
        self.codes = codes
        self.edges = edges
        self.n_bins = int(codes.max(initial=0)) + 1 if codes.size else 1

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return int(self.codes.shape[0])

    @property
    def n_features(self) -> int:
        """Number of features."""
        return int(self.codes.shape[1])


def quantile_bin(X: object, *, max_bins: int = 32) -> BinnedDesign:
    """Bin each feature at (approximate) quantile thresholds.

    Features with few distinct values (e.g. indicator columns) keep one
    bin per value, so indicator splits stay exact.

    The per-column work is batched around **one** matrix sort: sorted
    columns yield every column's distinct values directly, and the
    linear-interpolation quantiles of all high-cardinality columns are
    read off the same sorted matrix in one vectorised pass (replicating
    ``np.quantile``'s lerp exactly, including its ``t >= 0.5`` branch).
    Edges and codes equal the per-column formulation bit for bit —
    pinned by ``tests/ml/test_tree.py``.
    """
    X = check_matrix(X)
    require(2 <= max_bins <= 256, "max_bins must be in [2, 256]")
    # NaN/inf would silently poison edges (and NaN != NaN breaks the
    # distinct-value count below); the preprocessing pipeline imputes
    # before binning, so reject rather than bin garbage.
    require(bool(np.isfinite(X).all()), "quantile_bin requires finite values")
    n, d = X.shape
    codes = np.empty((n, d), dtype=np.uint8)
    edges: list[np.ndarray] = []
    quantiles = np.linspace(0, 1, max_bins + 1)[1:-1]
    X_sorted = np.sort(X, axis=0)
    is_new = np.empty((n, d), dtype=bool)
    is_new[:1] = True
    np.not_equal(X_sorted[1:], X_sorted[:-1], out=is_new[1:])
    n_unique = is_new.sum(axis=0)
    dense = np.flatnonzero(n_unique > max_bins)
    dense_pos = {int(j): i for i, j in enumerate(dense)}
    if dense.size:
        # np.quantile(col, q) with the default linear method reads two
        # order statistics per quantile and lerps; with the sort in hand
        # that is a gather + lerp over all dense columns at once.
        pos = quantiles * (n - 1)
        lo = np.floor(pos).astype(np.int64)
        t = pos - lo
        a = X_sorted[np.ix_(lo, dense)]
        b = X_sorted[np.ix_(lo + 1, dense)]
        diff = b - a
        dense_cuts = a + diff * t[:, None]
        hi = t >= 0.5  # numpy's _lerp switches formulas here; match it
        dense_cuts[hi] = b[hi] - diff[hi] * (1.0 - t[hi])[:, None]
    for j in range(d):
        col = X[:, j]
        if j in dense_pos:
            cut = np.unique(dense_cuts[:, dense_pos[j]])
        else:
            uniq = X_sorted[is_new[:, j], j]
            cut = (uniq[:-1] + uniq[1:]) / 2.0
        codes[:, j] = np.searchsorted(cut, col, side="right")
        edges.append(cut.astype(np.float64))
    return BinnedDesign(codes, edges)


def node_histograms(
    codes_sub: np.ndarray, y_node: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-(feature, bin) count and positive-count histograms for one node.

    This is the unit of work each party computes locally in the
    federated forest protocol: ``codes_sub`` holds that party's binned
    columns for the node's rows and ``y_node`` the (conceptually
    encrypted) labels.
    """
    n_node, d = codes_sub.shape
    offsets = (np.arange(d, dtype=np.int64) * n_bins)[None, :]
    flat = (codes_sub.astype(np.int64) + offsets).ravel()
    cnt = np.bincount(flat, minlength=d * n_bins).reshape(d, n_bins)
    pos = np.bincount(flat, weights=np.repeat(y_node, d), minlength=d * n_bins).reshape(
        d, n_bins
    )
    return cnt.astype(np.float64), pos


def best_split(
    cnt: np.ndarray,
    pos_hist: np.ndarray,
    *,
    valid_cut: np.ndarray,
    min_samples_leaf: int,
    allowed_features: np.ndarray | None = None,
) -> tuple[int, int, float] | None:
    """Gini-optimal (feature, bin) over candidate-threshold histograms.

    Maximises ``sum_child n_child * (p^2 + (1-p)^2)`` — equivalent to
    minimising the weighted gini impurity of the children.  Returns
    ``None`` when no candidate satisfies the leaf-size constraints or
    none improves on the parent impurity.
    """
    n_node = float(cnt[0].sum())
    pos = float(pos_hist[0].sum())
    cnt_l = np.cumsum(cnt, axis=1)[:, :-1]
    pos_l = np.cumsum(pos_hist, axis=1)[:, :-1]
    cnt_r = n_node - cnt_l
    pos_r = pos - pos_l
    ok = valid_cut & (cnt_l >= min_samples_leaf) & (cnt_r >= min_samples_leaf)
    if allowed_features is not None:
        ok = ok & allowed_features[:, None]
    if not ok.any():
        return None
    with np.errstate(divide="ignore", invalid="ignore"):
        score = (pos_l**2 + (cnt_l - pos_l) ** 2) / cnt_l + (
            pos_r**2 + (cnt_r - pos_r) ** 2
        ) / cnt_r
    score = np.where(ok, score, -np.inf)
    flat_best = int(np.argmax(score))
    f, b = divmod(flat_best, score.shape[1])
    parent_score = (pos**2 + (n_node - pos) ** 2) / n_node
    if score[f, b] <= parent_score + 1e-12:
        return None
    return f, b, float(score[f, b])


class DecisionTreeClassifier:
    """CART with gini impurity over pre-binned features.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split / min_samples_leaf:
        Pre-pruning thresholds.
    max_features:
        Per-node feature subsample: ``None`` (all), ``"sqrt"``, or an int.
    max_bins:
        Histogram resolution used when :meth:`fit` bins internally.
    rng:
        Seed/generator for the per-node feature subsampling.
    """

    def __init__(
        self,
        *,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        max_bins: int = 32,
        rng: object = None,
    ):
        require(max_depth >= 1, "max_depth must be >= 1")
        require(min_samples_split >= 2, "min_samples_split must be >= 2")
        require(min_samples_leaf >= 1, "min_samples_leaf must be >= 1")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.max_bins = int(max_bins)
        self.rng = as_generator(rng)
        # Flat node arrays, filled during fit.
        self.feature_: list[int] = []
        self.threshold_: list[float] = []
        self.left_: list[int] = []
        self.right_: list[int] = []
        self.value_: list[float] = []
        self.n_nodes_: int = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def _resolve_max_features(self, d: int) -> int:
        return resolve_max_features(self.max_features, d)

    def fit(self, X: object, y: object) -> "DecisionTreeClassifier":
        """Bin ``X`` and grow the tree."""
        X = check_matrix(X)
        design = quantile_bin(X, max_bins=self.max_bins)
        return self.fit_binned(design, check_vector(y))

    def fit_binned(
        self,
        design: BinnedDesign,
        y: np.ndarray,
        sample_indices: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        """Grow the tree on a pre-binned design (forest fast path).

        ``sample_indices`` selects (possibly repeated) bootstrap rows.
        """
        y = check_vector(y)
        require(set(np.unique(y)) <= {0.0, 1.0}, "y must be binary 0/1")
        require(design.n_samples == y.shape[0], "design/y row mismatch")
        codes = design.codes
        if sample_indices is not None:
            codes = codes[np.asarray(sample_indices)]
            y = y[np.asarray(sample_indices)]
        d = design.n_features
        n_bins = design.n_bins
        max_feat = self._resolve_max_features(d)
        # Per-feature number of *valid* split candidates.
        n_cuts = np.array([e.shape[0] for e in design.edges], dtype=np.int64)
        bin_index = np.arange(n_bins - 1)[None, :] if n_bins > 1 else np.zeros((1, 0))
        valid_cut = bin_index < n_cuts[:, None]  # (d, n_bins-1)

        self.feature_, self.threshold_ = [], []
        self.left_, self.right_, self.value_ = [], [], []

        def new_node() -> int:
            self.feature_.append(_LEAF)
            self.threshold_.append(0.0)
            self.left_.append(_LEAF)
            self.right_.append(_LEAF)
            self.value_.append(0.0)
            return len(self.feature_) - 1

        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(y.shape[0]), 0)]
        while stack:
            node, rows, depth = stack.pop()
            y_node = y[rows]
            n_node = rows.shape[0]
            pos = float(y_node.sum())
            self.value_[node] = pos / n_node
            if (
                depth >= self.max_depth
                or n_node < self.min_samples_split
                or pos == 0.0
                or pos == n_node
                or n_bins <= 1
            ):
                continue
            sub = codes[rows]  # (n_node, d) uint8 copy
            cnt, pos_hist = node_histograms(sub, y_node, n_bins)
            allowed = None
            if max_feat < d:
                chosen = self.rng.choice(d, size=max_feat, replace=False)
                allowed = np.zeros(d, dtype=bool)
                allowed[chosen] = True
            found = best_split(
                cnt,
                pos_hist,
                valid_cut=valid_cut,
                min_samples_leaf=self.min_samples_leaf,
                allowed_features=allowed,
            )
            if found is None:
                continue
            f, b, _ = found
            go_left = sub[:, f] <= b
            left_id, right_id = new_node(), new_node()
            self.feature_[node] = f
            self.threshold_[node] = float(design.edges[f][b])
            self.left_[node] = left_id
            self.right_[node] = right_id
            stack.append((left_id, rows[go_left], depth + 1))
            stack.append((right_id, rows[~go_left], depth + 1))
        self.n_nodes_ = len(self.feature_)
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        require(self.n_nodes_ > 0, "tree must be fit before predicting")

    def predict_proba(self, X: object) -> np.ndarray:
        """P(y=1 | x) from the leaf each row lands in."""
        self._check_fitted()
        X = check_matrix(X)
        feature = np.asarray(self.feature_)
        threshold = np.asarray(self.threshold_)
        left = np.asarray(self.left_)
        right = np.asarray(self.right_)
        value = np.asarray(self.value_)
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = feature[node] != _LEAF
        while active.any():
            idx = np.flatnonzero(active)
            cur = node[idx]
            go_left = X[idx, feature[cur]] <= threshold[cur]
            node[idx] = np.where(go_left, left[cur], right[cur])
            active[idx] = feature[node[idx]] != _LEAF
        return value[node]

    def predict(self, X: object) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 threshold."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def score(self, X: object, y: object) -> float:
        """Accuracy on ``(X, y)``."""
        y = check_vector(y, dtype=np.int64)
        return float((self.predict(X) == y).mean())

    @property
    def depth_(self) -> int:
        """Realised depth of the fitted tree."""
        self._check_fitted()
        depth = [0] * self.n_nodes_
        for node in range(self.n_nodes_):
            if self.feature_[node] != _LEAF:
                depth[self.left_[node]] = depth[node] + 1
                depth[self.right_[node]] = depth[node] + 1
        return max(depth)
