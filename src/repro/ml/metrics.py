"""Classification and regression metrics.

The paper evaluates base-model performance with **accuracy** (§4.1.1);
the wider metric set here supports the test-suite and the estimation
networks (MSE for Figure 4).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_vector, require

__all__ = [
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "log_loss",
    "mean_absolute_error",
    "mean_squared_error",
    "precision",
    "recall",
    "roc_auc",
]


def _binary_pair(y_true: object, y_pred: object) -> tuple[np.ndarray, np.ndarray]:
    t = check_vector(y_true, "y_true", dtype=np.int64)
    p = check_vector(y_pred, "y_pred", dtype=np.int64)
    require(t.shape == p.shape, "y_true and y_pred must have the same length")
    return t, p


def accuracy(y_true: object, y_pred: object) -> float:
    """Fraction of exact label matches."""
    t, p = _binary_pair(y_true, y_pred)
    return float((t == p).mean())


def confusion_matrix(y_true: object, y_pred: object) -> np.ndarray:
    """2x2 matrix ``[[tn, fp], [fn, tp]]`` for binary labels."""
    t, p = _binary_pair(y_true, y_pred)
    require(set(np.unique(t)) <= {0, 1}, "labels must be binary (0/1)")
    require(set(np.unique(p)) <= {0, 1}, "predictions must be binary (0/1)")
    tn = int(((t == 0) & (p == 0)).sum())
    fp = int(((t == 0) & (p == 1)).sum())
    fn = int(((t == 1) & (p == 0)).sum())
    tp = int(((t == 1) & (p == 1)).sum())
    return np.array([[tn, fp], [fn, tp]])


def precision(y_true: object, y_pred: object) -> float:
    """tp / (tp + fp); zero when nothing was predicted positive."""
    (_, fp), (_, tp) = confusion_matrix(y_true, y_pred)
    return float(tp / (tp + fp)) if (tp + fp) else 0.0


def recall(y_true: object, y_pred: object) -> float:
    """tp / (tp + fn); zero when there are no positives."""
    (_, _), (fn, tp) = confusion_matrix(y_true, y_pred)
    return float(tp / (tp + fn)) if (tp + fn) else 0.0


def f1_score(y_true: object, y_pred: object) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2 * p * r / (p + r) if (p + r) else 0.0


def roc_auc(y_true: object, y_score: object) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged)."""
    t = check_vector(y_true, "y_true", dtype=np.int64)
    s = check_vector(y_score, "y_score")
    require(t.shape == s.shape, "y_true and y_score must have the same length")
    n_pos = int(t.sum())
    n_neg = t.shape[0] - n_pos
    require(n_pos > 0 and n_neg > 0, "roc_auc needs both classes present")
    order = np.argsort(s, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, t.shape[0] + 1)
    # Average ranks within tied score groups.
    sorted_scores = s[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    rank_sum_pos = ranks[t == 1].sum()
    return float((rank_sum_pos - n_pos * (n_pos + 1) / 2) / (n_pos * n_neg))


def log_loss(y_true: object, y_prob: object, *, eps: float = 1e-12) -> float:
    """Binary cross-entropy of predicted probabilities."""
    t = check_vector(y_true)
    p = np.clip(check_vector(y_prob), eps, 1 - eps)
    require(t.shape == p.shape, "y_true and y_prob must have the same length")
    return float(-(t * np.log(p) + (1 - t) * np.log(1 - p)).mean())


def mean_squared_error(y_true: object, y_pred: object) -> float:
    """Mean of squared residuals."""
    t = check_vector(y_true)
    p = check_vector(y_pred)
    require(t.shape == p.shape, "y_true and y_pred must have the same length")
    return float(np.mean((t - p) ** 2))


def mean_absolute_error(y_true: object, y_pred: object) -> float:
    """Mean of absolute residuals."""
    t = check_vector(y_true)
    p = check_vector(y_pred)
    require(t.shape == p.shape, "y_true and y_pred must have the same length")
    return float(np.mean(np.abs(t - p)))
