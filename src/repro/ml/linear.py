"""Logistic regression via full-batch gradient descent.

Not one of the paper's base models, but a cheap, convex reference
classifier: the VFL equivalence tests and several ablations use it to
sanity-check the performance-gain landscape independently of the more
complex tree/NN models.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix, check_positive, check_vector, require

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """L2-regularised binary logistic regression.

    Parameters
    ----------
    lr:
        Gradient-descent step size.
    l2:
        Ridge penalty on the weights (not the intercept).
    max_iter:
        Number of full-batch gradient steps.
    tol:
        Early-stop when the gradient norm falls below this.
    """

    def __init__(
        self,
        *,
        lr: float = 0.5,
        l2: float = 1e-3,
        max_iter: int = 500,
        tol: float = 1e-6,
    ):
        self.lr = check_positive(lr, "lr")
        self.l2 = float(l2)
        require(self.l2 >= 0, "l2 must be >= 0")
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: object, y: object) -> "LogisticRegression":
        """Fit on a binary 0/1 target."""
        X = check_matrix(X)
        y = check_vector(y)
        require(set(np.unique(y)) <= {0.0, 1.0}, "y must be binary 0/1")
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.max_iter):
            margin = X @ w + b
            residual = _sigmoid(margin) - y
            grad_w = X.T @ residual / n + self.l2 * w
            grad_b = float(residual.mean())
            w -= self.lr * grad_w
            b -= self.lr * grad_b
            if np.sqrt((grad_w**2).sum() + grad_b**2) < self.tol:
                break
        self.coef_, self.intercept_ = w, b
        return self

    def _check_fitted(self) -> np.ndarray:
        require(self.coef_ is not None, "model must be fit before predicting")
        assert self.coef_ is not None
        return self.coef_

    def decision_function(self, X: object) -> np.ndarray:
        """Raw logits ``Xw + b``."""
        w = self._check_fitted()
        return check_matrix(X) @ w + self.intercept_

    def predict_proba(self, X: object) -> np.ndarray:
        """P(y=1 | x) for each row."""
        return _sigmoid(self.decision_function(X))

    def predict(self, X: object) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 threshold."""
        return (self.predict_proba(X) >= 0.5).astype(np.int64)

    def score(self, X: object, y: object) -> float:
        """Accuracy on ``(X, y)``."""
        y = check_vector(y, dtype=np.int64)
        return float((self.predict(X) == y).mean())
