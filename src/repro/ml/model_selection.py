"""Model-selection utilities: K-fold cross-validation and scoring."""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_vector, require

__all__ = ["KFold", "cross_val_score"]


class KFold:
    """Shuffled K-fold splitter.

    >>> folds = list(KFold(3, rng=0).split(9))
    >>> sorted(len(te) for _, te in folds)
    [3, 3, 3]
    """

    def __init__(self, n_splits: int = 5, *, rng: object = None):
        require(n_splits >= 2, "n_splits must be >= 2")
        self.n_splits = int(n_splits)
        self.rng = as_generator(rng)

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs covering all samples."""
        require(
            n_samples >= self.n_splits,
            f"need at least n_splits={self.n_splits} samples, got {n_samples}",
        )
        order = self.rng.permutation(n_samples)
        folds = np.array_split(order, self.n_splits)
        for k in range(self.n_splits):
            test = np.sort(folds[k])
            train = np.sort(np.concatenate([folds[j] for j in range(self.n_splits) if j != k]))
            yield train, test


def cross_val_score(
    model_factory: Callable[[], object],
    X: object,
    y: object,
    *,
    n_splits: int = 5,
    rng: object = None,
) -> np.ndarray:
    """Accuracy of ``model_factory()`` across K folds.

    A fresh model is built per fold, so stateful models cannot leak
    between folds.
    """
    X = check_matrix(X)
    y = check_vector(y)
    scores = []
    for train, test in KFold(n_splits, rng=rng).split(X.shape[0]):
        model = model_factory()
        model.fit(X[train], y[train])
        scores.append(model.score(X[test], y[test]))
    return np.asarray(scores)
