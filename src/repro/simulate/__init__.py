"""Population-scale bargaining simulation.

The paper evaluates one negotiation at a time; this subsystem runs
*populations* of heterogeneous bargaining sessions concurrently —
the workload a production feature market actually serves.  Layered as:

* :mod:`~repro.simulate.population` — vectorised sampling of ``N``
  session specs (buyer economics, reserved prices, strategy/cost mix)
  from preset-anchored distributions;
* :mod:`~repro.simulate.kernel` — the vectorised batch kernel for
  strategic-vs-strategic sessions;
* :mod:`~repro.simulate.pool` — the :class:`SessionPool` scheduler
  advancing every session round-by-round (batch kernel + stepwise
  :meth:`~repro.market.engine.BargainingEngine.step` fallback);
* :mod:`~repro.simulate.report` — population-level aggregates with a
  determinism digest.

Typical use::

    from repro.simulate import PopulationSpec, sample_population, SessionPool
    from repro.simulate import build_report

    spec = PopulationSpec(preset="titanic")
    population = sample_population(spec, 10_000, seed=0)
    result = SessionPool(population, batch_size=1024).run()
    print(build_report(population, result).to_text())

or from the command line: ``python -m repro simulate --sessions 10000``.
"""

from repro.simulate.pool import PoolResult, SessionPool
from repro.simulate.population import Population, PopulationSpec, sample_population
from repro.simulate.report import SimulationReport, build_report

__all__ = [
    "Population",
    "PopulationSpec",
    "PoolResult",
    "SessionPool",
    "SimulationReport",
    "build_report",
    "sample_population",
]
