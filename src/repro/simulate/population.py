"""Population sampling: heterogeneous bargaining sessions at scale.

A production feature market does not play one negotiation — it serves a
*population* of concurrent buyers whose economics differ: utility
rates, budgets, opening quotes, termination tolerances, bargaining-cost
schedules and even strategy sophistication all vary across tenants.
:func:`sample_population` draws ``N`` such session specifications in one
vectorised pass from per-preset distributions anchored to the paper's
calibrations (:mod:`repro.market.presets`), so the whole population is
reproducible from ``(spec, seed)`` alone.

All sessions in a population trade the same catalogue against the same
trusted-platform oracle (the platform pre-computes each bundle's ΔG
once, §3.4); what varies per session is the buyer's economics, the
seller's idiosyncratic reserved prices, and the strategy/cost mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.market.bundle import FeatureBundle, sample_bundles
from repro.market.config import MarketConfig
from repro.market.costs import CostModel
from repro.market.engine import BargainingEngine
from repro.market.oracle import PerformanceOracle, synthetic_gains
from repro.market.pricing import ReservedPrice
from repro.service import registry
from repro.utils.canonical import content_digest
from repro.utils.rng import spawn
from repro.utils.validation import require

__all__ = ["Population", "PopulationSpec", "sample_population"]

# Cost kinds the vectorised batch kernel implements, in its int8 code
# order.  Registered kinds beyond these are valid in a ``cost_mix`` but
# route their sessions through the stepwise engine path (code -1).
_COST_KINDS = ("none", "constant", "linear", "exponential")


@dataclass(frozen=True)
class PopulationSpec:
    """Distributional description of a session population.

    Attributes
    ----------
    preset:
        Calibration anchor: one of the paper's datasets (``titanic``,
        ``credit``, ``adult``) or ``synthetic`` (no dataset needed).
    n_features / n_bundles:
        Catalogue geometry shared by every session.
    strategy_mix:
        ``(task_kind, data_kind, weight)`` triples; weights need not
        sum to one.  Kinds are ``strategic``/``increase_price`` for the
        task party and ``strategic``/``random_bundle`` for the data
        party.
    cost_mix:
        ``(kind, a, weight)`` triples over bargaining-cost schedules
        (``none``/``constant``/``linear``/``exponential``), applied to
        both parties as in the paper's Table 3.
    utility_jitter / rate_jitter / base_jitter / budget_jitter:
        Log-normal sigmas applied to the preset's ``u``, ``p^0``,
        ``P0^0`` and budget.
    eps_spread:
        Half-width, in decades, of the log-uniform spread applied to
        the preset's ``ε_d``/``ε_t``.
    target_quantile_range:
        Per-session target gains are quantiles of the shared catalogue
        drawn uniformly from this interval.
    max_rounds / n_price_samples:
        Protocol constants shared by every session.
    """

    preset: str = "synthetic"
    n_features: int = 12
    n_bundles: int = 24
    strategy_mix: tuple[tuple[str, str, float], ...] = (
        ("strategic", "strategic", 1.0),
    )
    cost_mix: tuple[tuple[str, float, float], ...] = (("none", 0.0, 1.0),)
    utility_jitter: float = 0.10
    rate_jitter: float = 0.05
    base_jitter: float = 0.05
    budget_jitter: float = 0.10
    eps_spread: float = 0.5
    target_quantile_range: tuple[float, float] = (0.70, 1.0)
    max_rounds: int = 500
    n_price_samples: int = 120

    def __post_init__(self) -> None:
        require(self.preset in registry.DATASETS,
                f"preset must be one of {list(registry.preset_names())}")
        require(self.n_features >= 1, "n_features must be >= 1")
        require(self.n_bundles >= 2, "n_bundles must be >= 2")
        require(bool(self.strategy_mix), "strategy_mix must not be empty")
        for task, data, weight in self.strategy_mix:
            require(task in registry.TASK_STRATEGIES,
                    f"unknown task strategy {task!r}")
            require(data in registry.DATA_STRATEGIES,
                    f"unknown data strategy {data!r}")
            require(weight > 0, "strategy weights must be > 0")
        require(bool(self.cost_mix), "cost_mix must not be empty")
        for kind, a, weight in self.cost_mix:
            require(kind in registry.COSTS, f"unknown cost kind {kind!r}")
            # Enforce each kind's parameter constraints here so an
            # invalid schedule fails at spec construction — not
            # mid-run on the stepwise path while the vectorised
            # kernel silently simulates it.
            registry.COSTS.get(kind).validate(a)
            require(weight > 0, "cost weights must be > 0")
        lo, hi = self.target_quantile_range
        require(0 < lo <= hi <= 1.0, "target_quantile_range must be in (0, 1]")
        require(self.max_rounds >= 1, "max_rounds must be >= 1")
        require(self.n_price_samples >= 1, "n_price_samples must be >= 1")

    def base_config(self) -> MarketConfig:
        """The preset's calibrated constants (before per-session jitter)."""
        return registry.DATASETS.get(self.preset).preset.config

    def reserved_params(self) -> dict:
        """The preset's reserved-price calibration."""
        return dict(registry.DATASETS.get(self.preset).preset.reserved_price_params)

    def gain_scale(self) -> float:
        """ΔG magnitude anchoring this preset's synthetic catalogues."""
        return registry.DATASETS.get(self.preset).gain_scale

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical plain-dict form (tuples become JSON-native lists)."""
        return {
            "preset": self.preset,
            "n_features": self.n_features,
            "n_bundles": self.n_bundles,
            "strategy_mix": [list(t) for t in self.strategy_mix],
            "cost_mix": [list(t) for t in self.cost_mix],
            "utility_jitter": self.utility_jitter,
            "rate_jitter": self.rate_jitter,
            "base_jitter": self.base_jitter,
            "budget_jitter": self.budget_jitter,
            "eps_spread": self.eps_spread,
            "target_quantile_range": list(self.target_quantile_range),
            "max_rounds": self.max_rounds,
            "n_price_samples": self.n_price_samples,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PopulationSpec":
        """Inverse of :meth:`to_dict`; unknown keys are hard errors."""
        require(isinstance(payload, dict), "PopulationSpec payload must be a dict")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        require(not unknown,
                f"unknown PopulationSpec keys {unknown}; known: {sorted(known)}")
        data = dict(payload)
        if "strategy_mix" in data:
            data["strategy_mix"] = tuple(tuple(t) for t in data["strategy_mix"])
        if "cost_mix" in data:
            data["cost_mix"] = tuple(tuple(t) for t in data["cost_mix"])
        if "target_quantile_range" in data:
            data["target_quantile_range"] = tuple(data["target_quantile_range"])
        return cls(**data)

    def digest(self) -> str:
        """Content digest over :meth:`to_dict` (the shared canonical hash)."""
        return content_digest(self.to_dict())


@dataclass
class Population:
    """``N`` sampled sessions over one shared catalogue.

    Scalar per-session parameters are stored as parallel numpy arrays
    (the vectorised kernel consumes them directly); :meth:`config`,
    :meth:`reserved` and :meth:`build_engine` materialise the object
    form of session ``i`` for the stepwise engine path and for naive
    one-by-one baselines.
    """

    spec: PopulationSpec
    seed: int
    n_sessions: int
    bundles: list[FeatureBundle]
    gains: np.ndarray  # (F,)
    reserved_rate: np.ndarray  # (N, F)
    reserved_base: np.ndarray  # (N, F)
    utility_rate: np.ndarray  # (N,)
    budget: np.ndarray
    initial_rate: np.ndarray
    initial_base: np.ndarray
    target: np.ndarray
    eps_d: np.ndarray
    eps_t: np.ndarray
    eps_dc: np.ndarray
    eps_tc: np.ndarray
    mix_idx: np.ndarray  # (N,) index into spec.strategy_mix
    cost_idx: np.ndarray  # (N,) index into spec.cost_mix
    cost_kind: np.ndarray  # (N,) int8 code into _COST_KINDS
    cost_a: np.ndarray  # (N,)
    oracle: PerformanceOracle = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.oracle is None:
            self.oracle = PerformanceOracle.from_gains(self.gains_dict())

    # ------------------------------------------------------------------
    def gains_dict(self) -> dict[FeatureBundle, float]:
        """The shared catalogue as a ``bundle -> ΔG`` mapping."""
        return {b: float(g) for b, g in zip(self.bundles, self.gains)}

    def strategy_pair(self, i: int) -> tuple[str, str]:
        """``(task_kind, data_kind)`` of session ``i``."""
        task, data, _ = self.spec.strategy_mix[int(self.mix_idx[i])]
        return task, data

    def kernel_eligible(self) -> np.ndarray:
        """Boolean mask of sessions the vectorised kernel can advance.

        The kernel implements the perfect-information strategic pair
        over the built-in cost schedules; every other strategy
        combination — and any session whose registered cost kind the
        kernel has no code for — runs through the stepwise engine.
        """
        eligible = np.zeros(self.n_sessions, dtype=bool)
        for m, (task, data, _) in enumerate(self.spec.strategy_mix):
            if task == "strategic" and data == "strategic":
                eligible |= self.mix_idx == m
        return eligible & (self.cost_kind >= 0)

    def config(self, i: int) -> MarketConfig:
        """The validated :class:`MarketConfig` of session ``i``."""
        return MarketConfig(
            utility_rate=float(self.utility_rate[i]),
            budget=float(self.budget[i]),
            initial_rate=float(self.initial_rate[i]),
            initial_base=float(self.initial_base[i]),
            target_gain=float(self.target[i]),
            eps_d=float(self.eps_d[i]),
            eps_t=float(self.eps_t[i]),
            eps_dc=float(self.eps_dc[i]),
            eps_tc=float(self.eps_tc[i]),
            max_rounds=self.spec.max_rounds,
            n_price_samples=self.spec.n_price_samples,
        )

    def reserved(self, i: int) -> dict[FeatureBundle, ReservedPrice]:
        """Session ``i``'s private reserved-price table."""
        return {
            b: ReservedPrice(
                rate=float(self.reserved_rate[i, j]),
                base=float(self.reserved_base[i, j]),
            )
            for j, b in enumerate(self.bundles)
        }

    def cost_model(self, i: int) -> CostModel | None:
        """Session ``i``'s bargaining-cost schedule (both parties)."""
        kind, a, _ = self.spec.cost_mix[int(self.cost_idx[i])]
        return registry.build_cost(kind, a)

    def build_engine(
        self, i: int, *, oracle: object = None
    ) -> BargainingEngine:
        """Stand up session ``i``'s engine (strategies are single-use).

        This is exactly what a naive one-session-at-a-time deployment
        pays per negotiation; the pool's batch kernel amortises it.
        ``oracle`` overrides the shared oracle (e.g. a
        :class:`~repro.market.oracle.MemoisedOracle`).
        """
        config = self.config(i)
        gains = self.gains_dict()
        reserved = self.reserved(i)
        cost = self.cost_model(i)
        task_kind, data_kind = self.strategy_pair(i)
        n_features = 1 + max(max(b.indices) for b in self.bundles)
        task = registry.build_task_strategy(
            task_kind,
            registry.StrategyContext(
                config=config,
                gains=gains,
                reserved_prices=reserved,
                n_features=n_features,
                cost_model=cost,
                rng=spawn(self.seed, "session", int(i), "task"),
            ),
        )
        data = registry.build_data_strategy(
            data_kind,
            registry.StrategyContext(
                config=config,
                gains=gains,
                reserved_prices=reserved,
                n_features=n_features,
                cost_model=cost,
                rng=spawn(self.seed, "session", int(i), "data"),
            ),
        )
        return BargainingEngine(
            task,
            data,
            oracle if oracle is not None else self.oracle,
            utility_rate=config.utility_rate,
            cost_task=cost,
            cost_data=cost,
            reserved_prices=reserved,
            max_rounds=config.max_rounds,
        )


def sample_population(
    spec: PopulationSpec,
    n_sessions: int,
    *,
    seed: int = 0,
    oracle: PerformanceOracle | None = None,
) -> Population:
    """Draw ``n_sessions`` heterogeneous sessions in one vectorised pass.

    Every random quantity comes from a named :func:`repro.utils.rng.spawn`
    stream under ``seed``, so the population is bit-reproducible and
    independent of how the pool later batches it.

    ``oracle`` anchors the population on a *real* pre-bargaining oracle
    (e.g. one the oracle factory built from a dataset's VFL courses):
    its catalogue and ΔG values replace the synthetic ones —
    ``spec.n_features``/``spec.n_bundles`` are ignored — and sessions
    query that oracle during bargaining.
    """
    require(n_sessions >= 1, "n_sessions must be >= 1")
    cfg = spec.base_config()
    scale = spec.gain_scale()

    if oracle is not None:
        # Real catalogue: the platform already ran the VFL courses.
        bundles = list(oracle.bundles)
        catalogue = oracle.gains()
        gains = np.asarray([catalogue[b] for b in bundles], dtype=float)
        require(
            float(gains.max()) > 0,
            "oracle-backed population needs at least one positive-gain bundle",
        )
        sizes = np.array([b.size for b in bundles], dtype=float)
    else:
        # Shared catalogue: bundle sizes drive gains (diminishing
        # returns) with idiosyncratic quality noise, mirroring the
        # paper's oracles.
        bundles = sample_bundles(
            spec.n_features,
            spec.n_bundles,
            rng=spawn(seed, "population", "bundles"),
            min_size=1,
        )
        sizes = np.array([b.size for b in bundles], dtype=float)
        gains = synthetic_gains(
            sizes,
            n_features=spec.n_features,
            scale=scale,
            rng=spawn(seed, "population", "gains"),
        )

    # Per-session reserved prices: the cost-plus-value model of
    # pricing.cost_based_reserved_prices, vectorised across sessions.
    params = spec.reserved_params()
    quality = np.maximum(gains, 0.0) / max(float(gains.max()), 1e-12)
    res_rng = spawn(seed, "population", "reserved")
    shape = (n_sessions, len(bundles))
    reserved_rate = (
        params["rate_floor"]
        + params["rate_per_feature"] * sizes[None, :]
        + params.get("rate_value", 0.0) * quality[None, :]
        + np.abs(res_rng.normal(0.0, params.get("rate_noise", 0.0) or 1e-12, shape))
    )
    reserved_base = (
        params["base_floor"]
        + params["base_per_feature"] * sizes[None, :]
        + params.get("base_value", 0.0) * quality[None, :]
        + np.abs(res_rng.normal(0.0, params.get("base_noise", 0.0) or 1e-12, shape))
    )

    # Buyer economics: log-normal jitter around the preset calibration.
    par_rng = spawn(seed, "population", "params")
    utility = cfg.utility_rate * np.exp(
        par_rng.normal(0.0, spec.utility_jitter, n_sessions)
    )
    initial_rate = cfg.initial_rate * np.exp(
        par_rng.normal(0.0, spec.rate_jitter, n_sessions)
    )
    initial_rate = np.minimum(initial_rate, 0.5 * utility)
    initial_base = cfg.initial_base * np.exp(
        par_rng.normal(0.0, spec.base_jitter, n_sessions)
    )
    q_lo, q_hi = spec.target_quantile_range
    quantiles = par_rng.uniform(q_lo, q_hi, n_sessions)
    # Snap targets to order statistics of the catalogue: an interpolated
    # quantile falls *between* bundle gains, leaving no bundle within
    # ε of the turning point, so no session could ever settle there.
    # Only positive gains are viable targets (real oracles can carry
    # negative-ΔG bundles; synthetic catalogues are all-positive, so
    # this filter leaves them untouched).
    sorted_gains = np.sort(gains[gains > 0])
    target = sorted_gains[
        np.round(quantiles * (len(sorted_gains) - 1)).astype(int)
    ]
    opening_cap = initial_base + initial_rate * target
    budget = cfg.budget * np.exp(par_rng.normal(0.0, spec.budget_jitter, n_sessions))
    # Keep escalation headroom above the opening cap (same floor the
    # Market facade applies): concession steps scale with budget - cap.
    budget = np.maximum(budget, 2.0 * opening_cap)
    decades = par_rng.uniform(-spec.eps_spread, spec.eps_spread, (2, n_sessions))
    eps_d = cfg.eps_d * 10.0 ** decades[0]
    eps_t = cfg.eps_t * 10.0 ** decades[1]
    eps_dc = np.full(n_sessions, cfg.eps_dc)
    eps_tc = np.full(n_sessions, cfg.eps_tc)

    # Strategy and cost mixes.
    mix_rng = spawn(seed, "population", "mix")
    mix_w = np.array([w for _, _, w in spec.strategy_mix], dtype=float)
    mix_idx = mix_rng.choice(len(spec.strategy_mix), size=n_sessions,
                             p=mix_w / mix_w.sum())
    cost_w = np.array([w for _, _, w in spec.cost_mix], dtype=float)
    cost_idx = mix_rng.choice(len(spec.cost_mix), size=n_sessions,
                              p=cost_w / cost_w.sum())
    # Kernel code per session; registered kinds the kernel does not
    # implement get -1 and run through the stepwise engine path.
    cost_kind = np.array(
        [
            _COST_KINDS.index(kind) if kind in _COST_KINDS else -1
            for kind in (spec.cost_mix[m][0] for m in cost_idx)
        ],
        dtype=np.int8,
    )
    cost_a = np.array([spec.cost_mix[m][1] for m in cost_idx], dtype=float)

    return Population(
        spec=spec,
        seed=int(seed),
        n_sessions=int(n_sessions),
        bundles=bundles,
        gains=gains,
        reserved_rate=reserved_rate,
        reserved_base=reserved_base,
        utility_rate=utility,
        budget=budget,
        initial_rate=initial_rate,
        initial_base=initial_base,
        target=target,
        eps_d=eps_d,
        eps_t=eps_t,
        eps_dc=eps_dc,
        eps_tc=eps_tc,
        mix_idx=mix_idx,
        cost_idx=cost_idx,
        cost_kind=cost_kind,
        cost_a=cost_a,
        oracle=oracle,
    )
