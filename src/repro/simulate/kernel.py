"""Vectorised round kernel for strategic-vs-strategic sessions.

This is the batch-scheduling fast path of the simulator: it advances a
whole batch of perfect-information strategic sessions one round at a
time with numpy array operations, instead of paying the per-round
Python costs of :class:`~repro.market.engine.BargainingEngine` (which
builds ~``n_price_samples`` :class:`QuotedPrice` objects and makes two
scalar RNG calls per candidate, ~850 µs/round — see
``benchmarks/bench_population_sim.py``).

The kernel implements exactly the same decision rules as the scalar
strategies — Eq. 4 offer selection, Cases 1-6 termination, the Eq. 6/7
cost-aware acceptances, Algorithm 1's escalated candidate sampling with
min-cap selection — and the same sampling *distributions*, but consumes
each session's RNG stream in a different order (array draws instead of
interleaved scalar draws), so individual sessions are statistically,
not bitwise, equivalent to ``BargainingEngine.run()``
(``tests/simulate/test_pool.py`` pins the aggregate agreement).

Determinism contract: every random draw comes from the session's own
``spawn(seed, "session", i, "kernel")`` generator, consumed in round
order — results are therefore independent of how sessions are grouped
into batches (pinned by ``tests/simulate/test_determinism.py``).

Batch assembly is decoupled from execution so callers other than
:class:`~repro.simulate.pool.SessionPool` can drive the kernel:

* :func:`assemble_strategic_batch` lifts sessions out of a
  :class:`~repro.simulate.population.Population` into a
  :class:`StrategicBatch` of parallel arrays;
* :func:`concat_strategic_batches` merges batches from *different*
  populations (different catalogue widths, round caps, or sampling
  depths) into one heterogeneous batch — catalogues are padded with
  sentinel columns that can never be afforded, so merged execution is
  bit-identical to running each batch alone;
* :func:`simulate_assembled_batch` runs any assembled batch to
  termination.

:func:`simulate_strategic_batch` (assemble + simulate over one
population) remains the convenience wrapper the pool uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn

__all__ = [
    "BY_DATA",
    "BY_ENGINE",
    "BY_TASK",
    "STATUS_ACCEPTED",
    "STATUS_FAILED",
    "STATUS_MAX_ROUNDS",
    "StrategicBatch",
    "assemble_strategic_batch",
    "concat_strategic_batches",
    "simulate_assembled_batch",
    "simulate_strategic_batch",
]

STATUS_ACCEPTED = 1
STATUS_FAILED = 2
STATUS_MAX_ROUNDS = 3

BY_DATA = 1
BY_TASK = 2
BY_ENGINE = 3

_COST_NONE, _COST_CONSTANT, _COST_LINEAR, _COST_EXPONENTIAL = 0, 1, 2, 3

#: Catalogue pad value for heterogeneous batches: a padded column's
#: reserved prices are +inf (never affordable, Case-1/Eq.4 masks skip
#: it) and its gain is +inf (never the |ΔG − tp| argmin target).
_PAD = np.inf


@dataclass
class StrategicBatch:
    """One externally-assembled batch of strategic/strategic sessions.

    Parallel arrays over ``n`` sessions; the catalogue axis ``F`` may
    mix real columns with ``+inf`` padding (heterogeneous batches).
    ``generators`` holds each session's own RNG stream — the batch is
    single-use, exactly like the engines it replaces.
    """

    gains: np.ndarray          # (n, F) shared/padded catalogues
    reserved_rate: np.ndarray  # (n, F)
    reserved_base: np.ndarray  # (n, F)
    utility_rate: np.ndarray   # (n,)
    budget: np.ndarray
    initial_rate: np.ndarray
    initial_base: np.ndarray
    target: np.ndarray
    eps_d: np.ndarray
    eps_t: np.ndarray
    eps_dc: np.ndarray
    eps_tc: np.ndarray
    cost_kind: np.ndarray      # (n,) int8
    cost_a: np.ndarray
    n_price_samples: np.ndarray  # (n,) int
    max_rounds: np.ndarray       # (n,) int
    generators: list

    def __post_init__(self) -> None:
        n = len(self.generators)
        if self.gains.shape[0] != n:
            raise ValueError(
                f"batch carries {self.gains.shape[0]} sessions but "
                f"{n} generators"
            )

    def __len__(self) -> int:
        return len(self.generators)


def assemble_strategic_batch(population, indices: np.ndarray) -> StrategicBatch:
    """Lift ``population``'s sessions at ``indices`` into a batch.

    Every array is copied out at the session granularity, so the batch
    is self-contained: it can be merged with batches from other
    populations (:func:`concat_strategic_batches`) or executed on its
    own (:func:`simulate_assembled_batch`).
    """
    indices = np.asarray(indices, dtype=int)
    n = len(indices)
    spec = population.spec
    g = np.ascontiguousarray(
        np.broadcast_to(population.gains[None, :], (n, len(population.gains)))
    )
    return StrategicBatch(
        gains=g,
        reserved_rate=population.reserved_rate[indices],
        reserved_base=population.reserved_base[indices],
        utility_rate=population.utility_rate[indices],
        budget=population.budget[indices],
        initial_rate=population.initial_rate[indices],
        initial_base=population.initial_base[indices],
        target=population.target[indices],
        eps_d=population.eps_d[indices],
        eps_t=population.eps_t[indices],
        eps_dc=population.eps_dc[indices],
        eps_tc=population.eps_tc[indices],
        cost_kind=population.cost_kind[indices],
        cost_a=population.cost_a[indices],
        n_price_samples=np.full(n, int(spec.n_price_samples), dtype=int),
        max_rounds=np.full(n, int(spec.max_rounds), dtype=int),
        generators=[
            spawn(population.seed, "session", int(i), "kernel")
            for i in indices
        ],
    )


def concat_strategic_batches(batches) -> StrategicBatch:
    """Merge assembled batches into one heterogeneous batch.

    Catalogues of different widths are right-padded with ``+inf``
    sentinel columns (unaffordable, never an Eq.4/Eq.6 pick), so each
    session's trajectory is bit-identical to running its home batch
    alone — the determinism contract extends across populations.
    """
    batches = list(batches)
    if not batches:
        raise ValueError("concat_strategic_batches needs at least one batch")
    if len(batches) == 1:
        return batches[0]
    width = max(b.gains.shape[1] for b in batches)

    def pad(array: np.ndarray) -> np.ndarray:
        n, f = array.shape
        if f == width:
            return array
        out = np.full((n, width), _PAD)
        out[:, :f] = array
        return out

    return StrategicBatch(
        gains=np.concatenate([pad(b.gains) for b in batches]),
        reserved_rate=np.concatenate([pad(b.reserved_rate) for b in batches]),
        reserved_base=np.concatenate([pad(b.reserved_base) for b in batches]),
        utility_rate=np.concatenate([b.utility_rate for b in batches]),
        budget=np.concatenate([b.budget for b in batches]),
        initial_rate=np.concatenate([b.initial_rate for b in batches]),
        initial_base=np.concatenate([b.initial_base for b in batches]),
        target=np.concatenate([b.target for b in batches]),
        eps_d=np.concatenate([b.eps_d for b in batches]),
        eps_t=np.concatenate([b.eps_t for b in batches]),
        eps_dc=np.concatenate([b.eps_dc for b in batches]),
        eps_tc=np.concatenate([b.eps_tc for b in batches]),
        cost_kind=np.concatenate([b.cost_kind for b in batches]),
        cost_a=np.concatenate([b.cost_a for b in batches]),
        n_price_samples=np.concatenate([b.n_price_samples for b in batches]),
        max_rounds=np.concatenate([b.max_rounds for b in batches]),
        generators=[gen for b in batches for gen in b.generators],
    )


def _cost_at(kind: np.ndarray, a: np.ndarray, round_number: int) -> np.ndarray:
    """Cumulative bargaining cost per session after ``round_number``."""
    cost = np.zeros(len(kind))
    mask = kind == _COST_CONSTANT
    cost[mask] = a[mask]
    mask = kind == _COST_LINEAR
    cost[mask] = a[mask] * round_number
    mask = kind == _COST_EXPONENTIAL
    cost[mask] = a[mask] ** round_number
    return cost


def simulate_strategic_batch(population, indices: np.ndarray) -> dict[str, np.ndarray]:
    """Run the sessions in ``indices`` (all strategic/strategic) to
    termination and return their terminal records as arrays.

    Convenience wrapper: :func:`assemble_strategic_batch` +
    :func:`simulate_assembled_batch`.
    """
    return simulate_assembled_batch(
        assemble_strategic_batch(population, np.asarray(indices, dtype=int))
    )


def simulate_assembled_batch(batch: StrategicBatch) -> dict[str, np.ndarray]:
    """Run an assembled (possibly heterogeneous) batch to termination.

    Returned keys: ``status``, ``terminated_by``, ``n_rounds``,
    ``delta_g``, ``payment``, ``net_profit``, ``cost_task``,
    ``cost_data``, ``final_rate``, ``final_base``, ``final_cap`` — the
    same quantities a :class:`~repro.market.engine.BargainOutcome`
    carries, for the batch, in batch order.
    """
    n = len(batch)
    G = batch.gains  # (n, F) per-session catalogues (padded rows allowed)
    res_rate = batch.reserved_rate
    res_base = batch.reserved_base
    u = batch.utility_rate
    budget = batch.budget
    p0 = batch.initial_rate
    b0 = batch.initial_base
    target = batch.target
    eps_d = batch.eps_d
    eps_t = batch.eps_t
    eps_dc = batch.eps_dc
    eps_tc = batch.eps_tc
    cost_kind = batch.cost_kind
    cost_a = batch.cost_a
    ns = batch.n_price_samples
    mr = batch.max_rounds
    mr_max = int(mr.max())
    has_cost = cost_kind != _COST_NONE
    break_even = b0 / (u - p0)  # Case-4 bar, anchored to the opening quote

    gens = batch.generators

    # Standing quote per session (opens Eq.5-consistent at the target).
    rate = p0.copy()
    base = b0.copy()
    cap = b0 + p0 * target

    # Terminal records.
    status = np.zeros(n, dtype=np.int8)
    terminated_by = np.zeros(n, dtype=np.int8)
    n_rounds = np.zeros(n, dtype=np.int32)
    out_gain = np.full(n, np.nan)
    out_pay = np.zeros(n)
    out_net = np.zeros(n)
    out_ct = np.zeros(n)
    out_cd = np.zeros(n)
    out_rate = np.full(n, np.nan)
    out_base = np.full(n, np.nan)
    out_cap = np.full(n, np.nan)

    # Offer trail for the Case-4 regression test (grown on demand).
    trail_width = min(64, mr_max)
    tr_rate = np.empty((n, trail_width))
    tr_base = np.empty((n, trail_width))
    tr_gain = np.empty((n, trail_width))

    def finalise(rows, *, st, by, T, gain=None, pay=None, net=None, ct=None, cd=None,
                 q_rate=None, q_base=None, q_cap=None):
        status[rows] = st
        terminated_by[rows] = by
        n_rounds[rows] = T
        if gain is not None:
            out_gain[rows] = gain
            out_pay[rows] = pay
            out_net[rows] = net
        out_ct[rows] = ct
        out_cd[rows] = cd
        out_rate[rows] = q_rate
        out_base[rows] = q_base
        out_cap[rows] = q_cap

    live = np.arange(n)
    for T in range(1, mr_max + 1):
        if live.size == 0:
            break
        rate_l, base_l, cap_l = rate[live], base[live], cap[live]
        tp = (cap_l - base_l) / rate_l  # turning point (== target up to fp)
        cost_r = _cost_at(cost_kind[live], cost_a[live], T)
        cost_r1 = _cost_at(cost_kind[live], cost_a[live], T + 1)

        # --- Step 2: the data party reacts (Cases 1-3) -----------------
        afford = (res_rate[live] <= rate_l[:, None] + 1e-12) & (
            res_base[live] <= base_l[:, None] + 1e-12
        )
        any_aff = afford.any(axis=1)
        if not any_aff.all():  # Case 1: no affordable bundle -> fail
            dead = ~any_aff
            finalise(live[dead], st=STATUS_FAILED, by=BY_DATA, T=T,
                     ct=cost_r[dead], cd=cost_r[dead],
                     q_rate=rate_l[dead], q_base=base_l[dead], q_cap=cap_l[dead])
            keep = any_aff
            live, rate_l, base_l, cap_l, tp = (
                live[keep], rate_l[keep], base_l[keep], cap_l[keep], tp[keep])
            afford, cost_r, cost_r1 = afford[keep], cost_r[keep], cost_r1[keep]

        # Eq. 4 offer: the affordable gain closest to the turning point
        # from below; if everything overshoots, the smallest overshoot.
        G_l = G[live]
        below = afford & (G_l <= tp[:, None])
        g_below = np.where(below, G_l, -np.inf).max(axis=1)
        g_over = np.where(afford, G_l, np.inf).min(axis=1)
        gain = np.where(np.isfinite(g_below), g_below, g_over)
        payment = np.minimum(np.maximum(base_l, base_l + rate_l * gain), cap_l)
        net = u[live] * gain - payment

        accept_d = (tp - gain) <= eps_d[live]  # Case 2
        costly = has_cost[live]
        if costly.any():  # Eq. 6 look-ahead acceptance
            tgt = np.abs(G_l - tp[:, None]).argmin(axis=1)
            rows_l = np.arange(live.size)
            rrt = res_rate[live][rows_l, tgt]
            rbt = res_base[live][rows_l, tgt]
            lhs = base_l + rate_l * gain - cost_r
            nxt = np.maximum(rbt, base_l) + np.maximum(rrt, rate_l) * tp
            rhs = nxt - cost_r1 - eps_dc[live]
            accept_d |= costly & (lhs >= rhs)
        if accept_d.any():
            acc = accept_d
            finalise(live[acc], st=STATUS_ACCEPTED, by=BY_DATA, T=T,
                     gain=gain[acc], pay=payment[acc], net=net[acc],
                     ct=cost_r[acc], cd=cost_r[acc],
                     q_rate=rate_l[acc], q_base=base_l[acc], q_cap=cap_l[acc])
            keep = ~accept_d
            live, rate_l, base_l, cap_l, tp = (
                live[keep], rate_l[keep], base_l[keep], cap_l[keep], tp[keep])
            gain, payment, net = gain[keep], payment[keep], net[keep]
            cost_r, cost_r1 = cost_r[keep], cost_r1[keep]
        if live.size == 0:
            continue

        # --- Step 1 of the next round: the task party reacts (4-6) -----
        k = T - 1
        if k > 0:
            dom = (rate_l[:, None] >= tr_rate[live, :k] - 1e-12) & (
                base_l[:, None] >= tr_base[live, :k] - 1e-12
            )
            best_dom = np.where(dom, tr_gain[live, :k], -np.inf).max(axis=1)
        else:
            best_dom = np.full(live.size, -np.inf)
        if k >= trail_width:  # grow the trail (games rarely get here)
            grow = min(trail_width, mr_max - trail_width)
            pad = np.empty((n, grow))
            tr_rate = np.concatenate([tr_rate, pad], axis=1)
            tr_base = np.concatenate([tr_base, pad], axis=1)
            tr_gain = np.concatenate([tr_gain, pad], axis=1)
            trail_width += grow
        tr_rate[live, k] = rate_l
        tr_base[live, k] = base_l
        tr_gain[live, k] = gain

        fail_t = (gain < break_even[live]) & (gain < best_dom)  # Case 4
        accept_t = gain >= tp - eps_t[live]  # Case 5
        costly = has_cost[live]
        if costly.any():  # Eq. 7 look-ahead acceptance
            lhs = u[live] * gain - (base_l + rate_l * gain) - cost_r
            rhs = u[live] * tp - cap_l - cost_r1 - eps_tc[live]
            accept_t |= costly & (lhs >= rhs)
        accept_t &= ~fail_t  # failure checked first, as in the engine

        # Case 6: escalated Eq.5-consistent candidates, min-cap pick.
        running = ~fail_t & ~accept_t
        exhausted = running & (cap_l >= budget[live] - 1e-12)
        sample = running & ~exhausted
        rows = np.flatnonzero(sample)
        if rows.size:
            ns_rows = ns[live[rows]]
            width = int(ns_rows.max())
            draws = np.zeros((rows.size, 2, width))
            for ii, row in enumerate(rows):
                k_row = int(ns_rows[ii])
                draws[ii, :, :k_row] = gens[live[row]].random((2, k_row))
            cl = cap_l[rows, None]
            caps = cl + (budget[live[rows], None] - cl) * draws[:, 0, :]
            valid = caps > cl + 1e-12
            # Padded sample columns (heterogeneous n_price_samples)
            # draw 0.0, land exactly on cl, and fail the > check; the
            # explicit mask keeps that invariant independent of fp.
            valid &= np.arange(width)[None, :] < ns_rows[:, None]
            rate_high = np.minimum(
                u[live[rows], None],
                (caps - b0[live[rows], None]) / target[live[rows], None],
            )
            valid &= rate_high > p0[live[rows], None]
            rates = (
                p0[live[rows], None]
                + (rate_high - p0[live[rows], None]) * draws[:, 1, :]
            )
            masked = np.where(valid, caps, np.inf)
            pick = masked.argmin(axis=1)
            got = valid[np.arange(rows.size), pick]
            # No admissible candidate left: accept the standing outcome
            # rather than walk away from a profitable trade.
            exhausted[rows[~got]] = True
            ok = rows[got]
            new_cap = caps[np.arange(rows.size), pick][got]
            new_rate = rates[np.arange(rows.size), pick][got]
            cap[live[ok]] = new_cap
            rate[live[ok]] = new_rate
            base[live[ok]] = new_cap - new_rate * target[live[ok]]

        accept_t |= exhausted
        if fail_t.any() or accept_t.any():
            for mask, st, by in ((fail_t, STATUS_FAILED, BY_TASK),
                                 (accept_t, STATUS_ACCEPTED, BY_TASK)):
                if mask.any():
                    finalise(live[mask], st=st, by=by, T=T,
                             gain=gain[mask], pay=payment[mask], net=net[mask],
                             ct=cost_r[mask], cd=cost_r[mask],
                             q_rate=rate_l[mask], q_base=base_l[mask],
                             q_cap=cap_l[mask])
        cont = ~fail_t & ~accept_t
        capped = cont & (mr[live] == T)  # per-session round cap
        if capped.any():  # round cap: counted as failed
            finalise(live[capped], st=STATUS_MAX_ROUNDS, by=BY_ENGINE, T=T,
                     gain=gain[capped], pay=payment[capped], net=net[capped],
                     ct=cost_r[capped], cd=cost_r[capped],
                     q_rate=rate_l[capped], q_base=base_l[capped],
                     q_cap=cap_l[capped])
        live = live[cont & ~capped]

    return {
        "status": status,
        "terminated_by": terminated_by,
        "n_rounds": n_rounds,
        "delta_g": out_gain,
        "payment": out_pay,
        "net_profit": out_net,
        "cost_task": out_ct,
        "cost_data": out_cd,
        "final_rate": out_rate,
        "final_base": out_base,
        "final_cap": out_cap,
    }
