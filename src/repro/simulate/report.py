"""Aggregate reporting over a simulated session population.

Collapses a :class:`~repro.simulate.pool.PoolResult` into the
population-level quantities an operator watches — acceptance rate,
round counts, payment / net-profit distributions, per-strategy-mix
breakdowns — using the same statistical helpers as the paper's
experiment harness (:mod:`repro.experiments.aggregate`).

The report is deterministic given ``(spec, seed)``:
:meth:`SimulationReport.digest` hashes every outcome-derived field
(wall-clock timing is excluded), which is what the determinism tests
and the CLI's ``--expect-digest`` hook compare.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.experiments.aggregate import histogram, mean_std
from repro.experiments.report import format_table
from repro.simulate.kernel import STATUS_ACCEPTED, STATUS_FAILED, STATUS_MAX_ROUNDS
from repro.simulate.pool import PoolResult
from repro.simulate.population import Population

__all__ = ["SimulationReport", "build_report", "report_from_dict"]


@dataclass(frozen=True)
class MixBreakdown:
    """Aggregates for one strategy pairing of the population mix."""

    label: str
    count: int
    acceptance_rate: float
    mean_rounds: float
    mean_net_profit: float
    mean_payment: float


@dataclass(frozen=True)
class SimulationReport:
    """Population-level view of one simulation run."""

    preset: str
    seed: int
    n_sessions: int
    accepted: int
    failed: int
    max_rounds: int
    acceptance_rate: float
    mean_rounds: float
    std_rounds: float
    payment_mean: float
    payment_std: float
    net_profit_mean: float
    net_profit_std: float
    delta_g_mean: float
    payment_hist: tuple[tuple[float, ...], tuple[int, ...]]
    net_profit_hist: tuple[tuple[float, ...], tuple[int, ...]]
    rounds_hist: tuple[tuple[float, ...], tuple[int, ...]]
    mix: tuple[MixBreakdown, ...]
    kernel_sessions: int
    stepped_sessions: int
    oracle_queries: int
    oracle_hits: int
    elapsed: float = field(compare=False)
    sessions_per_sec: float = field(compare=False)

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Hex digest over every outcome-derived field.

        Two runs of the same ``(spec, seed)`` population must produce
        the same digest regardless of batch size or wall-clock — the
        contract ``tests/simulate/test_determinism.py`` enforces.
        """
        parts: list[str] = [self.preset, str(self.seed), str(self.n_sessions)]
        parts += [str(x) for x in (self.accepted, self.failed, self.max_rounds,
                                   self.kernel_sessions, self.stepped_sessions,
                                   self.oracle_queries, self.oracle_hits)]
        for value in (self.acceptance_rate, self.mean_rounds, self.std_rounds,
                      self.payment_mean, self.payment_std,
                      self.net_profit_mean, self.net_profit_std,
                      self.delta_g_mean):
            parts.append(float(value).hex())
        for edges, counts in (self.payment_hist, self.net_profit_hist,
                              self.rounds_hist):
            parts += [float(e).hex() for e in edges]
            parts += [str(c) for c in counts]
        for row in self.mix:
            parts += [row.label, str(row.count)]
            parts += [float(x).hex() for x in (row.acceptance_rate, row.mean_rounds,
                                               row.mean_net_profit, row.mean_payment)]
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]  # lint: allow[DET003] pinned pre-canonical digest format; rerouting through content_digest would change every golden report digest

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Operator-facing plain-text report."""
        lines = [
            f"population: {self.n_sessions} sessions | preset {self.preset} "
            f"| seed {self.seed} | digest {self.digest()}",
            f"schedule:   {self.kernel_sessions} batch-kernel + "
            f"{self.stepped_sessions} stepwise sessions | "
            f"{self.oracle_queries} oracle queries "
            f"({self.oracle_hits} served from cache)",
            f"throughput: {self.sessions_per_sec:,.0f} sessions/s "
            f"({self.elapsed:.2f}s wall)",
            "",
            format_table(
                ["outcome", "sessions", "share"],
                [
                    ["accepted", self.accepted, _pct(self.accepted, self.n_sessions)],
                    ["failed", self.failed, _pct(self.failed, self.n_sessions)],
                    ["max_rounds", self.max_rounds, _pct(self.max_rounds, self.n_sessions)],
                ],
                title="Outcomes",
            ),
            "",
            format_table(
                ["metric", "mean", "std"],
                [
                    ["rounds (all sessions)", self.mean_rounds, self.std_rounds],
                    ["payment (accepted)", self.payment_mean, self.payment_std],
                    ["net profit (accepted)", self.net_profit_mean, self.net_profit_std],
                    ["realised dG (accepted)", self.delta_g_mean, float("nan")],
                ],
                title="Monetary aggregates",
            ),
        ]
        if len(self.mix) > 1:
            lines += [
                "",
                format_table(
                    ["strategy pair", "sessions", "accept", "rounds", "net", "payment"],
                    [
                        [m.label, m.count, _pct_rate(m.acceptance_rate),
                         m.mean_rounds, m.mean_net_profit, m.mean_payment]
                        for m in self.mix
                    ],
                    title="Strategy mix",
                ),
            ]
        for name, hist in (("payment", self.payment_hist),
                           ("net profit", self.net_profit_hist),
                           ("rounds", self.rounds_hist)):
            lines += ["", _render_hist(name, hist)]
        return "\n".join(lines)


def _pct(count: int, total: int) -> str:
    return f"{100.0 * count / max(total, 1):.1f}%"


def _pct_rate(rate: float) -> str:
    return f"{100.0 * rate:.1f}%"


def _render_hist(
    name: str, hist: tuple[tuple[float, ...], tuple[int, ...]], *, width: int = 46
) -> str:
    edges, counts = hist
    if not counts:
        return f"{name}: no accepted sessions"
    top = max(counts)
    lines = [f"{name} distribution (accepted sessions)"]
    for j, count in enumerate(counts):
        bar = "#" * int(round(width * count / top)) if top else ""
        lines.append(f"  [{edges[j]:>10.4g}, {edges[j + 1]:>10.4g})  "
                     f"{str(count).rjust(6)}  {bar}")
    return "\n".join(lines)


def build_report(
    population: Population, result: PoolResult, *, n_bins: int = 16
) -> SimulationReport:
    """Aggregate a pool run into a :class:`SimulationReport`."""
    n = population.n_sessions
    accepted_mask = result.status == STATUS_ACCEPTED
    n_accepted = int(accepted_mask.sum())
    rounds_mean, rounds_std = mean_std(result.n_rounds.astype(float))

    if n_accepted:
        pay = result.payment[accepted_mask]
        net = result.net_profit[accepted_mask]
        pay_mean, pay_std = mean_std(pay)
        net_mean, net_std = mean_std(net)
        dg_mean = float(result.delta_g[accepted_mask].mean())
        pay_hist = _hist(pay, n_bins)
        net_hist = _hist(net, n_bins)
        rounds_hist = _hist(result.n_rounds[accepted_mask].astype(float), n_bins)
    else:
        pay_mean = pay_std = net_mean = net_std = dg_mean = float("nan")
        pay_hist = net_hist = rounds_hist = ((), ())

    mix_rows = []
    for m, (task, data, _) in enumerate(population.spec.strategy_mix):
        member = population.mix_idx == m
        count = int(member.sum())
        if not count:
            continue
        acc = member & accepted_mask
        mix_rows.append(MixBreakdown(
            label=f"{task}/{data}",
            count=count,
            acceptance_rate=float(acc.sum()) / count,
            mean_rounds=float(result.n_rounds[member].mean()),
            mean_net_profit=float(result.net_profit[acc].mean()) if acc.any()
            else float("nan"),
            mean_payment=float(result.payment[acc].mean()) if acc.any()
            else float("nan"),
        ))

    return SimulationReport(
        preset=population.spec.preset,
        seed=population.seed,
        n_sessions=n,
        accepted=n_accepted,
        failed=int((result.status == STATUS_FAILED).sum()),
        max_rounds=int((result.status == STATUS_MAX_ROUNDS).sum()),
        acceptance_rate=n_accepted / max(n, 1),
        mean_rounds=rounds_mean,
        std_rounds=rounds_std,
        payment_mean=pay_mean,
        payment_std=pay_std,
        net_profit_mean=net_mean,
        net_profit_std=net_std,
        delta_g_mean=dg_mean,
        payment_hist=pay_hist,
        net_profit_hist=net_hist,
        rounds_hist=rounds_hist,
        mix=tuple(mix_rows),
        kernel_sessions=result.kernel_sessions,
        stepped_sessions=result.stepped_sessions,
        oracle_queries=result.oracle_queries,
        oracle_hits=result.oracle_hits,
        elapsed=result.elapsed,
        sessions_per_sec=n / result.elapsed if result.elapsed > 0 else float("inf"),
    )


def _hist(values: np.ndarray, n_bins: int):
    edges, counts = histogram(values, n_bins=n_bins)
    return tuple(float(e) for e in edges), tuple(int(c) for c in counts)


# Scalar fields that may legitimately be NaN (no accepted sessions);
# wire payloads carry them as null, report_from_dict restores the NaN.
_NULLABLE_FLOATS = (
    "payment_mean", "payment_std", "net_profit_mean", "net_profit_std",
    "delta_g_mean",
)


def report_from_dict(payload: dict) -> SimulationReport:
    """Rebuild a :class:`SimulationReport` from its ``asdict`` form.

    Accepts both the store's exact JSON (NaN preserved) and wire-safe
    payloads (NaN exported as ``null``); the rebuilt report digests
    identically to the original, which is how ``repro jobs status``
    re-renders and re-verifies a finished job's stored report.
    """
    data = {k: v for k, v in payload.items() if k != "digest"}

    def _nan(value):
        return float("nan") if value is None else float(value)

    for name in _NULLABLE_FLOATS:
        data[name] = _nan(data[name])
    for name in ("payment_hist", "net_profit_hist", "rounds_hist"):
        edges, counts = data[name]
        data[name] = (tuple(float(e) for e in edges),
                      tuple(int(c) for c in counts))
    data["mix"] = tuple(
        MixBreakdown(
            label=row["label"],
            count=int(row["count"]),
            acceptance_rate=float(row["acceptance_rate"]),
            mean_rounds=float(row["mean_rounds"]),
            mean_net_profit=_nan(row["mean_net_profit"]),
            mean_payment=_nan(row["mean_payment"]),
        )
        for row in data["mix"]
    )
    return SimulationReport(**data)
