"""The session-pool scheduler: many bargaining games, round by round.

:class:`SessionPool` is the concurrency seam of the simulator.  It
splits a :class:`~repro.simulate.population.Population` into batches
and advances every session round-by-round until termination:

* strategic-vs-strategic sessions go through the vectorised batch
  kernel (:mod:`repro.simulate.kernel`), which amortises the per-round
  Python costs across the whole batch;
* every other strategy mix runs on the stepwise
  :meth:`~repro.market.engine.BargainingEngine.step` core, interleaved
  round-by-round within its batch, with platform queries deduplicated
  through a shared :class:`~repro.market.oracle.MemoisedOracle`.

Because each session draws from its own seeded RNG stream, results are
independent of ``batch_size`` — batching is purely an execution
concern, which is what lets the same pool later shard across processes
or hosts without changing outcomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.market.engine import BargainOutcome
from repro.market.oracle import MemoisedOracle
from repro.simulate.kernel import (
    BY_DATA,
    BY_ENGINE,
    BY_TASK,
    STATUS_ACCEPTED,
    STATUS_FAILED,
    STATUS_MAX_ROUNDS,
    simulate_strategic_batch,
)
from repro.simulate.population import Population
from repro.utils.validation import require

__all__ = ["PoolResult", "SessionPool", "session_record_arrays"]

#: Run-granularity pool telemetry.  Deliberately coarse (one update per
#: :meth:`SessionPool.run`, never per session) so the instrumented
#: overhead stays unmeasurable against a population sweep.
_POOL_SESSIONS = obs.REGISTRY.counter(
    "repro_pool_sessions_total",
    "Sessions played to termination, by execution path.",
    ("path",),
)
_POOL_RUN_SECONDS = obs.REGISTRY.histogram(
    "repro_pool_run_seconds",
    "SessionPool.run() latency per call (monotonic, seconds).",
)
_POOL_ORACLE = obs.REGISTRY.counter(
    "repro_pool_oracle_queries_total",
    "Stepwise-path platform queries, by memoisation result.",
    ("result",),
)


def session_record_arrays(n: int) -> dict[str, np.ndarray]:
    """Zero/NaN-filled terminal-record arrays for ``n`` sessions.

    The single definition of :class:`PoolResult`'s per-session array
    layout (names, dtypes, fill values), shared by
    :meth:`SessionPool.run` and the jobs merger
    (:func:`repro.jobs.executor.merge_simulation_chunks`) — the
    bit-identical-merge guarantee rides on the two never drifting.
    """
    return {
        "status": np.zeros(n, dtype=np.int8),
        "terminated_by": np.zeros(n, dtype=np.int8),
        "n_rounds": np.zeros(n, dtype=np.int32),
        "delta_g": np.full(n, np.nan),
        "payment": np.zeros(n),
        "net_profit": np.zeros(n),
        "cost_task": np.zeros(n),
        "cost_data": np.zeros(n),
        "final_rate": np.full(n, np.nan),
        "final_base": np.full(n, np.nan),
        "final_cap": np.full(n, np.nan),
    }

_STATUS_CODES = {
    "accepted": STATUS_ACCEPTED,
    "failed": STATUS_FAILED,
    "max_rounds": STATUS_MAX_ROUNDS,
}
_TERMINATOR_CODES = {"data_party": BY_DATA, "task_party": BY_TASK, "engine": BY_ENGINE}
_STATUS_NAMES = {code: name for name, code in _STATUS_CODES.items()}
_TERMINATOR_NAMES = {code: name for name, code in _TERMINATOR_CODES.items()}


@dataclass
class PoolResult:
    """Terminal records of every session, as parallel arrays.

    ``status``/``terminated_by`` hold the kernel's integer codes
    (decode with :meth:`status_names`); monetary fields mirror
    :class:`~repro.market.engine.BargainOutcome`.
    """

    status: np.ndarray
    terminated_by: np.ndarray
    n_rounds: np.ndarray
    delta_g: np.ndarray
    payment: np.ndarray
    net_profit: np.ndarray
    cost_task: np.ndarray
    cost_data: np.ndarray
    final_rate: np.ndarray
    final_base: np.ndarray
    final_cap: np.ndarray
    kernel_sessions: int
    stepped_sessions: int
    oracle_queries: int
    oracle_hits: int
    elapsed: float
    #: Distinct bundles the stepwise sessions queried (index tuples).
    #: A sharded executor merging per-shard results recovers the
    #: single-process cache-hit count from these: every first query of
    #: a bundle is a miss, so ``hits = queries - |union of bundles|``.
    queried_bundles: tuple[tuple[int, ...], ...] = ()

    @property
    def accepted(self) -> np.ndarray:
        """Boolean mask of successful transactions."""
        return self.status == STATUS_ACCEPTED

    def status_names(self) -> list[str]:
        """Per-session status strings (``accepted``/``failed``/``max_rounds``)."""
        return [_STATUS_NAMES[int(s)] for s in self.status]

    def terminator_names(self) -> list[str]:
        """Per-session terminator strings (``data_party``/``task_party``/``engine``)."""
        return [_TERMINATOR_NAMES[int(t)] for t in self.terminated_by]


class SessionPool:
    """Advances a population of bargaining sessions to termination.

    Parameters
    ----------
    population:
        The sampled sessions (shared catalogue + per-session params).
    batch_size:
        Execution granularity.  Outcomes are invariant to this; it only
        trades peak memory against vectorisation width.
    settlement:
        Optional :class:`~repro.security.batch.SecureSettlement`:
        accepted sessions re-settle their payments through the batched
        §3.6 Paillier path after termination.  Settled payments depend
        only on each session's ``(ΔG, quote)`` — never on the batch,
        shard, or pack grouping — so the invariance guarantees below
        carry over unchanged.
    """

    def __init__(
        self,
        population: Population,
        *,
        batch_size: int = 1024,
        settlement=None,
    ):
        require(batch_size >= 1, "batch_size must be >= 1")
        self.population = population
        self.batch_size = int(batch_size)
        self.settlement = settlement

    # ------------------------------------------------------------------
    def run(self, *, indices: np.ndarray | None = None) -> PoolResult:
        """Play sessions to termination and collect terminal records.

        ``indices`` restricts execution to a subset of the population
        (a *shard*): only those sessions are advanced, and the returned
        arrays carry their terminal records at their original positions
        (other rows keep the zero/NaN fill).  Because every session
        draws from its own seeded RNG stream, a session's record is
        identical whether it runs alone, in any batch, or in any shard
        — which is what lets :mod:`repro.jobs` split one population
        across worker processes and merge a bit-identical result.
        """
        pop = self.population
        n = pop.n_sessions
        member = np.zeros(n, dtype=bool)
        if indices is None:
            member[:] = True
        else:
            member[np.asarray(indices, dtype=int)] = True
        arrays = session_record_arrays(n)
        t0 = time.perf_counter()

        eligible = pop.kernel_eligible()
        kernel_idx = np.flatnonzero(eligible & member)
        for batch in _chunks(kernel_idx, self.batch_size):
            out = simulate_strategic_batch(pop, batch)
            for key, values in out.items():
                arrays[key][batch] = values

        stepped_idx = np.flatnonzero(~eligible & member)
        oracle = MemoisedOracle(pop.oracle)
        for batch in _chunks(stepped_idx, self.batch_size):
            self._run_stepwise(batch, oracle, arrays)

        if self.settlement is not None:
            self._settle_secure(arrays)

        elapsed = time.perf_counter() - t0
        if kernel_idx.size:
            _POOL_SESSIONS.inc(int(kernel_idx.size), path="kernel")
        if stepped_idx.size:
            _POOL_SESSIONS.inc(int(stepped_idx.size), path="stepwise")
        if oracle.hit_count:
            _POOL_ORACLE.inc(oracle.hit_count, result="hit")
        if oracle.query_count - oracle.hit_count:
            _POOL_ORACLE.inc(oracle.query_count - oracle.hit_count,
                             result="miss")
        _POOL_RUN_SECONDS.observe(elapsed)
        return PoolResult(
            **arrays,
            kernel_sessions=int(kernel_idx.size),
            stepped_sessions=int(stepped_idx.size),
            oracle_queries=oracle.query_count,
            oracle_hits=oracle.hit_count,
            elapsed=elapsed,
            queried_bundles=tuple(
                sorted(b.indices for b in oracle.queried_bundles())
            ),
        )

    # ------------------------------------------------------------------
    def _run_stepwise(
        self,
        batch: np.ndarray,
        oracle: MemoisedOracle,
        arrays: dict[str, np.ndarray],
    ) -> None:
        """Advance one batch of engine-backed sessions round-by-round.

        All sessions play round 1, then round 2, ... — the interleave a
        distributed scheduler needs (checkpoint between rounds, migrate
        sessions mid-game) — rather than one game at a time.
        """
        engines = {int(i): self.population.build_engine(int(i), oracle=oracle)
                   for i in batch}
        states = {i: engine.start() for i, engine in engines.items()}
        while states:
            for i in list(states):
                state = engines[i].step(states[i])
                if state.done:
                    assert state.outcome is not None
                    self._record(arrays, i, state.outcome)
                    del states[i]
                else:
                    states[i] = state

    def _settle_secure(self, arrays: dict[str, np.ndarray]) -> None:
        """Re-settle accepted sessions through the batched secure path.

        Only rows this run actually terminated as accepted are touched
        (non-member rows keep their fill), and each payment is a pure
        function of that session's ``(ΔG, quote)`` — the secure twin of
        the kernel's clamp — so shard merges stay bit-identical.
        """
        from repro.market.pricing import QuotedPrice

        idx = np.flatnonzero(arrays["status"] == STATUS_ACCEPTED)
        if idx.size == 0:
            return
        gains = [float(arrays["delta_g"][i]) for i in idx]
        quotes = [
            QuotedPrice(
                rate=float(arrays["final_rate"][i]),
                base=float(arrays["final_base"][i]),
                cap=float(arrays["final_cap"][i]),
            )
            for i in idx
        ]
        payments = self.settlement.settle(gains, quotes)
        utility = self.population.utility_rate
        for i, gain, payment in zip(idx, gains, payments):
            arrays["payment"][i] = payment
            arrays["net_profit"][i] = float(utility[i]) * gain - payment

    @staticmethod
    def _record(arrays: dict[str, np.ndarray], i: int, outcome: BargainOutcome) -> None:
        arrays["status"][i] = _STATUS_CODES[outcome.status]
        arrays["terminated_by"][i] = _TERMINATOR_CODES[outcome.terminated_by]
        arrays["n_rounds"][i] = outcome.n_rounds
        arrays["delta_g"][i] = outcome.delta_g
        arrays["payment"][i] = outcome.payment
        arrays["net_profit"][i] = outcome.net_profit
        arrays["cost_task"][i] = outcome.cost_task
        arrays["cost_data"][i] = outcome.cost_data
        if outcome.quote is not None:
            arrays["final_rate"][i] = outcome.quote.rate
            arrays["final_base"][i] = outcome.quote.base
            arrays["final_cap"][i] = outcome.quote.cap


def _chunks(indices: np.ndarray, size: int):
    for start in range(0, len(indices), size):
        yield indices[start : start + size]
