"""Scenario: an advertiser buying audience features under uncertainty.

The paper's second production setting (§1): advertisers conduct user
modeling with data from external media platforms.  Here the *task
party* is an advertiser holding campaign-side categorical attributes;
the *data party* is a platform holding behavioural/numeric attributes
(the Adult market stands in for the demographic-modeling task).

Neither side knows what any feature bundle is worth in advance — this
is the paper's **imperfect performance information** setting (§3.5):
both parties train ΔG estimators *while bargaining*, with an initial
exploration phase (Case VII) during which no one walks away.

Run:  python examples/advertiser_user_modeling.py
"""

from repro.market import Market


def main() -> None:
    print("Advertiser (task party) + media platform (data party) on Adult...")
    market = Market.for_dataset("adult", base_model="random_forest", quick=True, seed=0)
    print(
        f"  platform catalogue: {len(market.oracle)} bundles | "
        f"advertiser isolated accuracy M0 = {market.oracle.isolated:.3f}"
    )

    exploration = 40
    outcome = market.bargain(
        information="imperfect",
        seed=5,
        config_overrides={"exploration_rounds": exploration, "max_rounds": 250},
    )

    print(f"\nImperfect-information bargaining "
          f"({exploration} exploration rounds first):")
    print(f"  status: {outcome.status} after {outcome.n_rounds} rounds")
    if outcome.accepted:
        print(f"  transacted bundle size: {outcome.bundle.size}")
        print(f"  realised gain dG = {outcome.delta_g:.4f} "
              f"(market best was {market.oracle.max_gain:.4f})")
        print(f"  payment = {outcome.payment:.3f}, "
              f"advertiser net profit = {outcome.net_profit:.2f}")

    # Show what the exploration phase bought: per-round estimator error.
    explored = [r for r in outcome.history if r.round_number <= exploration]
    settled = [r for r in outcome.history if r.round_number > exploration]
    if explored and settled:
        import numpy as np

        print("\nWhat exploration bought (realised gains offered per phase):")
        print(f"  exploration rounds: mean dG offered = "
              f"{np.mean([r.delta_g for r in explored]):.4f} (random quotes/bundles)")
        print(f"  bargaining rounds:  mean dG offered = "
              f"{np.mean([r.delta_g for r in settled]):.4f} (estimator-guided)")

    perfect = market.bargain(seed=5)
    if perfect.accepted and outcome.accepted and perfect.net_profit > 0:
        ratio = max(outcome.net_profit, 0.0) / perfect.net_profit
        print(
            f"\nReference: the same game under perfect information nets "
            f"{perfect.net_profit:.2f}\n  -> estimation-based bargaining "
            f"recovered {100 * ratio:.0f}% of the perfect-information profit "
            f"(paper Table 4's comparison)."
        )


if __name__ == "__main__":
    main()
