"""Extending the marketplace: register a custom dataset + strategy.

A real deployment does not wire `Market` objects by hand — it registers
its components once and then drives everything through the typed
service API (the same path `python -m repro bargain` and the
`repro serve` HTTP front door use).  This example proves that extension
path end to end:

1. ``@register_dataset("acme_scores", ...)`` — a synthetic credit-score
   book built on the library's generator framework, with its own
   :class:`MarketPreset` calibration.  The registration alone makes
   ``--dataset acme_scores`` valid in the CLI, in ``MarketSpec``
   validation, and as a ``simulate --preset`` anchor.
2. ``@register_task_strategy("thrifty", ...)`` — a buyer that targets
   the 75th-percentile gain instead of the best bundle on sale.
   ``--task thrifty`` (and ``SessionSpec(task="thrifty")``) now work
   everywhere, including the population simulator's ``--mix``.
3. A ``MarketSpec``/``SessionSpec`` session through the
   :class:`~repro.client.MarketplaceClient` SDK — the same typed API
   ``repro serve`` deployments answer, here on the zero-overhead
   in-process transport — plus the Eq. 5 equilibrium check on the
   final deal.  Swapping ``MarketplaceClient.local()`` for
   ``MarketplaceClient.connect(url)`` would run the identical session
   against a remote marketplace.

Run:  python examples/custom_market.py
"""

import numpy as np

from repro.data.schema import Column, ColumnKind, Schema
from repro.data.synthetic.base import (
    RawDataset,
    labels_from_score,
    numeric_column,
)
from repro.data.table import Table
from repro.client import MarketplaceClient
from repro.market import (
    MarketConfig,
    MarketPreset,
    StrategicTaskParty,
    is_equilibrium_price,
)
from repro.market.pricing import QuotedPrice
from repro.service import (
    MarketSpec,
    SessionSpec,
    register_dataset,
    register_task_strategy,
)
from repro.utils.rng import spawn

# ----------------------------------------------------------------------
# 1. A custom dataset: ACME's credit-score book.  Three task-party
#    columns (what the buyer already holds) and seven data-party
#    columns of varying label signal — the structure the market prices.
# ----------------------------------------------------------------------
ACME_SCHEMA = Schema.of(
    [Column(f"task_{i}", ColumnKind.NUMERIC) for i in range(3)]
    + [Column(f"score_{i}", ColumnKind.NUMERIC) for i in range(7)],
    label="default",
    name="acme_scores",
)

_ACME_PRESET = MarketPreset(
    config=MarketConfig(
        utility_rate=400.0,
        budget=4.0,
        initial_rate=5.0,
        initial_base=0.85,
        eps_d=1e-3,
        eps_t=1e-3,
    ),
    reserved_price_params={
        "rate_floor": 4.0,
        "rate_per_feature": 0.30,
        "base_floor": 0.60,
        "base_per_feature": 0.04,
        "rate_value": 2.0,
        "base_value": 0.25,
        "rate_noise": 0.20,
        "base_noise": 0.02,
    },
    n_bundles=10,
    quick_n_samples=320,
    full_n_samples=320,
    rf_params={"n_estimators": 6, "max_depth": 5},
)


@register_dataset(
    "acme_scores", preset=_ACME_PRESET, gain_scale=0.10, overwrite=True
)
def load_acme_scores(n_samples: int | None = None, *, seed: int = 0) -> RawDataset:
    """Synthesise ACME's book: a wealth latent drives every column."""
    n = n_samples or 320
    rng = spawn(seed, "acme_scores", "raw")
    latent = rng.normal(0.0, 1.0, n)
    columns: dict[str, np.ndarray] = {}
    score = np.zeros(n)
    for i, column in enumerate(ACME_SCHEMA):
        # Later data-party columns carry progressively more signal, so
        # bigger traded bundles genuinely gain more.
        rho = 0.3 + 0.06 * i
        values = numeric_column(rng, latent, rho=rho)
        columns[column.name] = values
        score += (0.12 * i) * values
    y = labels_from_score(rng, score, positive_rate=0.3)
    return RawDataset(
        name="acme_scores",
        table=Table(columns),
        schema=ACME_SCHEMA,
        y=y,
        task_columns=tuple(c.name for c in ACME_SCHEMA)[:3],
        data_columns=tuple(c.name for c in ACME_SCHEMA)[3:],
        n_original_features=len(ACME_SCHEMA),
    )


# ----------------------------------------------------------------------
# 2. A custom buyer strategy: same Eq. 5 machinery, thriftier target.
# ----------------------------------------------------------------------
@register_task_strategy("thrifty", overwrite=True)
def thrifty_buyer(ctx) -> StrategicTaskParty:
    """Target the 75th-percentile gain — cheaper deals, lower ceiling."""
    gains = sorted(g for g in ctx.gains.values() if g > 0)
    target = gains[int(round(0.75 * (len(gains) - 1)))]
    config = ctx.config.with_overrides(target_gain=float(target))
    return StrategicTaskParty(
        config, list(ctx.gains.values()), cost_model=ctx.cost_model, rng=ctx.rng
    )


def main() -> None:
    client = MarketplaceClient.local()  # or .connect("http://host:8765")
    market_spec = MarketSpec(dataset="acme_scores", seed=0, no_cache=True)
    market = client.build_market(market_spec)
    print(f"registered market: {market['name']} | {market['n_bundles']} "
          f"bundles | target dG* = {market['target_gain']:.4f}")

    for task in ("strategic", "thrifty"):
        opened = client.open_session(
            SessionSpec(market=market_spec, task=task, seed=0)
        )
        outcome = client.run_session(opened["session"])["outcome"]
        print(f"  task={task:<10} {outcome['status']:<9} "
              f"rounds={outcome['n_rounds']:<4}", end="")
        if outcome["accepted"]:
            print(f" dG={outcome['delta_g']:.4f} "
                  f"payment={outcome['payment']:.3f} "
                  f"net={outcome['net_profit']:.2f}")
            # Eq. 5: at settlement, the turning point coincides with
            # the realised gain (within the termination tolerance).
            quote = QuotedPrice.from_dict(outcome["quote"])
            print(f"    equilibrium (Eq. 5) within eps: "
                  f"{is_equilibrium_price(quote, outcome['delta_g'], tolerance=2e-3)}")
        else:
            print()
        client.close_session(opened["session"])
    print(f"service report: {client.report()['outcomes']}")


if __name__ == "__main__":
    main()
