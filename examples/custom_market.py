"""Building a market over your own catalogue (no built-in dataset).

The `Market` facade also accepts hand-built components, which is how a
real deployment would wire the library onto its own VFL measurements:
supply a ΔG catalogue (here: measured offline and passed to
``PerformanceOracle.from_gains``), reserved prices, and a
``MarketConfig``.  The example also demonstrates the equilibrium theory
utilities: Theorem 3.1's outcome-preserving quote transform and the
Eq. 5 check on the final deal.

Run:  python examples/custom_market.py
"""

import numpy as np

from repro.market import (
    FeatureBundle,
    Market,
    MarketConfig,
    PerformanceOracle,
    ReservedPrice,
    equivalent_quote,
    is_equilibrium_price,
    task_net_profit,
)


def main() -> None:
    # Your own measurements: bundle -> relative performance gain.
    rng = np.random.default_rng(0)
    gains = {}
    reserved = {}
    for i in range(15):
        bundle = FeatureBundle.of(range(i + 1))
        quality = (i + 1) / 15
        gains[bundle] = round(0.12 * quality + rng.uniform(0, 0.004), 4)
        reserved[bundle] = ReservedPrice(
            rate=4.0 + 3.0 * quality + rng.uniform(0, 0.2),
            base=0.6 + 0.5 * quality + rng.uniform(0, 0.03),
        )

    config = MarketConfig(
        utility_rate=400.0,
        budget=4.0,
        initial_rate=4.6,
        initial_base=0.72,
        target_gain=max(gains.values()),
        eps_d=1e-3,
        eps_t=1e-3,
    )
    market = Market(
        oracle=PerformanceOracle.from_gains(gains),
        reserved_prices=reserved,
        config=config,
        name="custom",
    )

    outcome = market.bargain(seed=0)
    print(f"custom market: {outcome.status} after {outcome.n_rounds} rounds")
    if not outcome.accepted:
        print("  no deal this run; try another seed")
        return
    print(f"  final quote {outcome.quote}, dG = {outcome.delta_g:.4f}")

    # Eq. 5: at settlement, the turning point coincides with the gain.
    print(f"  equilibrium (Eq. 5) satisfied within eps: "
          f"{is_equilibrium_price(outcome.quote, outcome.delta_g, tolerance=2e-3)}")

    # Theorem 3.1: tighten any quote's cap to the realised gain without
    # changing either party's payoff.
    loose = outcome.quote.with_cap(outcome.quote.cap + 1.0)
    tight = equivalent_quote(loose, outcome.delta_g)
    u = config.utility_rate
    print("  Theorem 3.1 transform:")
    print(f"    loose quote {loose} -> tight {tight}")
    print(f"    payment {loose.payment(outcome.delta_g):.3f} == "
          f"{tight.payment(outcome.delta_g):.3f}")
    print(f"    net profit {task_net_profit(loose, outcome.delta_g, u):.2f} == "
          f"{task_net_profit(tight, outcome.delta_g, u):.2f}")


if __name__ == "__main__":
    main()
