"""Quickstart: one bargaining game on the Titanic feature market.

Builds the full stack — synthetic dataset, vertical partition, bundle
catalogue, the trusted platform's ΔG oracle — then plays one perfect-
information bargaining game and prints the round-by-round trail.

Run:  python examples/quickstart.py
"""

from repro.market import Market


def main() -> None:
    print("Building the Titanic market (runs one VFL course per bundle)...")
    market = Market.for_dataset(
        "titanic",
        base_model="random_forest",
        quick=True,
        seed=0,
        n_bundles=12,
    )
    oracle = market.oracle
    print(
        f"  catalogue: {len(oracle)} bundles | isolated accuracy M0 = "
        f"{oracle.isolated:.3f} | best bundle gain = {oracle.max_gain:.3f}"
    )
    print(f"  task party targets dG* = {market.config.target_gain:.4f}, "
          f"utility rate u = {market.config.utility_rate:.0f}")

    outcome = market.bargain(seed=0)

    print("\nRound trail (quote -> offered bundle -> realised gain):")
    for record in outcome.history[:8]:
        print(
            f"  T={record.round_number:>3}  {record.quote}  "
            f"bundle={record.bundle.label():<18} dG={record.delta_g:.4f}  "
            f"payment={record.payment:.3f}  net={record.net_profit:.2f}"
        )
    if outcome.n_rounds > 8:
        print(f"  ... {outcome.n_rounds - 8} more rounds ...")

    print(f"\nOutcome: {outcome.status} (by {outcome.terminated_by}) "
          f"after {outcome.n_rounds} rounds")
    print(f"  transacted bundle: {outcome.bundle.label()} "
          f"({outcome.bundle.size} features)")
    print(f"  realised gain dG = {outcome.delta_g:.4f}")
    print(f"  payment to the data party = {outcome.payment:.3f}")
    print(f"  task party net profit     = {outcome.net_profit:.2f}")
    if outcome.reserved_of_bundle is not None:
        reserved = outcome.reserved_of_bundle
        print(
            f"  final quote vs seller's private floor: "
            f"p {outcome.quote.rate:.2f} vs p_l {reserved.rate:.2f}, "
            f"P0 {outcome.quote.base:.2f} vs P_l {reserved.base:.2f}"
        )


if __name__ == "__main__":
    main()
