"""Scenario: a bank buying behavioural features for a credit-risk model.

The paper's motivating production setting (§1): commercial banks
amalgamate external data when constructing joint anti-fraud / default
models.  Here the *task party* is a bank holding demographics and the
credit limit; the *data party* is a payment processor holding six
months of repayment behaviour.  The bank wants the accuracy lift, the
processor wants to be paid for exactly the features that deliver it.

The example compares the paper's Strategic bargaining with the two
non-strategic variants over several repetitions — reproducing the
Figure 2 comparison on the Credit market in miniature.

Run:  python examples/bank_joint_antifraud.py
"""

import numpy as np

from repro.market import Market


def describe(label: str, outcomes) -> None:
    accepted = [o for o in outcomes if o.accepted]
    rate = 100.0 * len(accepted) / len(outcomes)
    if accepted:
        print(
            f"  {label:<16} deals={rate:3.0f}%  rounds={np.mean([o.n_rounds for o in outcomes]):6.1f}  "
            f"dG={np.mean([o.delta_g for o in accepted]):.4f}  "
            f"payment={np.mean([o.payment for o in accepted]):.3f}  "
            f"bank profit={np.mean([o.net_profit for o in accepted]):.2f}"
        )
    else:
        print(f"  {label:<16} deals={rate:3.0f}%  (no successful transactions)")


def main() -> None:
    print("Bank (task party) + payment processor (data party) on Credit...")
    market = Market.for_dataset("credit", base_model="random_forest", quick=True, seed=1)
    print(
        f"  processor catalogue: {len(market.oracle)} feature bundles | "
        f"bank's isolated accuracy M0 = {market.oracle.isolated:.3f}"
    )

    n_runs = 10
    print(f"\n{n_runs} independent negotiations per strategy:")
    describe("Strategic (ours)", market.bargain_many(n_runs, base_seed=7))
    describe(
        "Increase Price", market.bargain_many(n_runs, base_seed=7, task="increase_price")
    )
    describe(
        "Random Bundle", market.bargain_many(n_runs, base_seed=7, data="random_bundle")
    )

    outcome = market.bargain(seed=3)
    if outcome.accepted:
        print("\nOne strategic deal in detail:")
        print(f"  bundle: {outcome.bundle.size} of "
              f"{market.n_data_features} behavioural features")
        print(f"  accuracy lift: {outcome.delta_g * 100:.2f}% relative")
        print(f"  the bank pays {outcome.payment:.3f} "
              f"(quoted cap was {outcome.quote.cap:.3f})")
        print(
            "  outcome-based pricing means the processor is paid for the "
            "lift it delivered,\n  not a flat catalogue price — the "
            "paper's fix for under/over-payment."
        )


if __name__ == "__main__":
    main()
