"""End-to-end smoke of a live ``repro serve`` deployment via the SDK.

The CI ``service-api`` job boots a server and runs this script against
it — no hand-rolled ``urllib`` plumbing, just the public
:class:`~repro.client.MarketplaceClient` the README documents:

1. poll ``/v1/healthz`` until the server is ready (no fixed sleeps);
2. build a market, bargain a session to acceptance, checkpoint it;
3. submit a durable sharded simulation job and follow its JSON-lines
   event stream to the final digest;
4. assert the operator report counted the accepted deal.

Run:  python examples/serve_smoke.py --url http://127.0.0.1:8765
"""

import argparse
import sys
import time

from repro.client import MarketplaceClient, TransportError


def wait_healthy(client: MarketplaceClient, timeout: float = 30.0) -> dict:
    """Poll ``/v1/healthz`` until the server answers and is not draining."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            health = client.healthz()
            assert health["ok"] and not health["draining"], health
            return health
        except TransportError:
            if time.monotonic() >= deadline:
                raise SystemExit(f"server never became healthy in {timeout}s")
            time.sleep(0.2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8765",
                        help="base URL of a running `repro serve`")
    parser.add_argument("--sessions", type=int, default=80,
                        help="simulation-job size (default 80)")
    args = parser.parse_args(argv)

    with MarketplaceClient.connect(args.url) as client:
        health = wait_healthy(client)
        print(f"healthy: pid {health['pid']}, "
              f"{health['sessions']['resident']} resident sessions")

        market = client.build_market({"dataset": "synthetic", "seed": 0})
        print(f"market: {market['market']} ({market['n_bundles']} bundles, "
              f"cached={market['cached']})")

        opened = client.open_session({"market": market["market"], "seed": 0})
        state = client.run_session(opened["session"])
        outcome = state["outcome"]
        print(f"outcome: {outcome['status']} after {outcome['n_rounds']} "
              f"rounds, payment {outcome['payment']:.3f}")
        assert outcome["status"] == "accepted", outcome

        checkpoint = client.checkpoint(opened["session"])
        assert checkpoint["digest"], checkpoint
        print(f"checkpoint digest: {checkpoint['digest']}")

        submitted = client.submit_simulation(
            {"sessions": args.sessions, "seed": 0}, shards=2, chunks=2
        )
        print(f"job submitted: {submitted['job']} "
              f"({submitted['chunks']} chunks)")
        final = client.wait_job(
            submitted["job"], timeout=300,
            on_event=lambda e: print(f"  event: {e}"),
        )
        assert final["status"] == "done", final
        print(f"job done: digest {final['digest']}")

        report = client.report()
        print(f"report: {report['outcomes']}")
        assert report["outcomes"]["accepted"] >= 1, report
    print("serve smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
