"""Scenario: what the performance gain leaks, and the §3.6 mitigation.

The paper warns that exchanging plaintext ΔG each round lets a curious
counterparty run inference attacks.  This example makes the threat
concrete and then runs the Paillier-based mitigation:

1. replay a bargaining transcript and mount the marginal-value attack
   — the adversary recovers which features carry label signal;
2. re-run the exchange with homomorphically encrypted gains and
   blinded comparisons — payments still compute correctly, but the
   quantitative recovery collapses;
3. measure the cryptographic overhead per bargaining round.

Run:  python examples/secure_bargaining.py
"""

import time

import numpy as np

from repro.market import FeatureBundle, QuotedPrice
from repro.security import (
    attack_advantage,
    encrypted_gain,
    generate_keypair,
    marginal_value_attack,
    secure_payment,
)
from repro.utils import spawn


def build_transcript(n_features=10, n_rounds=80, seed=0):
    """A synthetic bargaining transcript: bundles and their gains."""
    rng = spawn(seed, "transcript")
    true_values = np.abs(rng.normal(0.0, 0.02, n_features))
    transcript = []
    for _ in range(n_rounds):
        size = int(rng.integers(1, 6))
        bundle = FeatureBundle.of(rng.choice(n_features, size=size, replace=False))
        gain = float(true_values[list(bundle)].sum() + rng.normal(0, 0.002))
        transcript.append((bundle, gain))
    return true_values, transcript


def main() -> None:
    true_values, transcript = build_transcript()

    print("1) Plaintext exchange: the marginal-value inference attack")
    advantage = attack_advantage(transcript, true_values)
    recovered = marginal_value_attack(transcript, len(true_values))
    err = float(np.abs(recovered - true_values).max())
    print(f"   rank-correlation with the seller's true feature values: "
          f"{advantage:.2f}")
    print(f"   max absolute error of recovered per-feature values: {err:.4f}")
    print("   -> the counterparty reconstructs the catalogue's quality "
          "ordering almost exactly.")

    print("\n2) Mitigated exchange: Paillier-encrypted gains")
    pub, priv = generate_keypair(bits=256, rng=0)
    quote = QuotedPrice(rate=10.0, base=1.0, cap=3.0)
    t0 = time.perf_counter()
    max_err = 0.0
    for i, (_, gain) in enumerate(transcript[:20]):
        enc = encrypted_gain(gain, pub, rng=spawn(1, "enc", i))
        paid = secure_payment(enc, quote, priv, rng=spawn(1, "blind", i))
        max_err = max(max_err, abs(paid - quote.payment(gain)))
    per_round_ms = (time.perf_counter() - t0) / 20 * 1e3
    print(f"   secure payment matches plaintext payment to {max_err:.2e}")
    print(f"   cost: {per_round_ms:.2f} ms per bargaining round (256-bit keys)")
    print("   -> the counterparty sees only blinded comparison signs and "
          "the invoice;\n      quantitative value recovery degrades to "
          "noise (see tests/security).")


if __name__ == "__main__":
    main()
